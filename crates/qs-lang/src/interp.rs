//! The interpreter: executes a checked program against the real `qs-runtime`.
//!
//! * `main` runs on the calling (client) thread.
//! * `create x` spawns a [`qs_runtime::Handler`] owning a fresh
//!   [`ObjectState`]; the handler *is* the object's SCOOP processor.
//! * `separate x, y do … end` reserves the handlers through the unified
//!   [`qs_runtime::reserve`] entry point, so multi-target blocks get the
//!   atomic multi-reservation of §2.4/§3.3.
//! * command calls are logged asynchronously ([`Separate::call`]), query
//!   calls run synchronously; how the synchronisation before a query is
//!   performed is decided by the [`QueryStrategy`], which is where the
//!   naive / dynamic / static code-generation variants of §3.4 plug in.
//!
//! Routine bodies execute against the handler-owned object only (they cannot
//! reserve further handlers), which mirrors the paper's model where a
//! handler processes one logged call at a time.
//!
//! Separate blocks come in two reservation flavours: the exclusive
//! [`qs_runtime::reserve`]`.run(…)` path, and the **shared-read** path
//! (`reserve(…).read().run(…)`) used when the block was declared
//! `separate read` or when the effect pass proved it read-only and
//! [`qs_runtime::RuntimeConfig::auto_read`] is enabled.  Under a read
//! reservation queries execute on the client against `&ObjectState`
//! ([`ObjRef::Shared`]) — a write attempt is a hard error, though the
//! checker already rejects it statically (`QS-E001`).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use qs_runtime::{reserve, Handler, ReadSeparate, Runtime, Separate, StatsSnapshot};

use crate::ast::*;
use crate::error::{LangError, LangResult, Phase, Pos};
use crate::lower::{lower_main, SyncPlan};
use crate::sema::CheckedProgram;
use crate::value::{ObjectState, SharedRng, Value};

/// Maximum depth of unqualified routine-to-routine calls inside a class.
const MAX_CALL_DEPTH: usize = 128;

/// How query call sites synchronise with the target handler.
#[derive(Debug, Clone)]
pub enum QueryStrategy {
    /// Let the runtime decide ([`Separate::query`]): the handler executes the
    /// query or the client does, and dynamic sync-coalescing applies when the
    /// runtime configuration enables it.
    RuntimeManaged,
    /// Naive code generation: an explicit sync before every query, then the
    /// query body executes on the client (Fig. 10b without any elision).
    NaiveSync,
    /// The static sync-coalescing plan produced by [`lower_main`]: only the
    /// sites the pass could not prove synchronised perform a sync.
    StaticPlan(SyncPlan),
}

impl QueryStrategy {
    /// Builds the static-plan strategy for a checked program by lowering and
    /// optimising its `main`.
    pub fn static_for(checked: &CheckedProgram) -> QueryStrategy {
        QueryStrategy::StaticPlan(lower_main(checked).plan)
    }
}

/// Everything a finished run reports back.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Lines produced by `print`, in order of execution on the producing
    /// thread (client-side prints are totally ordered; handler-side prints
    /// are ordered per handler).
    pub printed: Vec<String>,
    /// Snapshot of the runtime statistics after the run (sync round-trips,
    /// elisions, queries, calls, …).
    pub stats: StatsSnapshot,
    /// Number of handlers the program created.
    pub handlers_created: usize,
}

/// Compiles nothing — runs an already-checked program on `runtime` using the
/// given query strategy.
pub fn run_program(
    checked: &CheckedProgram,
    runtime: &Runtime,
    strategy: QueryStrategy,
) -> LangResult<RunOutput> {
    Interpreter::new(checked.clone(), runtime.clone(), strategy).run()
}

type CommandJob = Box<dyn FnOnce(&mut ObjectState) -> Result<(), String> + Send>;
type QueryJob = Box<dyn for<'a> FnOnce(ObjRef<'a>) -> Result<Value, String> + Send>;

/// A reference to the reserved object a routine body executes against:
/// mutable under an exclusive reservation, shared under a read reservation.
///
/// The `Shared` variant is the runtime backstop behind the static `QS-E001`
/// check: a field write through it is an error, never undefined behaviour.
enum ObjRef<'a> {
    /// Exclusive reservation: reads and writes allowed.
    Mut(&'a mut ObjectState),
    /// Shared-read reservation: reads only.
    Shared(&'a ObjectState),
}

impl ObjRef<'_> {
    fn fields(&self) -> &[Value] {
        match self {
            ObjRef::Mut(obj) => &obj.fields,
            ObjRef::Shared(obj) => &obj.fields,
        }
    }

    fn field_mut(&mut self, slot: usize) -> Result<&mut Value, String> {
        match self {
            ObjRef::Mut(obj) => Ok(&mut obj.fields[slot]),
            ObjRef::Shared(_) => {
                Err("write to attribute state through a read-only reservation".into())
            }
        }
    }

    /// Reborrows for a nested unqualified call, keeping the mutability mode.
    fn reborrow(&mut self) -> ObjRef<'_> {
        match self {
            ObjRef::Mut(obj) => ObjRef::Mut(obj),
            ObjRef::Shared(obj) => ObjRef::Shared(obj),
        }
    }
}

/// Access to the separate objects currently reserved by enclosing blocks.
trait Guards {
    /// Logs an asynchronous command on `target`.
    fn command(&mut self, target: &str, job: CommandJob) -> Result<(), String>;
    /// Performs a synchronous query on `target` for call site `site`.
    fn query(&mut self, target: &str, site: usize, job: QueryJob) -> Result<Value, String>;
}

/// The empty reservation context used at the top level of `main`.
struct NoGuards;

impl Guards for NoGuards {
    fn command(&mut self, target: &str, _job: CommandJob) -> Result<(), String> {
        Err(format!("`{target}` is not reserved by any separate block"))
    }

    fn query(&mut self, target: &str, _site: usize, _job: QueryJob) -> Result<Value, String> {
        Err(format!("`{target}` is not reserved by any separate block"))
    }
}

/// One `separate` block's reservations, chained to the enclosing block's.
struct ReservationFrame<'a, 'g> {
    names: &'a [String],
    guards: &'a mut [Separate<'g, ObjectState>],
    strategy: &'a QueryStrategy,
    parent: &'a mut dyn Guards,
}

impl ReservationFrame<'_, '_> {
    fn index_of(&self, target: &str) -> Option<usize> {
        self.names.iter().position(|n| n == target)
    }
}

impl Guards for ReservationFrame<'_, '_> {
    fn command(&mut self, target: &str, job: CommandJob) -> Result<(), String> {
        match self.index_of(target) {
            Some(index) => {
                self.guards[index].call(move |obj| {
                    // Errors inside asynchronous commands are reported through
                    // the shared error buffer captured in the job itself; a
                    // panic would otherwise tear down the handler thread.
                    let _ = job(obj);
                });
                Ok(())
            }
            None => self.parent.command(target, job),
        }
    }

    fn query(&mut self, target: &str, site: usize, job: QueryJob) -> Result<Value, String> {
        let Some(index) = self.index_of(target) else {
            return self.parent.query(target, site, job);
        };
        let guard = &mut self.guards[index];
        match self.strategy {
            QueryStrategy::RuntimeManaged => guard.query(|obj| job(ObjRef::Mut(obj))),
            QueryStrategy::NaiveSync => {
                guard.sync();
                guard.query_unsynced(|obj| job(ObjRef::Mut(obj)))
            }
            QueryStrategy::StaticPlan(plan) => {
                if plan.needs_sync(site) {
                    guard.sync();
                } else if !guard.is_synced() {
                    // Defensive: the plan promised this site is covered by a
                    // dominating sync.  If the runtime disagrees we fall back
                    // to a sync rather than touching unsynchronised state.
                    guard.sync();
                }
                guard.query_unsynced(|obj| job(ObjRef::Mut(obj)))
            }
        }
    }
}

/// One **shared-read** block's reservations, chained like
/// [`ReservationFrame`].  Queries on the frame's own targets execute on the
/// client thread against the shared object reference; the gate guarantees
/// the handler is quiescent, so no sync is needed regardless of the query
/// strategy.  Commands on the frame's own targets are an error (rejected
/// statically as `QS-E001`; this is the runtime backstop).
struct ReadFrame<'a, 'g> {
    names: &'a [String],
    guards: &'a [ReadSeparate<'g, ObjectState>],
    parent: &'a mut dyn Guards,
}

impl Guards for ReadFrame<'_, '_> {
    fn command(&mut self, target: &str, job: CommandJob) -> Result<(), String> {
        if self.names.iter().any(|n| n == target) {
            return Err(format!(
                "command on `{target}` through a read-only reservation"
            ));
        }
        self.parent.command(target, job)
    }

    fn query(&mut self, target: &str, site: usize, job: QueryJob) -> Result<Value, String> {
        match self.names.iter().position(|n| n == target) {
            Some(index) => self.guards[index].query(|obj| job(ObjRef::Shared(obj))),
            None => self.parent.query(target, site, job),
        }
    }
}

/// Shared pieces captured into command/query jobs that run routine bodies.
struct JobContext {
    checked: Arc<CheckedProgram>,
    printed: Arc<Mutex<Vec<String>>>,
    async_errors: Arc<Mutex<Vec<String>>>,
    rng: SharedRng,
}

impl JobContext {
    fn clone_refs(&self) -> (Arc<CheckedProgram>, Arc<Mutex<Vec<String>>>, SharedRng) {
        (
            Arc::clone(&self.checked),
            Arc::clone(&self.printed),
            self.rng.clone(),
        )
    }
}

/// The values and handlers bound to `main`'s locals.
struct MainEnv {
    vars: HashMap<String, Value>,
    objects: HashMap<String, Handler<ObjectState>>,
}

struct Interpreter {
    checked: Arc<CheckedProgram>,
    runtime: Runtime,
    strategy: QueryStrategy,
    ctx: JobContext,
}

impl Interpreter {
    fn new(checked: CheckedProgram, runtime: Runtime, strategy: QueryStrategy) -> Self {
        let checked = Arc::new(checked);
        let ctx = JobContext {
            checked: Arc::clone(&checked),
            printed: Arc::new(Mutex::new(Vec::new())),
            async_errors: Arc::new(Mutex::new(Vec::new())),
            rng: SharedRng::new(0x5EED),
        };
        Interpreter {
            checked,
            runtime,
            strategy,
            ctx,
        }
    }

    fn run(self) -> LangResult<RunOutput> {
        let mut env = MainEnv {
            vars: HashMap::new(),
            objects: HashMap::new(),
        };
        for local in &self.checked.program.main.locals {
            match &local.ty {
                TypeExpr::SeparateClass(_) => {}
                TypeExpr::Integer => {
                    env.vars.insert(local.name.clone(), Value::Int(0));
                }
                TypeExpr::Boolean => {
                    env.vars.insert(local.name.clone(), Value::Bool(false));
                }
                TypeExpr::Array => {
                    env.vars
                        .insert(local.name.clone(), Value::Array(Vec::new()));
                }
            }
        }

        let body = self.checked.program.main.body.clone();
        let result = self.exec_stmts(&body, &mut env, &mut NoGuards);

        // Shut the handlers down whether or not the program succeeded, so a
        // failing test does not leak handler threads.
        let handlers_created = env.objects.len();
        for handler in env.objects.values() {
            handler.stop();
        }
        for handler in env.objects.values() {
            handler.wait_finished();
        }
        result?;

        let async_errors = self
            .ctx
            .async_errors
            .lock()
            .expect("error buffer poisoned")
            .clone();
        if let Some(first) = async_errors.first() {
            return Err(LangError::general(
                Phase::Run,
                format!(
                    "{first} (raised inside an asynchronous command; {} error(s) in total)",
                    async_errors.len()
                ),
            ));
        }

        let printed = self
            .ctx
            .printed
            .lock()
            .expect("print buffer poisoned")
            .clone();
        Ok(RunOutput {
            printed,
            stats: self.runtime.stats_snapshot(),
            handlers_created,
        })
    }

    // ---- statements in `main` ----------------------------------------------

    fn exec_stmts(
        &self,
        stmts: &[Stmt],
        env: &mut MainEnv,
        guards: &mut dyn Guards,
    ) -> LangResult<()> {
        for stmt in stmts {
            self.exec_stmt(stmt, env, guards)?;
        }
        Ok(())
    }

    fn exec_stmt(&self, stmt: &Stmt, env: &mut MainEnv, guards: &mut dyn Guards) -> LangResult<()> {
        match stmt {
            Stmt::Assign { target, value } => {
                let value = self.eval_expr(value, env, guards)?;
                self.assign(target, value, env, guards)
            }
            Stmt::Create { var, pos } => {
                let class_name = self.checked.handler_classes.get(var).ok_or_else(|| {
                    LangError::at(
                        Phase::Run,
                        *pos,
                        format!("`{var}` is not a separate variable"),
                    )
                })?;
                let info = &self.checked.classes[class_name];
                let handler = self.runtime.spawn_handler(ObjectState::new(info));
                if let Some(previous) = env.objects.insert(var.clone(), handler) {
                    previous.stop();
                }
                Ok(())
            }
            Stmt::SeparateBlock {
                targets,
                read,
                body,
                pos,
            } => {
                let handlers: Vec<Handler<ObjectState>> = targets
                    .iter()
                    .map(|t| {
                        env.objects.get(t).cloned().ok_or_else(|| {
                            LangError::at(
                                Phase::Run,
                                *pos,
                                format!("`{t}` used in a separate block before `create {t}`"),
                            )
                        })
                    })
                    .collect::<LangResult<_>>()?;
                let read_mode = *read
                    || (self.runtime.config().auto_read
                        && self
                            .checked
                            .inferred_read_blocks
                            .contains(&(pos.line, pos.col)));
                if read_mode {
                    // A shared-read reservation only takes the gate; it does
                    // not drain the mailbox.  SCOOP orders this block after
                    // the commands `main` already logged on these handlers,
                    // so flush them under a transient exclusive reservation
                    // first (`main` is the only client, nothing can
                    // interleave before the read acquisition below).
                    reserve(&handlers).run(|reservations| {
                        for reservation in reservations.iter_mut() {
                            reservation.sync();
                        }
                    });
                    reserve(&handlers).read().run(|reservations| {
                        let mut frame = ReadFrame {
                            names: targets,
                            guards: reservations,
                            parent: guards,
                        };
                        self.exec_stmts(body, env, &mut frame)
                    })
                } else {
                    reserve(&handlers).run(|reservations| {
                        let mut frame = ReservationFrame {
                            names: targets,
                            guards: reservations,
                            strategy: &self.strategy,
                            parent: guards,
                        };
                        self.exec_stmts(body, env, &mut frame)
                    })
                }
            }
            Stmt::CommandCall {
                target,
                routine,
                args,
                pos,
            } => {
                let args = self.eval_args(args, env, guards)?;
                let job = self.routine_command_job(target, routine, args, env, *pos)?;
                guards
                    .command(target, job)
                    .map_err(|message| LangError::at(Phase::Run, *pos, message))
            }
            Stmt::LocalCommand { routine, pos, .. } => Err(LangError::at(
                Phase::Run,
                *pos,
                format!("`{routine}(…)` cannot be called from `main`"),
            )),
            Stmt::If {
                arms, otherwise, ..
            } => {
                for (cond, branch) in arms {
                    if self
                        .eval_expr(cond, env, guards)?
                        .as_bool()
                        .map_err(|m| LangError::at(Phase::Run, cond.pos(), m))?
                    {
                        return self.exec_stmts(branch, env, guards);
                    }
                }
                self.exec_stmts(otherwise, env, guards)
            }
            Stmt::While { cond, body, .. } => loop {
                let keep_going = self
                    .eval_expr(cond, env, guards)?
                    .as_bool()
                    .map_err(|m| LangError::at(Phase::Run, cond.pos(), m))?;
                if !keep_going {
                    return Ok(());
                }
                self.exec_stmts(body, env, guards)?;
            },
            Stmt::Print { value, .. } => {
                let line = match value {
                    PrintArg::Text(text) => text.clone(),
                    PrintArg::Value(expr) => self.eval_expr(expr, env, guards)?.render(),
                };
                self.ctx
                    .printed
                    .lock()
                    .expect("print buffer poisoned")
                    .push(line);
                Ok(())
            }
        }
    }

    fn assign(
        &self,
        target: &LValue,
        value: Value,
        env: &mut MainEnv,
        guards: &mut dyn Guards,
    ) -> LangResult<()> {
        match target {
            LValue::Var(name, pos) => {
                let slot = env.vars.get_mut(name).ok_or_else(|| {
                    LangError::at(Phase::Run, *pos, format!("unknown variable `{name}`"))
                })?;
                *slot = value;
                Ok(())
            }
            LValue::Result(pos) => Err(LangError::at(
                Phase::Run,
                *pos,
                "`Result` cannot be assigned in `main`",
            )),
            LValue::Index { array, index, pos } => {
                let index_value = self.eval_expr(index, env, guards)?;
                let i = index_value
                    .as_int()
                    .map_err(|m| LangError::at(Phase::Run, index.pos(), m))?;
                let element = value
                    .as_int()
                    .map_err(|m| LangError::at(Phase::Run, *pos, m))?;
                let slot = env.vars.get_mut(array).ok_or_else(|| {
                    LangError::at(Phase::Run, *pos, format!("unknown variable `{array}`"))
                })?;
                let Value::Array(elements) = slot else {
                    return Err(LangError::at(
                        Phase::Run,
                        *pos,
                        format!("`{array}` is not an ARRAY"),
                    ));
                };
                let len = elements.len();
                let slot = elements
                    .get_mut(usize::try_from(i).unwrap_or(usize::MAX))
                    .ok_or_else(|| {
                        LangError::at(
                            Phase::Run,
                            *pos,
                            format!("index {i} out of bounds for `{array}` of length {len}"),
                        )
                    })?;
                *slot = element;
                Ok(())
            }
        }
    }

    // ---- expressions in `main` ----------------------------------------------

    fn eval_args(
        &self,
        args: &[Expr],
        env: &mut MainEnv,
        guards: &mut dyn Guards,
    ) -> LangResult<Vec<Value>> {
        args.iter()
            .map(|a| self.eval_expr(a, env, guards))
            .collect()
    }

    fn eval_expr(
        &self,
        expr: &Expr,
        env: &mut MainEnv,
        guards: &mut dyn Guards,
    ) -> LangResult<Value> {
        match expr {
            Expr::Int(n, _) => Ok(Value::Int(*n)),
            Expr::Bool(b, _) => Ok(Value::Bool(*b)),
            Expr::Var(name, pos) => env.vars.get(name).cloned().ok_or_else(|| {
                LangError::at(Phase::Run, *pos, format!("unknown variable `{name}`"))
            }),
            Expr::Result(pos) => Err(LangError::at(
                Phase::Run,
                *pos,
                "`Result` is not available in `main`",
            )),
            Expr::Index { array, index, pos } => {
                let array_value = self.eval_expr(array, env, guards)?;
                let index_value = self.eval_expr(index, env, guards)?;
                index_array(&array_value, &index_value)
                    .map_err(|m| LangError::at(Phase::Run, *pos, m))
            }
            Expr::NewArray { len, pos } => {
                let len_value = self.eval_expr(len, env, guards)?;
                new_array(&len_value).map_err(|m| LangError::at(Phase::Run, *pos, m))
            }
            Expr::Length { array, pos } => {
                let array_value = self.eval_expr(array, env, guards)?;
                let elements = array_value
                    .as_array()
                    .map_err(|m| LangError::at(Phase::Run, *pos, m))?;
                Ok(Value::Int(elements.len() as i64))
            }
            Expr::Random { bound, pos } => {
                let bound_value = self.eval_expr(bound, env, guards)?;
                let bound = bound_value
                    .as_int()
                    .map_err(|m| LangError::at(Phase::Run, *pos, m))?;
                self.ctx
                    .rng
                    .next_below(bound)
                    .map(Value::Int)
                    .map_err(|m| LangError::at(Phase::Run, *pos, m))
            }
            Expr::QueryCall {
                target,
                routine,
                args,
                pos,
                site,
            } => {
                let args = self.eval_args(args, env, guards)?;
                let job = self.routine_query_job(target, routine, args, env, *pos)?;
                guards
                    .query(target, *site, job)
                    .map_err(|message| LangError::at(Phase::Run, *pos, message))
            }
            Expr::LocalCall { routine, pos, .. } => Err(LangError::at(
                Phase::Run,
                *pos,
                format!("`{routine}(…)` cannot be called from `main`"),
            )),
            Expr::Binary { op, lhs, rhs, pos } => {
                let left = self.eval_expr(lhs, env, guards)?;
                // `and`/`or` short-circuit.
                if let BinOp::And | BinOp::Or = op {
                    let l = left
                        .as_bool()
                        .map_err(|m| LangError::at(Phase::Run, *pos, m))?;
                    if (*op == BinOp::And && !l) || (*op == BinOp::Or && l) {
                        return Ok(Value::Bool(l));
                    }
                    let right = self.eval_expr(rhs, env, guards)?;
                    let r = right
                        .as_bool()
                        .map_err(|m| LangError::at(Phase::Run, *pos, m))?;
                    return Ok(Value::Bool(r));
                }
                let right = self.eval_expr(rhs, env, guards)?;
                apply_binary(*op, &left, &right).map_err(|m| LangError::at(Phase::Run, *pos, m))
            }
            Expr::Unary { op, expr, pos } => {
                let value = self.eval_expr(expr, env, guards)?;
                apply_unary(*op, &value).map_err(|m| LangError::at(Phase::Run, *pos, m))
            }
        }
    }

    // ---- packaging routine bodies into handler jobs ------------------------

    fn target_class(&self, target: &str, env: &MainEnv, pos: Pos) -> LangResult<String> {
        // The class is statically known; consult the handler map first so a
        // `create` that replaced the object keeps working.
        if env.objects.contains_key(target) || self.checked.handler_classes.contains_key(target) {
            Ok(self.checked.handler_classes[target].clone())
        } else {
            Err(LangError::at(
                Phase::Run,
                pos,
                format!("`{target}` is not a separate variable"),
            ))
        }
    }

    fn routine_command_job(
        &self,
        target: &str,
        routine: &str,
        args: Vec<Value>,
        env: &MainEnv,
        pos: Pos,
    ) -> LangResult<CommandJob> {
        let class = self.target_class(target, env, pos)?;
        let (checked, printed, rng) = self.ctx.clone_refs();
        let errors = Arc::clone(&self.ctx.async_errors);
        let routine = routine.to_string();
        Ok(Box::new(move |obj: &mut ObjectState| {
            let outcome = exec_routine(
                &checked,
                &printed,
                &rng,
                &class,
                &routine,
                args,
                ObjRef::Mut(obj),
                0,
            );
            if let Err(message) = outcome {
                errors
                    .lock()
                    .expect("error buffer poisoned")
                    .push(format!("in {class}.{routine}: {message}"));
                return Err(message);
            }
            Ok(())
        }))
    }

    fn routine_query_job(
        &self,
        target: &str,
        routine: &str,
        args: Vec<Value>,
        env: &MainEnv,
        pos: Pos,
    ) -> LangResult<QueryJob> {
        let class = self.target_class(target, env, pos)?;
        let (checked, printed, rng) = self.ctx.clone_refs();
        let routine = routine.to_string();
        Ok(Box::new(move |obj: ObjRef<'_>| {
            exec_routine(&checked, &printed, &rng, &class, &routine, args, obj, 0)
                .map_err(|message| format!("in {class}.{routine}: {message}"))
        }))
    }
}

// ---- routine bodies (execute on whichever thread owns the object) ----------

/// Executes one routine of `class` against `obj` and returns its result
/// (`Value::Void` for commands).  A [`ObjRef::Shared`] object reference
/// makes every attribute write fail, which is what running a (proven pure)
/// query under a shared-read reservation requires.
#[allow(clippy::too_many_arguments)]
fn exec_routine(
    checked: &Arc<CheckedProgram>,
    printed: &Arc<Mutex<Vec<String>>>,
    rng: &SharedRng,
    class: &str,
    routine_name: &str,
    args: Vec<Value>,
    obj: ObjRef<'_>,
    depth: usize,
) -> Result<Value, String> {
    if depth > MAX_CALL_DEPTH {
        return Err(format!(
            "call depth exceeded {MAX_CALL_DEPTH} in `{routine_name}`"
        ));
    }
    let class_decl = checked
        .program
        .class(class)
        .ok_or_else(|| format!("unknown class `{class}`"))?;
    let routine = class_decl
        .routine(routine_name)
        .ok_or_else(|| format!("class `{class}` has no routine `{routine_name}`"))?;
    if args.len() != routine.params.len() {
        return Err(format!(
            "`{routine_name}` expects {} argument(s), got {}",
            routine.params.len(),
            args.len()
        ));
    }

    let mut env = RoutineEnv {
        checked,
        printed,
        rng,
        class_info: &checked.classes[class],
        vars: HashMap::new(),
        result: routine
            .result
            .as_ref()
            .map(|_| Value::Int(0))
            .unwrap_or(Value::Void),
        obj,
        depth,
    };
    // Results default per declared type.
    if let Some(result_ty) = &routine.result {
        env.result = match result_ty {
            TypeExpr::Integer => Value::Int(0),
            TypeExpr::Boolean => Value::Bool(false),
            TypeExpr::Array => Value::Array(Vec::new()),
            TypeExpr::SeparateClass(_) => Value::Void,
        };
    }
    for (param, value) in routine.params.iter().zip(args) {
        env.vars.insert(param.name.clone(), value);
    }
    for local in &routine.locals {
        let default = match local.ty {
            TypeExpr::Integer => Value::Int(0),
            TypeExpr::Boolean => Value::Bool(false),
            TypeExpr::Array => Value::Array(Vec::new()),
            TypeExpr::SeparateClass(_) => Value::Void,
        };
        env.vars.insert(local.name.clone(), default);
    }

    if let Some(require) = &routine.require {
        if !env.eval(require)?.as_bool()? {
            return Err(format!("precondition of `{routine_name}` violated"));
        }
    }
    env.exec_stmts(&routine.body)?;
    if let Some(ensure) = &routine.ensure {
        if !env.eval(ensure)?.as_bool()? {
            return Err(format!("postcondition of `{routine_name}` violated"));
        }
    }
    Ok(env.result)
}

struct RoutineEnv<'a> {
    checked: &'a Arc<CheckedProgram>,
    printed: &'a Arc<Mutex<Vec<String>>>,
    rng: &'a SharedRng,
    class_info: &'a crate::sema::ClassInfo,
    vars: HashMap<String, Value>,
    result: Value,
    obj: ObjRef<'a>,
    depth: usize,
}

impl RoutineEnv<'_> {
    fn read_var(&self, name: &str) -> Result<Value, String> {
        if let Some(v) = self.vars.get(name) {
            return Ok(v.clone());
        }
        if let Some(&slot) = self.class_info.field_index.get(name) {
            return Ok(self.obj.fields()[slot].clone());
        }
        Err(format!("unknown variable `{name}`"))
    }

    fn write_var(&mut self, name: &str, value: Value) -> Result<(), String> {
        if let Some(slot) = self.vars.get_mut(name) {
            *slot = value;
            return Ok(());
        }
        if let Some(&slot) = self.class_info.field_index.get(name) {
            *self.obj.field_mut(slot)? = value;
            return Ok(());
        }
        Err(format!("unknown variable `{name}`"))
    }

    fn exec_stmts(&mut self, stmts: &[Stmt]) -> Result<(), String> {
        for stmt in stmts {
            self.exec_stmt(stmt)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<(), String> {
        match stmt {
            Stmt::Assign { target, value } => {
                let value = self.eval(value)?;
                match target {
                    LValue::Var(name, _) => self.write_var(name, value),
                    LValue::Result(_) => {
                        self.result = value;
                        Ok(())
                    }
                    LValue::Index { array, index, .. } => {
                        let i = self.eval(index)?.as_int()?;
                        let element = value.as_int()?;
                        let current = self.read_var(array)?;
                        let Value::Array(mut elements) = current else {
                            return Err(format!("`{array}` is not an ARRAY"));
                        };
                        let len = elements.len();
                        let slot = elements
                            .get_mut(usize::try_from(i).unwrap_or(usize::MAX))
                            .ok_or_else(|| {
                                format!("index {i} out of bounds for `{array}` of length {len}")
                            })?;
                        *slot = element;
                        self.write_var(array, Value::Array(elements))
                    }
                }
            }
            Stmt::If {
                arms, otherwise, ..
            } => {
                for (cond, branch) in arms {
                    if self.eval(cond)?.as_bool()? {
                        return self.exec_stmts(branch);
                    }
                }
                self.exec_stmts(otherwise)
            }
            Stmt::While { cond, body, .. } => {
                while self.eval(cond)?.as_bool()? {
                    self.exec_stmts(body)?;
                }
                Ok(())
            }
            Stmt::Print { value, .. } => {
                let line = match value {
                    PrintArg::Text(text) => text.clone(),
                    PrintArg::Value(expr) => self.eval(expr)?.render(),
                };
                self.printed
                    .lock()
                    .expect("print buffer poisoned")
                    .push(line);
                Ok(())
            }
            Stmt::LocalCommand { routine, args, .. } => {
                let args = args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<Result<Vec<_>, _>>()?;
                exec_routine(
                    self.checked,
                    self.printed,
                    self.rng,
                    &self.class_info.name,
                    routine,
                    args,
                    self.obj.reborrow(),
                    self.depth + 1,
                )?;
                Ok(())
            }
            Stmt::Create { var, .. } => {
                Err(format!("`create {var}` is not allowed inside a routine"))
            }
            Stmt::SeparateBlock { .. } => {
                Err("separate blocks are not allowed inside a routine".into())
            }
            Stmt::CommandCall {
                target, routine, ..
            } => Err(format!(
                "`{target}.{routine}`: separate calls are not allowed inside a routine"
            )),
        }
    }

    fn eval(&mut self, expr: &Expr) -> Result<Value, String> {
        match expr {
            Expr::Int(n, _) => Ok(Value::Int(*n)),
            Expr::Bool(b, _) => Ok(Value::Bool(*b)),
            Expr::Var(name, _) => self.read_var(name),
            Expr::Result(_) => Ok(self.result.clone()),
            Expr::Index { array, index, .. } => {
                let array_value = self.eval(array)?;
                let index_value = self.eval(index)?;
                index_array(&array_value, &index_value)
            }
            Expr::NewArray { len, .. } => {
                let len_value = self.eval(len)?;
                new_array(&len_value)
            }
            Expr::Length { array, .. } => {
                let array_value = self.eval(array)?;
                Ok(Value::Int(array_value.as_array()?.len() as i64))
            }
            Expr::Random { bound, .. } => {
                let bound = self.eval(bound)?.as_int()?;
                self.rng.next_below(bound).map(Value::Int)
            }
            Expr::QueryCall {
                target, routine, ..
            } => Err(format!(
                "`{target}.{routine}`: separate calls are not allowed inside a routine"
            )),
            Expr::LocalCall { routine, args, .. } => {
                let args = args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<Result<Vec<_>, _>>()?;
                exec_routine(
                    self.checked,
                    self.printed,
                    self.rng,
                    &self.class_info.name,
                    routine,
                    args,
                    self.obj.reborrow(),
                    self.depth + 1,
                )
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let left = self.eval(lhs)?;
                if let BinOp::And | BinOp::Or = op {
                    let l = left.as_bool()?;
                    if (*op == BinOp::And && !l) || (*op == BinOp::Or && l) {
                        return Ok(Value::Bool(l));
                    }
                    return Ok(Value::Bool(self.eval(rhs)?.as_bool()?));
                }
                let right = self.eval(rhs)?;
                apply_binary(*op, &left, &right)
            }
            Expr::Unary { op, expr, .. } => {
                let value = self.eval(expr)?;
                apply_unary(*op, &value)
            }
        }
    }
}

// ---- shared value operations ------------------------------------------------

fn index_array(array: &Value, index: &Value) -> Result<Value, String> {
    let elements = array.as_array()?;
    let i = index.as_int()?;
    let len = elements.len();
    elements
        .get(usize::try_from(i).unwrap_or(usize::MAX))
        .map(|v| Value::Int(*v))
        .ok_or_else(|| format!("index {i} out of bounds for an array of length {len}"))
}

fn new_array(len: &Value) -> Result<Value, String> {
    let n = len.as_int()?;
    if n < 0 {
        return Err(format!("array({n}): length must be non-negative"));
    }
    Ok(Value::Array(vec![0; n as usize]))
}

fn apply_binary(op: BinOp, left: &Value, right: &Value) -> Result<Value, String> {
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let l = left.as_int()?;
            let r = right.as_int()?;
            let value = match op {
                BinOp::Add => l.wrapping_add(r),
                BinOp::Sub => l.wrapping_sub(r),
                BinOp::Mul => l.wrapping_mul(r),
                BinOp::Div => {
                    if r == 0 {
                        return Err("division by zero".into());
                    }
                    l.wrapping_div(r)
                }
                BinOp::Mod => {
                    if r == 0 {
                        return Err("modulo by zero".into());
                    }
                    l.wrapping_rem(r)
                }
                _ => unreachable!(),
            };
            Ok(Value::Int(value))
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let l = left.as_int()?;
            let r = right.as_int()?;
            let value = match op {
                BinOp::Lt => l < r,
                BinOp::Le => l <= r,
                BinOp::Gt => l > r,
                BinOp::Ge => l >= r,
                _ => unreachable!(),
            };
            Ok(Value::Bool(value))
        }
        BinOp::Eq => Ok(Value::Bool(left == right)),
        BinOp::Neq => Ok(Value::Bool(left != right)),
        BinOp::And => Ok(Value::Bool(left.as_bool()? && right.as_bool()?)),
        BinOp::Or => Ok(Value::Bool(left.as_bool()? || right.as_bool()?)),
    }
}

fn apply_unary(op: UnOp, value: &Value) -> Result<Value, String> {
    match op {
        UnOp::Neg => Ok(Value::Int(value.as_int()?.wrapping_neg())),
        UnOp::Not => Ok(Value::Bool(!value.as_bool()?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::sema::check_program;
    use qs_runtime::{OptimizationLevel, RuntimeConfig};

    fn checked(source: &str) -> CheckedProgram {
        check_program(parse_program(source).unwrap()).unwrap()
    }

    fn run(source: &str, strategy: QueryStrategy) -> RunOutput {
        let runtime = Runtime::new(RuntimeConfig::all_optimizations());
        run_program(&checked(source), &runtime, strategy).unwrap()
    }

    const COUNTER: &str = "class COUNTER\n\
         attribute count : INTEGER\n\
         command bump(amount: INTEGER) do count := count + amount end\n\
         command reset do count := 0 end\n\
         query value : INTEGER do Result := count end\n\
       end\n";

    #[test]
    fn counter_program_produces_expected_output() {
        let source = format!(
            "{COUNTER}\
             main local c : separate COUNTER local v : INTEGER local i : INTEGER do \
               create c \
               separate c do \
                 i := 0 \
                 while i < 10 loop c.bump(2) i := i + 1 end \
                 v := c.value() \
               end \
               print(v) \
             end"
        );
        for strategy in [
            QueryStrategy::RuntimeManaged,
            QueryStrategy::NaiveSync,
            QueryStrategy::static_for(&checked(&source)),
        ] {
            let output = run(&source, strategy);
            assert_eq!(output.printed, vec!["20"]);
            assert_eq!(output.handlers_created, 1);
        }
    }

    #[test]
    fn static_plan_elides_syncs_in_copy_loops() {
        let source = "class STORE\n\
               attribute data : ARRAY\n\
               command fill(n: INTEGER) local i : INTEGER do \
                 data := array(n) i := 0 \
                 while i < n loop data[i] := i * i i := i + 1 end \
               end\n\
               query item(i: INTEGER) : INTEGER do Result := data[i] end\n\
               query size : INTEGER do Result := length(data) end\n\
             end\n\
             main local s : separate STORE local x : ARRAY local i : INTEGER local n : INTEGER do \
               create s \
               separate s do \
                 s.fill(50) \
                 n := s.size() \
                 x := array(n) \
                 i := 0 \
                 while i < n loop x[i] := s.item(i) i := i + 1 end \
               end \
               print(x[49]) \
             end"
        .to_string();
        let program = checked(&source);

        // Naive: one sync round-trip per query (51 queries).  Run on a
        // configuration without dynamic coalescing so the runtime cannot help.
        let naive_rt = Runtime::new(OptimizationLevel::QoQ.config());
        let naive = run_program(&program, &naive_rt, QueryStrategy::NaiveSync).unwrap();
        assert_eq!(naive.printed, vec![format!("{}", 49 * 49)]);
        assert_eq!(naive.stats.syncs_performed, 51);

        // Static: the loop-body sync is elided; only `size` (after the fill)
        // and the defensive first sync remain.
        let static_rt = Runtime::new(OptimizationLevel::QoQ.config());
        let static_plan = QueryStrategy::static_for(&program);
        let optimized = run_program(&program, &static_rt, static_plan).unwrap();
        assert_eq!(optimized.printed, vec![format!("{}", 49 * 49)]);
        assert!(
            optimized.stats.syncs_performed <= 2,
            "expected at most 2 sync round-trips, measured {}",
            optimized.stats.syncs_performed
        );
    }

    #[test]
    fn contracts_are_enforced() {
        let source = "class GAUGE\n\
             attribute level : INTEGER\n\
             command raise(amount: INTEGER) require amount > 0 do level := level + amount ensure level > 0 end\n\
             query value : INTEGER do Result := level end\n\
           end\n\
           main local g : separate GAUGE local v : INTEGER do \
             create g separate g do g.raise(0 - 5) v := g.value() end print(v) end";
        let runtime = Runtime::new(RuntimeConfig::all_optimizations());
        let err =
            run_program(&checked(source), &runtime, QueryStrategy::RuntimeManaged).unwrap_err();
        assert!(err.message.contains("precondition"), "got: {}", err.message);
    }

    #[test]
    fn postcondition_violation_in_query_is_reported() {
        let source = "class BROKEN\n\
             attribute n : INTEGER\n\
             query bad : INTEGER do Result := 0 ensure Result > 0 end\n\
           end\n\
           main local b : separate BROKEN local v : INTEGER do \
             create b separate b do v := b.bad() end end";
        let runtime = Runtime::new(RuntimeConfig::all_optimizations());
        let err =
            run_program(&checked(source), &runtime, QueryStrategy::RuntimeManaged).unwrap_err();
        assert!(err.message.contains("postcondition"));
    }

    #[test]
    fn multi_handler_blocks_keep_consistency() {
        let source = format!(
            "{COUNTER}\
             main local a : separate COUNTER local b : separate COUNTER \
                  local x : INTEGER local y : INTEGER do \
               create a create b \
               separate a, b do \
                 a.bump(7) b.bump(7) \
                 x := a.value() y := b.value() \
               end \
               if x = y then print(\"consistent\") else print(\"inconsistent\") end \
             end"
        );
        let output = run(&source, QueryStrategy::RuntimeManaged);
        assert_eq!(output.printed, vec!["consistent"]);
        assert_eq!(output.handlers_created, 2);
    }

    #[test]
    fn nested_separate_blocks_reach_outer_reservations() {
        let source = format!(
            "{COUNTER}\
             main local a : separate COUNTER local b : separate COUNTER local v : INTEGER do \
               create a create b \
               separate a do \
                 a.bump(1) \
                 separate b do \
                   b.bump(2) \
                   a.bump(3) \
                   v := a.value() + b.value() \
                 end \
               end \
               print(v) \
             end"
        );
        let output = run(&source, QueryStrategy::RuntimeManaged);
        assert_eq!(output.printed, vec!["6"]);
    }

    #[test]
    fn handler_side_prints_and_local_calls_work() {
        let source = "class WORKER\n\
             attribute total : INTEGER\n\
             query double(v: INTEGER) : INTEGER do Result := v * 2 end\n\
             command work(v: INTEGER) do total := total + double(v) print(total) end\n\
             query total_done : INTEGER do Result := total end\n\
           end\n\
           main local w : separate WORKER local t : INTEGER do \
             create w separate w do w.work(5) w.work(10) t := w.total_done() end print(t) end";
        let output = run(source, QueryStrategy::RuntimeManaged);
        assert_eq!(output.printed, vec!["10", "30", "30"]);
    }

    #[test]
    fn runtime_errors_carry_positions_and_stop_handlers() {
        let source = format!(
            "{COUNTER}\
             main local c : separate COUNTER local v : INTEGER do \
               create c separate c do v := c.value() end v := v / 0 end"
        );
        let runtime = Runtime::new(RuntimeConfig::all_optimizations());
        let err =
            run_program(&checked(&source), &runtime, QueryStrategy::RuntimeManaged).unwrap_err();
        assert!(err.message.contains("division by zero"));
        assert!(err.pos.is_some());
    }

    #[test]
    fn async_command_errors_surface_after_the_run() {
        let source = "class FUSSY\n\
             attribute n : INTEGER\n\
             command must_be_positive(v: INTEGER) require v > 0 do n := v end\n\
           end\n\
           main local f : separate FUSSY do \
             create f separate f do f.must_be_positive(0 - 1) end end";
        let runtime = Runtime::new(RuntimeConfig::all_optimizations());
        let err =
            run_program(&checked(source), &runtime, QueryStrategy::RuntimeManaged).unwrap_err();
        assert!(err.message.contains("asynchronous command"));
        assert!(err.message.contains("precondition"));
    }

    #[test]
    fn every_optimization_level_computes_the_same_answer() {
        let source = format!(
            "{COUNTER}\
             main local c : separate COUNTER local v : INTEGER local i : INTEGER do \
               create c \
               separate c do \
                 i := 0 \
                 while i < 25 loop c.bump(i) i := i + 1 end \
                 v := c.value() \
               end \
               print(v) \
             end"
        );
        let program = checked(&source);
        let expected = (0..25).sum::<i64>().to_string();
        for level in [
            OptimizationLevel::None,
            OptimizationLevel::Dynamic,
            OptimizationLevel::Static,
            OptimizationLevel::QoQ,
            OptimizationLevel::All,
        ] {
            let runtime = Runtime::new(level.config());
            let strategy = if level == OptimizationLevel::Static {
                QueryStrategy::static_for(&program)
            } else {
                QueryStrategy::RuntimeManaged
            };
            let output = run_program(&program, &runtime, strategy).unwrap();
            assert_eq!(output.printed, vec![expected.clone()], "level {level}");
        }
    }

    #[test]
    fn declared_read_blocks_execute_queries_client_side() {
        let source = format!(
            "{COUNTER}\
             main local c : separate COUNTER local v : INTEGER local i : INTEGER do \
               create c \
               separate c do c.bump(5) end \
               separate read c do \
                 i := 0 \
                 while i < 20 loop v := v + c.value() i := i + 1 end \
               end \
               print(v) \
             end"
        );
        let output = run(&source, QueryStrategy::RuntimeManaged);
        assert_eq!(output.printed, vec!["100"]);
        assert!(
            output.stats.read_reservations >= 1,
            "declared read block must take a shared-read reservation"
        );
    }

    #[test]
    fn auto_read_downgrades_inferred_blocks() {
        let source = format!(
            "{COUNTER}\
             main local c : separate COUNTER local v : INTEGER do \
               create c \
               separate c do c.bump(3) end \
               separate c do v := c.value() + c.value() end \
               print(v) \
             end"
        );
        let program = checked(&source);
        assert_eq!(program.inferred_read_blocks.len(), 1);

        let on = Runtime::new(RuntimeConfig::all_optimizations());
        let with_auto = run_program(&program, &on, QueryStrategy::RuntimeManaged).unwrap();
        assert_eq!(with_auto.printed, vec!["6"]);
        assert!(with_auto.stats.read_reservations >= 1);

        let off = Runtime::new(RuntimeConfig::all_optimizations().with_auto_read(false));
        let without = run_program(&program, &off, QueryStrategy::RuntimeManaged).unwrap();
        assert_eq!(without.printed, vec!["6"]);
        assert_eq!(
            without.stats.read_reservations, 0,
            "auto_read off must keep the exclusive reservation"
        );
    }

    #[test]
    fn read_frame_reaches_outer_exclusive_reservations() {
        let source = format!(
            "{COUNTER}\
             main local a : separate COUNTER local b : separate COUNTER local v : INTEGER do \
               create a create b \
               separate a do \
                 a.bump(2) \
                 separate read b do v := a.value() + b.value() end \
               end \
               print(v) \
             end"
        );
        let output = run(&source, QueryStrategy::RuntimeManaged);
        assert_eq!(output.printed, vec!["2"]);
    }

    #[test]
    fn arrays_random_and_printing_in_main() {
        let source = "main local a : ARRAY local i : INTEGER local total : INTEGER do \
             a := array(8) i := 0 \
             while i < 8 loop a[i] := random(10) total := total + a[i] i := i + 1 end \
             if total >= 0 and total <= 72 then print(\"in range\") else print(\"out of range\") end \
             print(length(a)) \
           end";
        let output = run(source, QueryStrategy::RuntimeManaged);
        assert_eq!(output.printed, vec!["in range", "8"]);
    }
}
