//! Recursive-descent parser producing the [`crate::ast`] representation.
//!
//! The grammar is LL(2): one token of lookahead decides almost everything,
//! and the distinction between `x := …`, `x.f(…)`, `x[i] := …` and `f(…)` at
//! statement level needs a peek at the second token.

use crate::ast::*;
use crate::error::{LangError, LangResult, Phase, Pos};
use crate::token::{lex, Token, TokenKind};

/// Parses a complete program from source text.
pub fn parse_program(source: &str) -> LangResult<Program> {
    let tokens = lex(source)?;
    Parser::new(tokens).program()
}

/// Parses a single expression (used by tests and the REPL-style helpers).
pub fn parse_expr(source: &str) -> LangResult<Expr> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    let expr = parser.expr()?;
    parser.expect(TokenKind::Eof)?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    index: usize,
    next_site: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            index: 0,
            next_site: 0,
        }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.index.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.index + 1).min(self.tokens.len() - 1)]
    }

    fn pos(&self) -> Pos {
        self.peek().pos
    }

    fn bump(&mut self) -> Token {
        let token = self.peek().clone();
        if self.index < self.tokens.len() - 1 {
            self.index += 1;
        }
        token
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> LangResult<Token> {
        if self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("expected {}", kind.describe())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> LangResult<(String, Pos)> {
        let token = self.peek().clone();
        match token.kind {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, token.pos))
            }
            _ => Err(self.unexpected(&format!("expected {what}"))),
        }
    }

    fn unexpected(&self, expected: &str) -> LangError {
        LangError::at(
            Phase::Parse,
            self.pos(),
            format!("{expected}, found {}", self.peek().kind.describe()),
        )
    }

    fn fresh_site(&mut self) -> usize {
        let site = self.next_site;
        self.next_site += 1;
        site
    }

    // ---- declarations -----------------------------------------------------

    fn program(&mut self) -> LangResult<Program> {
        let mut classes = Vec::new();
        while self.peek().kind == TokenKind::Class {
            classes.push(self.class_decl()?);
        }
        if self.peek().kind != TokenKind::Main {
            return Err(self.unexpected("expected `class` or `main`"));
        }
        let main = self.main_decl()?;
        self.expect(TokenKind::Eof)?;
        Ok(Program { classes, main })
    }

    fn class_decl(&mut self) -> LangResult<ClassDecl> {
        let pos = self.pos();
        self.expect(TokenKind::Class)?;
        let (name, _) = self.expect_ident("a class name")?;
        let mut attributes = Vec::new();
        let mut routines = Vec::new();
        loop {
            match self.peek().kind {
                TokenKind::Attribute => {
                    self.bump();
                    let (attr_name, attr_pos) = self.expect_ident("an attribute name")?;
                    self.expect(TokenKind::Colon)?;
                    let ty = self.type_expr()?;
                    attributes.push(Decl {
                        name: attr_name,
                        ty,
                        pos: attr_pos,
                    });
                }
                TokenKind::Command => routines.push(self.routine(RoutineKind::Command)?),
                TokenKind::Query => routines.push(self.routine(RoutineKind::Query)?),
                TokenKind::End => {
                    self.bump();
                    break;
                }
                _ => {
                    return Err(self.unexpected("expected `attribute`, `command`, `query` or `end`"))
                }
            }
        }
        Ok(ClassDecl {
            name,
            attributes,
            routines,
            pos,
        })
    }

    fn routine(&mut self, kind: RoutineKind) -> LangResult<Routine> {
        let pos = self.pos();
        self.bump(); // `command` or `query`
        let (name, _) = self.expect_ident("a routine name")?;
        let params = if self.peek().kind == TokenKind::LParen {
            self.param_list()?
        } else {
            Vec::new()
        };
        let result = if self.eat(&TokenKind::Colon) {
            Some(self.type_expr()?)
        } else {
            None
        };
        if kind == RoutineKind::Query && result.is_none() {
            return Err(LangError::at(
                Phase::Parse,
                pos,
                format!("query `{name}` must declare a result type"),
            ));
        }
        if kind == RoutineKind::Command && result.is_some() {
            return Err(LangError::at(
                Phase::Parse,
                pos,
                format!("command `{name}` must not declare a result type"),
            ));
        }
        let locals = self.local_decls()?;
        let require = if self.eat(&TokenKind::Require) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(TokenKind::Do)?;
        let body = self.stmts(&[TokenKind::End, TokenKind::Ensure])?;
        let ensure = if self.eat(&TokenKind::Ensure) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(TokenKind::End)?;
        Ok(Routine {
            kind,
            name,
            params,
            result,
            locals,
            require,
            ensure,
            body,
            pos,
        })
    }

    fn param_list(&mut self) -> LangResult<Vec<Decl>> {
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                let (name, pos) = self.expect_ident("a parameter name")?;
                self.expect(TokenKind::Colon)?;
                let ty = self.type_expr()?;
                params.push(Decl { name, ty, pos });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(params)
    }

    fn local_decls(&mut self) -> LangResult<Vec<Decl>> {
        let mut locals = Vec::new();
        while self.eat(&TokenKind::Local) {
            loop {
                let (name, pos) = self.expect_ident("a local variable name")?;
                self.expect(TokenKind::Colon)?;
                let ty = self.type_expr()?;
                locals.push(Decl { name, ty, pos });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        Ok(locals)
    }

    fn main_decl(&mut self) -> LangResult<MainDecl> {
        let pos = self.pos();
        self.expect(TokenKind::Main)?;
        let locals = self.local_decls()?;
        self.expect(TokenKind::Do)?;
        let body = self.stmts(&[TokenKind::End])?;
        self.expect(TokenKind::End)?;
        Ok(MainDecl { locals, body, pos })
    }

    fn type_expr(&mut self) -> LangResult<TypeExpr> {
        if self.eat(&TokenKind::Separate) {
            let (class, _) = self.expect_ident("a class name after `separate`")?;
            return Ok(TypeExpr::SeparateClass(class));
        }
        let (name, pos) = self.expect_ident("a type name")?;
        match name.as_str() {
            "INTEGER" => Ok(TypeExpr::Integer),
            "BOOLEAN" => Ok(TypeExpr::Boolean),
            "ARRAY" => Ok(TypeExpr::Array),
            other => Err(LangError::at(
                Phase::Parse,
                pos,
                format!("unknown type `{other}`; class types must be written `separate {other}`"),
            )),
        }
    }

    // ---- statements -------------------------------------------------------

    /// Parses statements until one of `terminators` (not consumed).
    fn stmts(&mut self, terminators: &[TokenKind]) -> LangResult<Vec<Stmt>> {
        let mut stmts = Vec::new();
        loop {
            while self.eat(&TokenKind::Semicolon) {}
            if terminators.contains(&self.peek().kind) || self.peek().kind == TokenKind::Eof {
                return Ok(stmts);
            }
            stmts.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> LangResult<Stmt> {
        let pos = self.pos();
        match self.peek().kind.clone() {
            TokenKind::Create => {
                self.bump();
                let (var, _) = self.expect_ident("a variable name after `create`")?;
                Ok(Stmt::Create { var, pos })
            }
            TokenKind::Separate => {
                self.bump();
                // Contextual `read` modifier: `separate read x, y do … end`
                // reserves the targets in shared read mode.  `read` only
                // acts as the modifier when another identifier follows, so a
                // variable named `read` can still be reserved with
                // `separate read do … end`.
                let read = matches!(
                    (&self.peek().kind, &self.peek2().kind),
                    (TokenKind::Ident(name), TokenKind::Ident(_)) if name == "read"
                );
                if read {
                    self.bump();
                }
                let mut targets = Vec::new();
                let (first, _) = self.expect_ident("a separate variable name")?;
                targets.push(first);
                while self.eat(&TokenKind::Comma) {
                    let (next, _) = self.expect_ident("a separate variable name")?;
                    targets.push(next);
                }
                self.expect(TokenKind::Do)?;
                let body = self.stmts(&[TokenKind::End])?;
                self.expect(TokenKind::End)?;
                Ok(Stmt::SeparateBlock {
                    targets,
                    read,
                    body,
                    pos,
                })
            }
            TokenKind::If => {
                self.bump();
                let mut arms = Vec::new();
                let cond = self.expr()?;
                self.expect(TokenKind::Then)?;
                let branch = self.stmts(&[TokenKind::Elseif, TokenKind::Else, TokenKind::End])?;
                arms.push((cond, branch));
                while self.eat(&TokenKind::Elseif) {
                    let cond = self.expr()?;
                    self.expect(TokenKind::Then)?;
                    let branch =
                        self.stmts(&[TokenKind::Elseif, TokenKind::Else, TokenKind::End])?;
                    arms.push((cond, branch));
                }
                let otherwise = if self.eat(&TokenKind::Else) {
                    self.stmts(&[TokenKind::End])?
                } else {
                    Vec::new()
                };
                self.expect(TokenKind::End)?;
                Ok(Stmt::If {
                    arms,
                    otherwise,
                    pos,
                })
            }
            TokenKind::While => {
                self.bump();
                let cond = self.expr()?;
                self.expect(TokenKind::Loop)?;
                let body = self.stmts(&[TokenKind::End])?;
                self.expect(TokenKind::End)?;
                Ok(Stmt::While { cond, body, pos })
            }
            TokenKind::Print => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let value = if let TokenKind::Str(text) = self.peek().kind.clone() {
                    self.bump();
                    PrintArg::Text(text)
                } else {
                    PrintArg::Value(self.expr()?)
                };
                self.expect(TokenKind::RParen)?;
                Ok(Stmt::Print { value, pos })
            }
            TokenKind::ResultKw => {
                self.bump();
                self.expect(TokenKind::Assign)?;
                let value = self.expr()?;
                Ok(Stmt::Assign {
                    target: LValue::Result(pos),
                    value,
                })
            }
            TokenKind::Ident(name) => self.ident_stmt(name, pos),
            _ => Err(self.unexpected("expected a statement")),
        }
    }

    /// Statements beginning with an identifier: assignment, indexed
    /// assignment, command call on a separate target, or local command call.
    fn ident_stmt(&mut self, name: String, pos: Pos) -> LangResult<Stmt> {
        match self.peek2().kind.clone() {
            TokenKind::Assign => {
                self.bump(); // ident
                self.bump(); // :=
                let value = self.expr()?;
                Ok(Stmt::Assign {
                    target: LValue::Var(name, pos),
                    value,
                })
            }
            TokenKind::LBracket => {
                self.bump(); // ident
                self.bump(); // [
                let index = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                self.expect(TokenKind::Assign)?;
                let value = self.expr()?;
                Ok(Stmt::Assign {
                    target: LValue::Index {
                        array: name,
                        index,
                        pos,
                    },
                    value,
                })
            }
            TokenKind::Dot => {
                self.bump(); // ident
                self.bump(); // .
                let (routine, _) = self.expect_ident("a routine name")?;
                let args = self.arg_list()?;
                Ok(Stmt::CommandCall {
                    target: name,
                    routine,
                    args,
                    pos,
                })
            }
            TokenKind::LParen => {
                self.bump(); // ident
                let args = self.arg_list()?;
                Ok(Stmt::LocalCommand {
                    routine: name,
                    args,
                    pos,
                })
            }
            _ => {
                // Consume the identifier so the error points at the confusing
                // token after it.
                self.bump();
                Err(self.unexpected("expected `:=`, `[`, `.` or `(` after identifier"))
            }
        }
    }

    fn arg_list(&mut self) -> LangResult<Vec<Expr>> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(args)
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> LangResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.peek().kind == TokenKind::Or {
            let pos = self.pos();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.peek().kind == TokenKind::And {
            let pos = self.pos();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> LangResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek().kind {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Neq => BinOp::Neq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        let pos = self.pos();
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            pos,
        })
    }

    fn add_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
    }

    fn mul_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Mod => BinOp::Mod,
                _ => return Ok(lhs),
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
    }

    fn unary_expr(&mut self) -> LangResult<Expr> {
        let pos = self.pos();
        if self.eat(&TokenKind::Minus) {
            let expr = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(expr),
                pos,
            });
        }
        if self.eat(&TokenKind::Not) {
            let expr = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(expr),
                pos,
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> LangResult<Expr> {
        let mut expr = self.primary_expr()?;
        while self.peek().kind == TokenKind::LBracket {
            let pos = self.pos();
            self.bump();
            let index = self.expr()?;
            self.expect(TokenKind::RBracket)?;
            expr = Expr::Index {
                array: Box::new(expr),
                index: Box::new(index),
                pos,
            };
        }
        Ok(expr)
    }

    fn primary_expr(&mut self) -> LangResult<Expr> {
        let pos = self.pos();
        match self.peek().kind.clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Int(n, pos))
            }
            TokenKind::Bool(b) => {
                self.bump();
                Ok(Expr::Bool(b, pos))
            }
            TokenKind::ResultKw => {
                self.bump();
                Ok(Expr::Result(pos))
            }
            TokenKind::LParen => {
                self.bump();
                let expr = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(expr)
            }
            TokenKind::Ident(name) => self.ident_expr(name, pos),
            _ => Err(self.unexpected("expected an expression")),
        }
    }

    fn ident_expr(&mut self, name: String, pos: Pos) -> LangResult<Expr> {
        match self.peek2().kind.clone() {
            TokenKind::Dot => {
                self.bump(); // ident
                self.bump(); // .
                let (routine, _) = self.expect_ident("a routine name")?;
                let args = self.arg_list()?;
                let site = self.fresh_site();
                Ok(Expr::QueryCall {
                    target: name,
                    routine,
                    args,
                    pos,
                    site,
                })
            }
            TokenKind::LParen => {
                self.bump(); // ident
                let args = self.arg_list()?;
                match name.as_str() {
                    "array" => {
                        let len = Self::single_arg(args, pos, "array")?;
                        Ok(Expr::NewArray {
                            len: Box::new(len),
                            pos,
                        })
                    }
                    "length" => {
                        let arr = Self::single_arg(args, pos, "length")?;
                        Ok(Expr::Length {
                            array: Box::new(arr),
                            pos,
                        })
                    }
                    "random" => {
                        let bound = Self::single_arg(args, pos, "random")?;
                        Ok(Expr::Random {
                            bound: Box::new(bound),
                            pos,
                        })
                    }
                    _ => Ok(Expr::LocalCall {
                        routine: name,
                        args,
                        pos,
                    }),
                }
            }
            _ => {
                self.bump();
                Ok(Expr::Var(name, pos))
            }
        }
    }

    fn single_arg(mut args: Vec<Expr>, pos: Pos, builtin: &str) -> LangResult<Expr> {
        if args.len() != 1 {
            return Err(LangError::at(
                Phase::Parse,
                pos,
                format!(
                    "builtin `{builtin}` takes exactly one argument, got {}",
                    args.len()
                ),
            ));
        }
        Ok(args.remove(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_program() {
        let program = parse_program(
            "class COUNTER\n\
               attribute count : INTEGER\n\
               command bump(amount: INTEGER) do count := count + amount end\n\
               query value : INTEGER do Result := count end\n\
             end\n\
             main\n\
               local c : separate COUNTER\n\
               local v : INTEGER\n\
             do\n\
               create c\n\
               separate c do\n\
                 c.bump(3);\n\
                 v := c.value()\n\
               end;\n\
               print(v)\n\
             end",
        )
        .unwrap();
        assert_eq!(program.classes.len(), 1);
        let class = &program.classes[0];
        assert_eq!(class.name, "COUNTER");
        assert_eq!(class.attributes.len(), 1);
        assert_eq!(class.routines.len(), 2);
        assert_eq!(program.main.locals.len(), 2);
        assert_eq!(program.main.body.len(), 3);
        match &program.main.body[1] {
            Stmt::SeparateBlock { targets, body, .. } => {
                assert_eq!(targets, &vec!["c".to_string()]);
                assert_eq!(body.len(), 2);
                assert!(matches!(body[0], Stmt::CommandCall { .. }));
            }
            other => panic!("expected separate block, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence_is_standard() {
        let expr = parse_expr("1 + 2 * 3").unwrap();
        match expr {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        let cmp = parse_expr("1 + 1 = 2 and true").unwrap();
        assert!(matches!(cmp, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn query_calls_get_distinct_sites() {
        let program = parse_program(
            "main local x : separate C local a : INTEGER do \
               create x separate x do a := x.f() + x.g() end end",
        )
        .unwrap();
        let Stmt::SeparateBlock { body, .. } = &program.main.body[1] else {
            panic!("expected separate block");
        };
        let Stmt::Assign { value, .. } = &body[0] else {
            panic!("expected assignment");
        };
        let Expr::Binary { lhs, rhs, .. } = value else {
            panic!("expected binary expr");
        };
        let (Expr::QueryCall { site: s1, .. }, Expr::QueryCall { site: s2, .. }) =
            (lhs.as_ref(), rhs.as_ref())
        else {
            panic!("expected two query calls");
        };
        assert_ne!(s1, s2);
    }

    #[test]
    fn builtins_are_recognised() {
        assert!(matches!(
            parse_expr("array(10)").unwrap(),
            Expr::NewArray { .. }
        ));
        assert!(matches!(
            parse_expr("length(a)").unwrap(),
            Expr::Length { .. }
        ));
        assert!(matches!(
            parse_expr("random(6)").unwrap(),
            Expr::Random { .. }
        ));
        assert!(matches!(
            parse_expr("helper(1, 2)").unwrap(),
            Expr::LocalCall { .. }
        ));
    }

    #[test]
    fn indexed_assignment_and_reads() {
        let program = parse_program(
            "main local a : ARRAY local i : INTEGER do a := array(4) a[0] := 7 i := a[0] end",
        )
        .unwrap();
        assert!(matches!(
            program.main.body[1],
            Stmt::Assign {
                target: LValue::Index { .. },
                ..
            }
        ));
    }

    #[test]
    fn if_elseif_else_and_while() {
        let program = parse_program(
            "main local i : INTEGER do \
               while i < 10 loop \
                 if i mod 2 = 0 then i := i + 2 elseif i > 5 then i := i + 1 else i := i + 3 end \
               end \
             end",
        )
        .unwrap();
        let Stmt::While { body, .. } = &program.main.body[0] else {
            panic!("expected while");
        };
        let Stmt::If {
            arms, otherwise, ..
        } = &body[0]
        else {
            panic!("expected if");
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(otherwise.len(), 1);
    }

    #[test]
    fn contracts_parse_on_routines() {
        let program = parse_program(
            "class BUF\n\
               attribute n : INTEGER\n\
               command put(v: INTEGER) require n < 10 do n := n + 1 ensure n > 0 end\n\
               query size : INTEGER do Result := n end\n\
             end\n\
             main do end",
        )
        .unwrap();
        let routine = program.classes[0].routine("put").unwrap();
        assert!(routine.require.is_some());
        assert!(routine.ensure.is_some());
    }

    #[test]
    fn query_without_result_type_is_rejected() {
        let err = parse_program("class C query f do Result := 1 end end main do end").unwrap_err();
        assert!(err.message.contains("result type"));
    }

    #[test]
    fn command_with_result_type_is_rejected() {
        let err = parse_program("class C command f : INTEGER do end end main do end").unwrap_err();
        assert!(err.message.contains("must not declare"));
    }

    #[test]
    fn unknown_bare_class_type_is_rejected() {
        let err = parse_program("main local x : ACCOUNT do end").unwrap_err();
        assert!(err.message.contains("separate ACCOUNT"));
    }

    #[test]
    fn error_reports_position() {
        let err = parse_program("main do x + end").unwrap_err();
        assert_eq!(err.phase, Phase::Parse);
        assert!(err.pos.is_some());
    }

    #[test]
    fn multi_target_separate_block() {
        let program = parse_program(
            "main local x : separate C local y : separate C do \
               create x create y separate x, y do x.f(1) y.f(2) end end",
        )
        .unwrap();
        let Stmt::SeparateBlock { targets, read, .. } = &program.main.body[2] else {
            panic!("expected separate block");
        };
        assert_eq!(targets.len(), 2);
        assert!(!read);
    }

    #[test]
    fn separate_read_modifier_is_contextual() {
        let program = parse_program(
            "main local x : separate C local y : separate C local a : INTEGER do \
               create x create y separate read x, y do a := x.f() end end",
        )
        .unwrap();
        let Stmt::SeparateBlock { targets, read, .. } = &program.main.body[2] else {
            panic!("expected separate block");
        };
        assert!(read);
        assert_eq!(targets, &vec!["x".to_string(), "y".to_string()]);

        // A variable actually named `read` still parses as a target.
        let program = parse_program(
            "main local read : separate C do create read separate read do read.f(1) end end",
        )
        .unwrap();
        let Stmt::SeparateBlock { targets, read, .. } = &program.main.body[1] else {
            panic!("expected separate block");
        };
        assert!(!read);
        assert_eq!(targets, &vec!["read".to_string()]);

        // ... including in a `read`-modified multi-target list.
        let program = parse_program(
            "main local read : separate C local y : separate C local a : INTEGER do \
               create read create y separate read read, y do a := read.f() end end",
        )
        .unwrap();
        let Stmt::SeparateBlock { targets, read, .. } = &program.main.body[2] else {
            panic!("expected separate block");
        };
        assert!(read);
        assert_eq!(targets, &vec!["read".to_string(), "y".to_string()]);
    }
}
