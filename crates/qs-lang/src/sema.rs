//! Semantic analysis: name resolution, type checking and the *separateness*
//! rules of the SCOOP model.
//!
//! The central SCOOP rule enforced here is the one §2.1 of the paper states:
//! "methods may only be called on a separate object if it is protected by a
//! separate block".  The checker walks `main` tracking which separate
//! variables are reserved by enclosing `separate` blocks and rejects calls on
//! unprotected targets.  It also performs conventional checks — duplicate
//! names, unknown routines, arity and type mismatches — and resolves class
//! attributes to field slots so the interpreter does not need name lookups on
//! the hot path.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::*;
use crate::error::{LangError, LangResult, Phase, Pos};

/// The value types of the language (object references are tracked separately
/// because they may only be used as call targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// 64-bit integer.
    Int,
    /// Boolean.
    Bool,
    /// One-dimensional integer array.
    Array,
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Int => f.write_str("INTEGER"),
            Type::Bool => f.write_str("BOOLEAN"),
            Type::Array => f.write_str("ARRAY"),
        }
    }
}

/// Signature of a routine, as needed by call sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutineSig {
    /// Command or query.
    pub kind: RoutineKind,
    /// Parameter types in order.
    pub params: Vec<Type>,
    /// Result type (queries only).
    pub result: Option<Type>,
}

/// Resolved information about one class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassInfo {
    /// The class name.
    pub name: String,
    /// Field slots in declaration order.
    pub fields: Vec<(String, Type)>,
    /// Map from attribute name to field slot.
    pub field_index: BTreeMap<String, usize>,
    /// Routine signatures by name.
    pub routines: BTreeMap<String, RoutineSig>,
}

/// The output of the checker: the program plus resolved tables.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedProgram {
    /// The (unchanged) parsed program.
    pub program: Program,
    /// Resolved class information by class name.
    pub classes: BTreeMap<String, ClassInfo>,
    /// Handler-variable index assigned to each separate local of `main`
    /// (used by the IR lowering; indices are dense starting at 0).
    pub handler_vars: BTreeMap<String, usize>,
    /// Class name of each separate local of `main`.
    pub handler_classes: BTreeMap<String, String>,
    /// Number of query call sites in `main` (sites are numbered densely by
    /// the parser).
    pub query_sites: usize,
}

/// Runs all semantic checks on a parsed program.
pub fn check_program(program: Program) -> LangResult<CheckedProgram> {
    let classes = build_class_table(&program)?;
    for class in &program.classes {
        check_class(class, &classes)?;
    }
    let (handler_vars, handler_classes) = collect_separate_locals(&program.main, &classes)?;
    let query_sites = check_main(&program.main, &classes, &handler_vars)?;
    Ok(CheckedProgram {
        program,
        classes,
        handler_vars,
        handler_classes,
        query_sites,
    })
}

fn value_type(ty: &TypeExpr, pos: Pos, what: &str) -> LangResult<Type> {
    match ty {
        TypeExpr::Integer => Ok(Type::Int),
        TypeExpr::Boolean => Ok(Type::Bool),
        TypeExpr::Array => Ok(Type::Array),
        TypeExpr::SeparateClass(c) => Err(LangError::at(
            Phase::Check,
            pos,
            format!("{what} may not have the separate type `separate {c}`"),
        )),
    }
}

fn build_class_table(program: &Program) -> LangResult<BTreeMap<String, ClassInfo>> {
    let mut classes = BTreeMap::new();
    for class in &program.classes {
        if classes.contains_key(&class.name) {
            return Err(LangError::at(
                Phase::Check,
                class.pos,
                format!("duplicate class `{}`", class.name),
            ));
        }
        let mut fields = Vec::new();
        let mut field_index = BTreeMap::new();
        for attr in &class.attributes {
            if field_index.contains_key(&attr.name) {
                return Err(LangError::at(
                    Phase::Check,
                    attr.pos,
                    format!(
                        "duplicate attribute `{}` in class `{}`",
                        attr.name, class.name
                    ),
                ));
            }
            let ty = value_type(&attr.ty, attr.pos, "an attribute")?;
            field_index.insert(attr.name.clone(), fields.len());
            fields.push((attr.name.clone(), ty));
        }
        let mut routines = BTreeMap::new();
        for routine in &class.routines {
            if routines.contains_key(&routine.name) {
                return Err(LangError::at(
                    Phase::Check,
                    routine.pos,
                    format!(
                        "duplicate routine `{}` in class `{}`",
                        routine.name, class.name
                    ),
                ));
            }
            if field_index.contains_key(&routine.name) {
                return Err(LangError::at(
                    Phase::Check,
                    routine.pos,
                    format!(
                        "routine `{}` clashes with an attribute of class `{}`",
                        routine.name, class.name
                    ),
                ));
            }
            let params = routine
                .params
                .iter()
                .map(|p| value_type(&p.ty, p.pos, "a parameter"))
                .collect::<LangResult<Vec<_>>>()?;
            let result = routine
                .result
                .as_ref()
                .map(|t| value_type(t, routine.pos, "a result"))
                .transpose()?;
            routines.insert(
                routine.name.clone(),
                RoutineSig {
                    kind: routine.kind,
                    params,
                    result,
                },
            );
        }
        classes.insert(
            class.name.clone(),
            ClassInfo {
                name: class.name.clone(),
                fields,
                field_index,
                routines,
            },
        );
    }
    Ok(classes)
}

/// The lexical scope used while checking a routine body or `main`.
struct Scope<'a> {
    /// Variable name → type, for plain value variables.
    vars: BTreeMap<String, Type>,
    /// For routine bodies: the enclosing class (attribute access allowed).
    class: Option<&'a ClassInfo>,
    /// For query bodies: the `Result` type.
    result: Option<Type>,
    /// For `main`: separate locals (name → class name).
    separate_vars: BTreeMap<String, String>,
}

impl<'a> Scope<'a> {
    fn lookup(&self, name: &str) -> Option<Type> {
        if let Some(t) = self.vars.get(name) {
            return Some(*t);
        }
        if let Some(class) = self.class {
            if let Some(&slot) = class.field_index.get(name) {
                return Some(class.fields[slot].1);
            }
        }
        None
    }
}

fn check_class(class: &ClassDecl, classes: &BTreeMap<String, ClassInfo>) -> LangResult<()> {
    let info = &classes[&class.name];
    for routine in &class.routines {
        let mut vars = BTreeMap::new();
        for p in &routine.params {
            let ty = value_type(&p.ty, p.pos, "a parameter")?;
            if vars.insert(p.name.clone(), ty).is_some() {
                return Err(LangError::at(
                    Phase::Check,
                    p.pos,
                    format!("duplicate parameter `{}`", p.name),
                ));
            }
        }
        for l in &routine.locals {
            let ty = value_type(&l.ty, l.pos, "a routine local")?;
            if vars.insert(l.name.clone(), ty).is_some() {
                return Err(LangError::at(
                    Phase::Check,
                    l.pos,
                    format!("duplicate local `{}`", l.name),
                ));
            }
        }
        let result = routine
            .result
            .as_ref()
            .map(|t| value_type(t, routine.pos, "a result"))
            .transpose()?;
        let scope = Scope {
            vars,
            class: Some(info),
            result,
            separate_vars: BTreeMap::new(),
        };
        // Contracts are boolean expressions over the routine scope.  `ensure`
        // may additionally mention `Result`.
        if let Some(require) = &routine.require {
            let mut pre_scope = Scope {
                vars: scope.vars.clone(),
                class: Some(info),
                result: None,
                separate_vars: BTreeMap::new(),
            };
            let t = check_expr(require, &mut pre_scope, classes, &mut RoutineCtx::new())?;
            expect_type(t, Type::Bool, require.pos(), "a `require` clause")?;
        }
        if let Some(ensure) = &routine.ensure {
            let mut post_scope = Scope {
                vars: scope.vars.clone(),
                class: Some(info),
                result,
                separate_vars: BTreeMap::new(),
            };
            let t = check_expr(ensure, &mut post_scope, classes, &mut RoutineCtx::new())?;
            expect_type(t, Type::Bool, ensure.pos(), "an `ensure` clause")?;
        }
        let mut body_scope = scope;
        let mut ctx = RoutineCtx::new();
        check_stmts(&routine.body, &mut body_scope, classes, &mut ctx)?;
    }
    Ok(())
}

fn collect_separate_locals(
    main: &MainDecl,
    classes: &BTreeMap<String, ClassInfo>,
) -> LangResult<(BTreeMap<String, usize>, BTreeMap<String, String>)> {
    let mut handler_vars = BTreeMap::new();
    let mut handler_classes = BTreeMap::new();
    let mut next = 0usize;
    for local in &main.locals {
        if let TypeExpr::SeparateClass(class_name) = &local.ty {
            if !classes.contains_key(class_name) {
                return Err(LangError::at(
                    Phase::Check,
                    local.pos,
                    format!("unknown class `{class_name}`"),
                ));
            }
            if handler_vars.insert(local.name.clone(), next).is_some() {
                return Err(LangError::at(
                    Phase::Check,
                    local.pos,
                    format!("duplicate local `{}`", local.name),
                ));
            }
            handler_classes.insert(local.name.clone(), class_name.clone());
            next += 1;
        }
    }
    Ok((handler_vars, handler_classes))
}

/// Per-body bookkeeping shared down the statement walk.
struct RoutineCtx {
    /// In `main`: separate variables currently protected by an enclosing
    /// `separate` block.
    reserved: Vec<BTreeSet<String>>,
    /// Whether we are inside `main` (separate blocks / create allowed) or a
    /// routine body (not allowed).
    in_main: bool,
    /// Highest query-site id observed (plus one).
    max_site: usize,
}

impl RoutineCtx {
    fn new() -> Self {
        RoutineCtx {
            reserved: Vec::new(),
            in_main: false,
            max_site: 0,
        }
    }

    fn is_reserved(&self, name: &str) -> bool {
        self.reserved.iter().any(|set| set.contains(name))
    }
}

fn check_main(
    main: &MainDecl,
    classes: &BTreeMap<String, ClassInfo>,
    handler_vars: &BTreeMap<String, usize>,
) -> LangResult<usize> {
    let mut vars = BTreeMap::new();
    let mut separate_vars = BTreeMap::new();
    for local in &main.locals {
        match &local.ty {
            TypeExpr::SeparateClass(class_name) => {
                separate_vars.insert(local.name.clone(), class_name.clone());
            }
            other => {
                let ty = value_type(other, local.pos, "a local")?;
                if vars.insert(local.name.clone(), ty).is_some()
                    || handler_vars.contains_key(&local.name)
                {
                    return Err(LangError::at(
                        Phase::Check,
                        local.pos,
                        format!("duplicate local `{}`", local.name),
                    ));
                }
            }
        }
    }
    let mut scope = Scope {
        vars,
        class: None,
        result: None,
        separate_vars,
    };
    let mut ctx = RoutineCtx::new();
    ctx.in_main = true;
    check_stmts(&main.body, &mut scope, classes, &mut ctx)?;
    Ok(ctx.max_site)
}

fn expect_type(actual: Type, expected: Type, pos: Pos, what: &str) -> LangResult<()> {
    if actual == expected {
        Ok(())
    } else {
        Err(LangError::at(
            Phase::Check,
            pos,
            format!("{what} must have type {expected}, found {actual}"),
        ))
    }
}

fn check_stmts(
    stmts: &[Stmt],
    scope: &mut Scope<'_>,
    classes: &BTreeMap<String, ClassInfo>,
    ctx: &mut RoutineCtx,
) -> LangResult<()> {
    for stmt in stmts {
        check_stmt(stmt, scope, classes, ctx)?;
    }
    Ok(())
}

fn check_stmt(
    stmt: &Stmt,
    scope: &mut Scope<'_>,
    classes: &BTreeMap<String, ClassInfo>,
    ctx: &mut RoutineCtx,
) -> LangResult<()> {
    match stmt {
        Stmt::Assign { target, value } => {
            let value_ty = check_expr(value, scope, classes, ctx)?;
            match target {
                LValue::Var(name, pos) => {
                    if scope.separate_vars.contains_key(name) {
                        return Err(LangError::at(
                            Phase::Check,
                            *pos,
                            format!("separate variable `{name}` cannot be assigned; use `create {name}`"),
                        ));
                    }
                    let target_ty = scope.lookup(name).ok_or_else(|| {
                        LangError::at(Phase::Check, *pos, format!("unknown variable `{name}`"))
                    })?;
                    expect_type(value_ty, target_ty, value.pos(), "the assigned value")
                }
                LValue::Result(pos) => {
                    let result_ty = scope.result.ok_or_else(|| {
                        LangError::at(
                            Phase::Check,
                            *pos,
                            "`Result` may only be used inside a query",
                        )
                    })?;
                    expect_type(value_ty, result_ty, value.pos(), "the assigned value")
                }
                LValue::Index { array, index, pos } => {
                    let array_ty = scope.lookup(array).ok_or_else(|| {
                        LangError::at(Phase::Check, *pos, format!("unknown variable `{array}`"))
                    })?;
                    expect_type(array_ty, Type::Array, *pos, "an indexed assignment target")?;
                    let index_ty = check_expr(index, scope, classes, ctx)?;
                    expect_type(index_ty, Type::Int, index.pos(), "an array index")?;
                    expect_type(value_ty, Type::Int, value.pos(), "an array element")
                }
            }
        }
        Stmt::Create { var, pos } => {
            if !ctx.in_main {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    "`create` is only allowed in `main` in this language",
                ));
            }
            if !scope.separate_vars.contains_key(var) {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    format!("`create {var}`: `{var}` is not a separate variable"),
                ));
            }
            Ok(())
        }
        Stmt::SeparateBlock { targets, body, pos } => {
            if !ctx.in_main {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    "separate blocks are only allowed in `main` in this language",
                ));
            }
            let mut set = BTreeSet::new();
            for target in targets {
                if !scope.separate_vars.contains_key(target) {
                    return Err(LangError::at(
                        Phase::Check,
                        *pos,
                        format!("`separate {target}`: `{target}` is not a separate variable"),
                    ));
                }
                if !set.insert(target.clone()) {
                    return Err(LangError::at(
                        Phase::Check,
                        *pos,
                        format!("`{target}` listed twice in the same separate block"),
                    ));
                }
            }
            ctx.reserved.push(set);
            let result = check_stmts(body, scope, classes, ctx);
            ctx.reserved.pop();
            result
        }
        Stmt::CommandCall {
            target,
            routine,
            args,
            pos,
        } => {
            let sig = resolve_separate_call(target, routine, scope, classes, ctx, *pos)?;
            if sig.kind != RoutineKind::Command {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    format!("`{routine}` is a query; its result must be used"),
                ));
            }
            check_args(&sig, routine, args, scope, classes, ctx, *pos)
        }
        Stmt::LocalCommand { routine, args, pos } => {
            let class = scope.class.ok_or_else(|| {
                LangError::at(
                    Phase::Check,
                    *pos,
                    format!("`{routine}(…)`: unqualified calls are only allowed inside a class"),
                )
            })?;
            let sig = class.routines.get(routine).cloned().ok_or_else(|| {
                LangError::at(
                    Phase::Check,
                    *pos,
                    format!("class `{}` has no routine `{routine}`", class.name),
                )
            })?;
            if sig.kind != RoutineKind::Command {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    format!("`{routine}` is a query; its result must be used"),
                ));
            }
            check_args(&sig, routine, args, scope, classes, ctx, *pos)
        }
        Stmt::If {
            arms,
            otherwise,
            pos: _,
        } => {
            for (cond, branch) in arms {
                let t = check_expr(cond, scope, classes, ctx)?;
                expect_type(t, Type::Bool, cond.pos(), "an `if` condition")?;
                check_stmts(branch, scope, classes, ctx)?;
            }
            check_stmts(otherwise, scope, classes, ctx)
        }
        Stmt::While { cond, body, pos: _ } => {
            let t = check_expr(cond, scope, classes, ctx)?;
            expect_type(t, Type::Bool, cond.pos(), "a `while` condition")?;
            check_stmts(body, scope, classes, ctx)
        }
        Stmt::Print { value, pos: _ } => match value {
            PrintArg::Text(_) => Ok(()),
            PrintArg::Value(expr) => {
                check_expr(expr, scope, classes, ctx)?;
                Ok(())
            }
        },
    }
}

fn resolve_separate_call(
    target: &str,
    routine: &str,
    scope: &Scope<'_>,
    classes: &BTreeMap<String, ClassInfo>,
    ctx: &RoutineCtx,
    pos: Pos,
) -> LangResult<RoutineSig> {
    let class_name = scope.separate_vars.get(target).ok_or_else(|| {
        LangError::at(
            Phase::Check,
            pos,
            format!("`{target}` is not a separate variable"),
        )
    })?;
    if !ctx.is_reserved(target) {
        return Err(LangError::at(
            Phase::Check,
            pos,
            format!(
                "call on `{target}` outside a `separate {target}` block; \
                 SCOOP only allows calls on protected separate objects"
            ),
        ));
    }
    let class = &classes[class_name];
    class.routines.get(routine).cloned().ok_or_else(|| {
        LangError::at(
            Phase::Check,
            pos,
            format!("class `{class_name}` has no routine `{routine}`"),
        )
    })
}

#[allow(clippy::too_many_arguments)]
fn check_args(
    sig: &RoutineSig,
    routine: &str,
    args: &[Expr],
    scope: &mut Scope<'_>,
    classes: &BTreeMap<String, ClassInfo>,
    ctx: &mut RoutineCtx,
    pos: Pos,
) -> LangResult<()> {
    if args.len() != sig.params.len() {
        return Err(LangError::at(
            Phase::Check,
            pos,
            format!(
                "`{routine}` expects {} argument(s), got {}",
                sig.params.len(),
                args.len()
            ),
        ));
    }
    for (arg, expected) in args.iter().zip(&sig.params) {
        let t = check_expr(arg, scope, classes, ctx)?;
        expect_type(t, *expected, arg.pos(), "an argument")?;
    }
    Ok(())
}

fn check_expr(
    expr: &Expr,
    scope: &mut Scope<'_>,
    classes: &BTreeMap<String, ClassInfo>,
    ctx: &mut RoutineCtx,
) -> LangResult<Type> {
    match expr {
        Expr::Int(..) => Ok(Type::Int),
        Expr::Bool(..) => Ok(Type::Bool),
        Expr::Var(name, pos) => {
            if scope.separate_vars.contains_key(name) {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    format!("separate variable `{name}` cannot be used as a value"),
                ));
            }
            scope.lookup(name).ok_or_else(|| {
                LangError::at(Phase::Check, *pos, format!("unknown variable `{name}`"))
            })
        }
        Expr::Result(pos) => scope.result.ok_or_else(|| {
            LangError::at(
                Phase::Check,
                *pos,
                "`Result` may only be used inside a query",
            )
        }),
        Expr::Index { array, index, pos } => {
            let array_ty = check_expr(array, scope, classes, ctx)?;
            expect_type(array_ty, Type::Array, *pos, "an indexed expression")?;
            let index_ty = check_expr(index, scope, classes, ctx)?;
            expect_type(index_ty, Type::Int, index.pos(), "an array index")?;
            Ok(Type::Int)
        }
        Expr::NewArray { len, .. } => {
            let t = check_expr(len, scope, classes, ctx)?;
            expect_type(t, Type::Int, len.pos(), "an array length")?;
            Ok(Type::Array)
        }
        Expr::Length { array, pos } => {
            let t = check_expr(array, scope, classes, ctx)?;
            expect_type(t, Type::Array, *pos, "the argument of `length`")?;
            Ok(Type::Int)
        }
        Expr::Random { bound, .. } => {
            let t = check_expr(bound, scope, classes, ctx)?;
            expect_type(t, Type::Int, bound.pos(), "the argument of `random`")?;
            Ok(Type::Int)
        }
        Expr::QueryCall {
            target,
            routine,
            args,
            pos,
            site,
        } => {
            if !ctx.in_main {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    "separate calls are only allowed in `main` in this language",
                ));
            }
            let sig = resolve_separate_call(target, routine, scope, classes, ctx, *pos)?;
            if sig.kind != RoutineKind::Query {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    format!("`{routine}` is a command and has no result"),
                ));
            }
            check_args(&sig, routine, args, scope, classes, ctx, *pos)?;
            ctx.max_site = ctx.max_site.max(site + 1);
            Ok(sig.result.expect("query has a result type"))
        }
        Expr::LocalCall { routine, args, pos } => {
            let class = scope.class.ok_or_else(|| {
                LangError::at(
                    Phase::Check,
                    *pos,
                    format!("`{routine}(…)`: unqualified calls are only allowed inside a class"),
                )
            })?;
            let sig = class.routines.get(routine).cloned().ok_or_else(|| {
                LangError::at(
                    Phase::Check,
                    *pos,
                    format!("class `{}` has no routine `{routine}`", class.name),
                )
            })?;
            if sig.kind != RoutineKind::Query {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    format!("`{routine}` is a command and has no result"),
                ));
            }
            check_args(&sig, routine, args, scope, classes, ctx, *pos)?;
            Ok(sig.result.expect("query has a result type"))
        }
        Expr::Binary { op, lhs, rhs, pos } => {
            let lt = check_expr(lhs, scope, classes, ctx)?;
            let rt = check_expr(rhs, scope, classes, ctx)?;
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    expect_type(lt, Type::Int, lhs.pos(), "an arithmetic operand")?;
                    expect_type(rt, Type::Int, rhs.pos(), "an arithmetic operand")?;
                    Ok(Type::Int)
                }
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    expect_type(lt, Type::Int, lhs.pos(), "a comparison operand")?;
                    expect_type(rt, Type::Int, rhs.pos(), "a comparison operand")?;
                    Ok(Type::Bool)
                }
                BinOp::Eq | BinOp::Neq => {
                    if lt != rt {
                        return Err(LangError::at(
                            Phase::Check,
                            *pos,
                            format!("cannot compare {lt} with {rt}"),
                        ));
                    }
                    Ok(Type::Bool)
                }
                BinOp::And | BinOp::Or => {
                    expect_type(lt, Type::Bool, lhs.pos(), "a boolean operand")?;
                    expect_type(rt, Type::Bool, rhs.pos(), "a boolean operand")?;
                    Ok(Type::Bool)
                }
            }
        }
        Expr::Unary { op, expr, pos: _ } => {
            let t = check_expr(expr, scope, classes, ctx)?;
            match op {
                UnOp::Neg => {
                    expect_type(t, Type::Int, expr.pos(), "a negated value")?;
                    Ok(Type::Int)
                }
                UnOp::Not => {
                    expect_type(t, Type::Bool, expr.pos(), "a negated condition")?;
                    Ok(Type::Bool)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(source: &str) -> LangResult<CheckedProgram> {
        check_program(parse_program(source).unwrap())
    }

    const COUNTER: &str = "class COUNTER\n\
         attribute count : INTEGER\n\
         command bump(amount: INTEGER) do count := count + amount end\n\
         query value : INTEGER do Result := count end\n\
       end\n";

    #[test]
    fn accepts_a_well_formed_program() {
        let checked = check(&format!(
            "{COUNTER}\
             main local c : separate COUNTER local v : INTEGER do \
               create c separate c do c.bump(2) v := c.value() end print(v) end"
        ))
        .unwrap();
        assert_eq!(checked.handler_vars.len(), 1);
        assert_eq!(checked.handler_vars["c"], 0);
        assert_eq!(checked.handler_classes["c"], "COUNTER");
        assert_eq!(checked.query_sites, 1);
        assert_eq!(checked.classes["COUNTER"].fields.len(), 1);
    }

    #[test]
    fn rejects_calls_outside_separate_blocks() {
        let err = check(&format!(
            "{COUNTER}main local c : separate COUNTER do create c c.bump(1) end"
        ))
        .unwrap_err();
        assert!(err.message.contains("outside a `separate"));
    }

    #[test]
    fn rejects_unknown_routine_and_bad_arity() {
        let err = check(&format!(
            "{COUNTER}main local c : separate COUNTER do separate c do c.missing() end end"
        ))
        .unwrap_err();
        assert!(err.message.contains("no routine"));
        let err = check(&format!(
            "{COUNTER}main local c : separate COUNTER do separate c do c.bump(1, 2) end end"
        ))
        .unwrap_err();
        assert!(err.message.contains("expects 1 argument"));
    }

    #[test]
    fn rejects_command_in_expression_and_query_as_statement() {
        let err = check(&format!(
            "{COUNTER}main local c : separate COUNTER local v : INTEGER do \
               separate c do v := c.bump(1) end end"
        ))
        .unwrap_err();
        assert!(err.message.contains("is a command"));
        let err = check(&format!(
            "{COUNTER}main local c : separate COUNTER do separate c do c.value() end end"
        ))
        .unwrap_err();
        assert!(err.message.contains("is a query"));
    }

    #[test]
    fn rejects_type_mismatches() {
        let err = check("main local b : BOOLEAN do b := 3 end").unwrap_err();
        assert!(err.message.contains("BOOLEAN"));
        let err = check("main local i : INTEGER do if i then i := 1 end end").unwrap_err();
        assert!(err.message.contains("condition"));
        let err = check("main local a : ARRAY do a := array(true) end").unwrap_err();
        assert!(err.message.contains("array length"));
    }

    #[test]
    fn rejects_unknown_class_and_duplicate_names() {
        let err = check("main local x : separate NOPE do end").unwrap_err();
        assert!(err.message.contains("unknown class"));
        let err = check("class C attribute a : INTEGER attribute a : INTEGER end main do end")
            .unwrap_err();
        assert!(err.message.contains("duplicate attribute"));
        let err = check(&format!("{COUNTER}{COUNTER}main do end")).unwrap_err();
        assert!(err.message.contains("duplicate class"));
    }

    #[test]
    fn rejects_separate_vars_used_as_values() {
        let err = check(&format!(
            "{COUNTER}main local c : separate COUNTER local v : INTEGER do v := c end"
        ))
        .unwrap_err();
        assert!(err.message.contains("cannot be used as a value"));
        let err = check(&format!(
            "{COUNTER}main local c : separate COUNTER do c := 1 end"
        ))
        .unwrap_err();
        assert!(err.message.contains("cannot be assigned"));
    }

    #[test]
    fn rejects_result_outside_queries_and_nested_restrictions() {
        let err = check("main do Result := 1 end").unwrap_err();
        assert!(err.message.contains("Result"));
        let err = check(
            "class C attribute n : INTEGER \
               command f do create n end \
             end main do end",
        )
        .unwrap_err();
        assert!(err.message.contains("only allowed in `main`"));
    }

    #[test]
    fn contracts_must_be_boolean() {
        let err = check(
            "class C attribute n : INTEGER \
               command f require n + 1 do n := 1 end \
             end main do end",
        )
        .unwrap_err();
        assert!(err.message.contains("require"));
    }

    #[test]
    fn multiple_handlers_get_distinct_indices() {
        let checked = check(&format!(
            "{COUNTER}main local a : separate COUNTER local b : separate COUNTER do \
               create a create b separate a, b do a.bump(1) b.bump(2) end end"
        ))
        .unwrap();
        assert_eq!(checked.handler_vars.len(), 2);
        assert_ne!(checked.handler_vars["a"], checked.handler_vars["b"]);
    }

    #[test]
    fn local_calls_inside_routines_are_checked() {
        let ok = check(
            "class C attribute n : INTEGER \
               query twice(v: INTEGER) : INTEGER do Result := v * 2 end \
               command set(v: INTEGER) do n := twice(v) end \
             end main do end",
        );
        assert!(ok.is_ok());
        let err = check(
            "class C attribute n : INTEGER \
               command set(v: INTEGER) do n := missing(v) end \
             end main do end",
        )
        .unwrap_err();
        assert!(err.message.contains("no routine"));
    }
}
