//! Semantic analysis: name resolution, type checking and the *separateness*
//! rules of the SCOOP model.
//!
//! The central SCOOP rule enforced here is the one §2.1 of the paper states:
//! "methods may only be called on a separate object if it is protected by a
//! separate block".  The checker walks `main` tracking which separate
//! variables are reserved by enclosing `separate` blocks and rejects calls on
//! unprotected targets.  It also performs conventional checks — duplicate
//! names, unknown routines, arity and type mismatches — and resolves class
//! attributes to field slots so the interpreter does not need name lookups on
//! the hot path.
//!
//! On top of the classic checks, the checker runs the **effect-inference
//! pass** per separate block (the surface-level counterpart of
//! `qs_compiler::effects`): for each block and each reserved target it
//! computes an effect on the lattice `Pure < Read < Write` — commands write,
//! queries read iff their routine is *pure* (transitively assigns no
//! attribute and calls no command), and a nested re-reservation is
//! conservatively a write.  Blocks whose every target stays at or below
//! `Read` are recorded in [`CheckedProgram::inferred_read_blocks`]; the
//! interpreter reserves them in shared read mode when the runtime's
//! `auto_read` knob is on.  Declared `separate read` blocks must pass the
//! same test — a write through a read-only reservation is a compile-time
//! error (`QS-E001`), not a runtime `ReadOnlyReservation` failure.

use std::collections::{BTreeMap, BTreeSet};

use qs_compiler::diagnostics::Diagnostic;
use qs_compiler::effects::Effect;

use crate::ast::*;
use crate::error::{LangError, LangResult, Phase, Pos};

/// The value types of the language (object references are tracked separately
/// because they may only be used as call targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// 64-bit integer.
    Int,
    /// Boolean.
    Bool,
    /// One-dimensional integer array.
    Array,
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Int => f.write_str("INTEGER"),
            Type::Bool => f.write_str("BOOLEAN"),
            Type::Array => f.write_str("ARRAY"),
        }
    }
}

/// Signature of a routine, as needed by call sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutineSig {
    /// Command or query.
    pub kind: RoutineKind,
    /// Parameter types in order.
    pub params: Vec<Type>,
    /// Result type (queries only).
    pub result: Option<Type>,
}

/// Resolved information about one class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassInfo {
    /// The class name.
    pub name: String,
    /// Field slots in declaration order.
    pub fields: Vec<(String, Type)>,
    /// Map from attribute name to field slot.
    pub field_index: BTreeMap<String, usize>,
    /// Routine signatures by name.
    pub routines: BTreeMap<String, RoutineSig>,
}

/// The output of the checker: the program plus resolved tables.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedProgram {
    /// The (unchanged) parsed program.
    pub program: Program,
    /// Resolved class information by class name.
    pub classes: BTreeMap<String, ClassInfo>,
    /// Handler-variable index assigned to each separate local of `main`
    /// (used by the IR lowering; indices are dense starting at 0).
    pub handler_vars: BTreeMap<String, usize>,
    /// Class name of each separate local of `main`.
    pub handler_classes: BTreeMap<String, String>,
    /// Number of query call sites in `main` (sites are numbered densely by
    /// the parser).
    pub query_sites: usize,
    /// Positions (`(line, col)` of the `separate` keyword) of plain separate
    /// blocks the effect pass proved read-only.  The interpreter reserves
    /// these in shared read mode when `RuntimeConfig::auto_read` is set.
    pub inferred_read_blocks: BTreeSet<(u32, u32)>,
    /// Non-fatal diagnostics emitted by the effect pass (`QS-N001` notes for
    /// inferred read blocks, `QS-W001` warnings for near-misses).
    pub diagnostics: Vec<Diagnostic>,
}

/// Runs all semantic checks on a parsed program.
pub fn check_program(program: Program) -> LangResult<CheckedProgram> {
    let classes = build_class_table(&program)?;
    for class in &program.classes {
        check_class(class, &classes)?;
    }
    let (handler_vars, handler_classes) = collect_separate_locals(&program.main, &classes)?;
    let query_sites = check_main(&program.main, &classes, &handler_vars)?;
    let purity = compute_purity(&program);
    let lint = classify_separate_blocks(&program.main, &handler_classes, &purity)?;
    Ok(CheckedProgram {
        program,
        classes,
        handler_vars,
        handler_classes,
        query_sites,
        inferred_read_blocks: lint.inferred,
        diagnostics: lint.diagnostics,
    })
}

fn value_type(ty: &TypeExpr, pos: Pos, what: &str) -> LangResult<Type> {
    match ty {
        TypeExpr::Integer => Ok(Type::Int),
        TypeExpr::Boolean => Ok(Type::Bool),
        TypeExpr::Array => Ok(Type::Array),
        TypeExpr::SeparateClass(c) => Err(LangError::at(
            Phase::Check,
            pos,
            format!("{what} may not have the separate type `separate {c}`"),
        )),
    }
}

fn build_class_table(program: &Program) -> LangResult<BTreeMap<String, ClassInfo>> {
    let mut classes = BTreeMap::new();
    for class in &program.classes {
        if classes.contains_key(&class.name) {
            return Err(LangError::at(
                Phase::Check,
                class.pos,
                format!("duplicate class `{}`", class.name),
            ));
        }
        let mut fields = Vec::new();
        let mut field_index = BTreeMap::new();
        for attr in &class.attributes {
            if field_index.contains_key(&attr.name) {
                return Err(LangError::at(
                    Phase::Check,
                    attr.pos,
                    format!(
                        "duplicate attribute `{}` in class `{}`",
                        attr.name, class.name
                    ),
                ));
            }
            let ty = value_type(&attr.ty, attr.pos, "an attribute")?;
            field_index.insert(attr.name.clone(), fields.len());
            fields.push((attr.name.clone(), ty));
        }
        let mut routines = BTreeMap::new();
        for routine in &class.routines {
            if routines.contains_key(&routine.name) {
                return Err(LangError::at(
                    Phase::Check,
                    routine.pos,
                    format!(
                        "duplicate routine `{}` in class `{}`",
                        routine.name, class.name
                    ),
                ));
            }
            if field_index.contains_key(&routine.name) {
                return Err(LangError::at(
                    Phase::Check,
                    routine.pos,
                    format!(
                        "routine `{}` clashes with an attribute of class `{}`",
                        routine.name, class.name
                    ),
                ));
            }
            let params = routine
                .params
                .iter()
                .map(|p| value_type(&p.ty, p.pos, "a parameter"))
                .collect::<LangResult<Vec<_>>>()?;
            let result = routine
                .result
                .as_ref()
                .map(|t| value_type(t, routine.pos, "a result"))
                .transpose()?;
            routines.insert(
                routine.name.clone(),
                RoutineSig {
                    kind: routine.kind,
                    params,
                    result,
                },
            );
        }
        classes.insert(
            class.name.clone(),
            ClassInfo {
                name: class.name.clone(),
                fields,
                field_index,
                routines,
            },
        );
    }
    Ok(classes)
}

/// The lexical scope used while checking a routine body or `main`.
struct Scope<'a> {
    /// Variable name → type, for plain value variables.
    vars: BTreeMap<String, Type>,
    /// For routine bodies: the enclosing class (attribute access allowed).
    class: Option<&'a ClassInfo>,
    /// For query bodies: the `Result` type.
    result: Option<Type>,
    /// For `main`: separate locals (name → class name).
    separate_vars: BTreeMap<String, String>,
}

impl<'a> Scope<'a> {
    fn lookup(&self, name: &str) -> Option<Type> {
        if let Some(t) = self.vars.get(name) {
            return Some(*t);
        }
        if let Some(class) = self.class {
            if let Some(&slot) = class.field_index.get(name) {
                return Some(class.fields[slot].1);
            }
        }
        None
    }
}

fn check_class(class: &ClassDecl, classes: &BTreeMap<String, ClassInfo>) -> LangResult<()> {
    let info = &classes[&class.name];
    for routine in &class.routines {
        let mut vars = BTreeMap::new();
        for p in &routine.params {
            let ty = value_type(&p.ty, p.pos, "a parameter")?;
            if vars.insert(p.name.clone(), ty).is_some() {
                return Err(LangError::at(
                    Phase::Check,
                    p.pos,
                    format!("duplicate parameter `{}`", p.name),
                ));
            }
        }
        for l in &routine.locals {
            let ty = value_type(&l.ty, l.pos, "a routine local")?;
            if vars.insert(l.name.clone(), ty).is_some() {
                return Err(LangError::at(
                    Phase::Check,
                    l.pos,
                    format!("duplicate local `{}`", l.name),
                ));
            }
        }
        let result = routine
            .result
            .as_ref()
            .map(|t| value_type(t, routine.pos, "a result"))
            .transpose()?;
        let scope = Scope {
            vars,
            class: Some(info),
            result,
            separate_vars: BTreeMap::new(),
        };
        // Contracts are boolean expressions over the routine scope.  `ensure`
        // may additionally mention `Result`.
        if let Some(require) = &routine.require {
            let mut pre_scope = Scope {
                vars: scope.vars.clone(),
                class: Some(info),
                result: None,
                separate_vars: BTreeMap::new(),
            };
            let t = check_expr(require, &mut pre_scope, classes, &mut RoutineCtx::new())?;
            expect_type(t, Type::Bool, require.pos(), "a `require` clause")?;
        }
        if let Some(ensure) = &routine.ensure {
            let mut post_scope = Scope {
                vars: scope.vars.clone(),
                class: Some(info),
                result,
                separate_vars: BTreeMap::new(),
            };
            let t = check_expr(ensure, &mut post_scope, classes, &mut RoutineCtx::new())?;
            expect_type(t, Type::Bool, ensure.pos(), "an `ensure` clause")?;
        }
        let mut body_scope = scope;
        let mut ctx = RoutineCtx::new();
        check_stmts(&routine.body, &mut body_scope, classes, &mut ctx)?;
    }
    Ok(())
}

fn collect_separate_locals(
    main: &MainDecl,
    classes: &BTreeMap<String, ClassInfo>,
) -> LangResult<(BTreeMap<String, usize>, BTreeMap<String, String>)> {
    let mut handler_vars = BTreeMap::new();
    let mut handler_classes = BTreeMap::new();
    let mut next = 0usize;
    for local in &main.locals {
        if let TypeExpr::SeparateClass(class_name) = &local.ty {
            if !classes.contains_key(class_name) {
                return Err(LangError::at(
                    Phase::Check,
                    local.pos,
                    format!("unknown class `{class_name}`"),
                ));
            }
            if handler_vars.insert(local.name.clone(), next).is_some() {
                return Err(LangError::at(
                    Phase::Check,
                    local.pos,
                    format!("duplicate local `{}`", local.name),
                ));
            }
            handler_classes.insert(local.name.clone(), class_name.clone());
            next += 1;
        }
    }
    Ok((handler_vars, handler_classes))
}

/// Per-body bookkeeping shared down the statement walk.
struct RoutineCtx {
    /// In `main`: separate variables currently protected by an enclosing
    /// `separate` block.
    reserved: Vec<BTreeSet<String>>,
    /// Whether we are inside `main` (separate blocks / create allowed) or a
    /// routine body (not allowed).
    in_main: bool,
    /// Highest query-site id observed (plus one).
    max_site: usize,
}

impl RoutineCtx {
    fn new() -> Self {
        RoutineCtx {
            reserved: Vec::new(),
            in_main: false,
            max_site: 0,
        }
    }

    fn is_reserved(&self, name: &str) -> bool {
        self.reserved.iter().any(|set| set.contains(name))
    }
}

fn check_main(
    main: &MainDecl,
    classes: &BTreeMap<String, ClassInfo>,
    handler_vars: &BTreeMap<String, usize>,
) -> LangResult<usize> {
    let mut vars = BTreeMap::new();
    let mut separate_vars = BTreeMap::new();
    for local in &main.locals {
        match &local.ty {
            TypeExpr::SeparateClass(class_name) => {
                separate_vars.insert(local.name.clone(), class_name.clone());
            }
            other => {
                let ty = value_type(other, local.pos, "a local")?;
                if vars.insert(local.name.clone(), ty).is_some()
                    || handler_vars.contains_key(&local.name)
                {
                    return Err(LangError::at(
                        Phase::Check,
                        local.pos,
                        format!("duplicate local `{}`", local.name),
                    ));
                }
            }
        }
    }
    let mut scope = Scope {
        vars,
        class: None,
        result: None,
        separate_vars,
    };
    let mut ctx = RoutineCtx::new();
    ctx.in_main = true;
    check_stmts(&main.body, &mut scope, classes, &mut ctx)?;
    Ok(ctx.max_site)
}

fn expect_type(actual: Type, expected: Type, pos: Pos, what: &str) -> LangResult<()> {
    if actual == expected {
        Ok(())
    } else {
        Err(LangError::at(
            Phase::Check,
            pos,
            format!("{what} must have type {expected}, found {actual}"),
        ))
    }
}

fn check_stmts(
    stmts: &[Stmt],
    scope: &mut Scope<'_>,
    classes: &BTreeMap<String, ClassInfo>,
    ctx: &mut RoutineCtx,
) -> LangResult<()> {
    for stmt in stmts {
        check_stmt(stmt, scope, classes, ctx)?;
    }
    Ok(())
}

fn check_stmt(
    stmt: &Stmt,
    scope: &mut Scope<'_>,
    classes: &BTreeMap<String, ClassInfo>,
    ctx: &mut RoutineCtx,
) -> LangResult<()> {
    match stmt {
        Stmt::Assign { target, value } => {
            let value_ty = check_expr(value, scope, classes, ctx)?;
            match target {
                LValue::Var(name, pos) => {
                    if scope.separate_vars.contains_key(name) {
                        return Err(LangError::at(
                            Phase::Check,
                            *pos,
                            format!("separate variable `{name}` cannot be assigned; use `create {name}`"),
                        ));
                    }
                    let target_ty = scope.lookup(name).ok_or_else(|| {
                        LangError::at(Phase::Check, *pos, format!("unknown variable `{name}`"))
                    })?;
                    expect_type(value_ty, target_ty, value.pos(), "the assigned value")
                }
                LValue::Result(pos) => {
                    let result_ty = scope.result.ok_or_else(|| {
                        LangError::at(
                            Phase::Check,
                            *pos,
                            "`Result` may only be used inside a query",
                        )
                    })?;
                    expect_type(value_ty, result_ty, value.pos(), "the assigned value")
                }
                LValue::Index { array, index, pos } => {
                    let array_ty = scope.lookup(array).ok_or_else(|| {
                        LangError::at(Phase::Check, *pos, format!("unknown variable `{array}`"))
                    })?;
                    expect_type(array_ty, Type::Array, *pos, "an indexed assignment target")?;
                    let index_ty = check_expr(index, scope, classes, ctx)?;
                    expect_type(index_ty, Type::Int, index.pos(), "an array index")?;
                    expect_type(value_ty, Type::Int, value.pos(), "an array element")
                }
            }
        }
        Stmt::Create { var, pos } => {
            if !ctx.in_main {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    "`create` is only allowed in `main` in this language",
                ));
            }
            if !scope.separate_vars.contains_key(var) {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    format!("`create {var}`: `{var}` is not a separate variable"),
                ));
            }
            Ok(())
        }
        Stmt::SeparateBlock {
            targets,
            read: _,
            body,
            pos,
        } => {
            if !ctx.in_main {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    "separate blocks are only allowed in `main` in this language",
                ));
            }
            let mut set = BTreeSet::new();
            for target in targets {
                if !scope.separate_vars.contains_key(target) {
                    return Err(LangError::at(
                        Phase::Check,
                        *pos,
                        format!("`separate {target}`: `{target}` is not a separate variable"),
                    ));
                }
                if !set.insert(target.clone()) {
                    return Err(LangError::at(
                        Phase::Check,
                        *pos,
                        format!("`{target}` listed twice in the same separate block"),
                    ));
                }
            }
            ctx.reserved.push(set);
            let result = check_stmts(body, scope, classes, ctx);
            ctx.reserved.pop();
            result
        }
        Stmt::CommandCall {
            target,
            routine,
            args,
            pos,
        } => {
            let sig = resolve_separate_call(target, routine, scope, classes, ctx, *pos)?;
            if sig.kind != RoutineKind::Command {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    format!("`{routine}` is a query; its result must be used"),
                ));
            }
            check_args(&sig, routine, args, scope, classes, ctx, *pos)
        }
        Stmt::LocalCommand { routine, args, pos } => {
            let class = scope.class.ok_or_else(|| {
                LangError::at(
                    Phase::Check,
                    *pos,
                    format!("`{routine}(…)`: unqualified calls are only allowed inside a class"),
                )
            })?;
            let sig = class.routines.get(routine).cloned().ok_or_else(|| {
                LangError::at(
                    Phase::Check,
                    *pos,
                    format!("class `{}` has no routine `{routine}`", class.name),
                )
            })?;
            if sig.kind != RoutineKind::Command {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    format!("`{routine}` is a query; its result must be used"),
                ));
            }
            check_args(&sig, routine, args, scope, classes, ctx, *pos)
        }
        Stmt::If {
            arms,
            otherwise,
            pos: _,
        } => {
            for (cond, branch) in arms {
                let t = check_expr(cond, scope, classes, ctx)?;
                expect_type(t, Type::Bool, cond.pos(), "an `if` condition")?;
                check_stmts(branch, scope, classes, ctx)?;
            }
            check_stmts(otherwise, scope, classes, ctx)
        }
        Stmt::While { cond, body, pos: _ } => {
            let t = check_expr(cond, scope, classes, ctx)?;
            expect_type(t, Type::Bool, cond.pos(), "a `while` condition")?;
            check_stmts(body, scope, classes, ctx)
        }
        Stmt::Print { value, pos: _ } => match value {
            PrintArg::Text(_) => Ok(()),
            PrintArg::Value(expr) => {
                check_expr(expr, scope, classes, ctx)?;
                Ok(())
            }
        },
    }
}

fn resolve_separate_call(
    target: &str,
    routine: &str,
    scope: &Scope<'_>,
    classes: &BTreeMap<String, ClassInfo>,
    ctx: &RoutineCtx,
    pos: Pos,
) -> LangResult<RoutineSig> {
    let class_name = scope.separate_vars.get(target).ok_or_else(|| {
        LangError::at(
            Phase::Check,
            pos,
            format!("`{target}` is not a separate variable"),
        )
    })?;
    if !ctx.is_reserved(target) {
        return Err(LangError::at(
            Phase::Check,
            pos,
            format!(
                "call on `{target}` outside a `separate {target}` block; \
                 SCOOP only allows calls on protected separate objects"
            ),
        ));
    }
    let class = &classes[class_name];
    class.routines.get(routine).cloned().ok_or_else(|| {
        LangError::at(
            Phase::Check,
            pos,
            format!("class `{class_name}` has no routine `{routine}`"),
        )
    })
}

#[allow(clippy::too_many_arguments)]
fn check_args(
    sig: &RoutineSig,
    routine: &str,
    args: &[Expr],
    scope: &mut Scope<'_>,
    classes: &BTreeMap<String, ClassInfo>,
    ctx: &mut RoutineCtx,
    pos: Pos,
) -> LangResult<()> {
    if args.len() != sig.params.len() {
        return Err(LangError::at(
            Phase::Check,
            pos,
            format!(
                "`{routine}` expects {} argument(s), got {}",
                sig.params.len(),
                args.len()
            ),
        ));
    }
    for (arg, expected) in args.iter().zip(&sig.params) {
        let t = check_expr(arg, scope, classes, ctx)?;
        expect_type(t, *expected, arg.pos(), "an argument")?;
    }
    Ok(())
}

fn check_expr(
    expr: &Expr,
    scope: &mut Scope<'_>,
    classes: &BTreeMap<String, ClassInfo>,
    ctx: &mut RoutineCtx,
) -> LangResult<Type> {
    match expr {
        Expr::Int(..) => Ok(Type::Int),
        Expr::Bool(..) => Ok(Type::Bool),
        Expr::Var(name, pos) => {
            if scope.separate_vars.contains_key(name) {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    format!("separate variable `{name}` cannot be used as a value"),
                ));
            }
            scope.lookup(name).ok_or_else(|| {
                LangError::at(Phase::Check, *pos, format!("unknown variable `{name}`"))
            })
        }
        Expr::Result(pos) => scope.result.ok_or_else(|| {
            LangError::at(
                Phase::Check,
                *pos,
                "`Result` may only be used inside a query",
            )
        }),
        Expr::Index { array, index, pos } => {
            let array_ty = check_expr(array, scope, classes, ctx)?;
            expect_type(array_ty, Type::Array, *pos, "an indexed expression")?;
            let index_ty = check_expr(index, scope, classes, ctx)?;
            expect_type(index_ty, Type::Int, index.pos(), "an array index")?;
            Ok(Type::Int)
        }
        Expr::NewArray { len, .. } => {
            let t = check_expr(len, scope, classes, ctx)?;
            expect_type(t, Type::Int, len.pos(), "an array length")?;
            Ok(Type::Array)
        }
        Expr::Length { array, pos } => {
            let t = check_expr(array, scope, classes, ctx)?;
            expect_type(t, Type::Array, *pos, "the argument of `length`")?;
            Ok(Type::Int)
        }
        Expr::Random { bound, .. } => {
            let t = check_expr(bound, scope, classes, ctx)?;
            expect_type(t, Type::Int, bound.pos(), "the argument of `random`")?;
            Ok(Type::Int)
        }
        Expr::QueryCall {
            target,
            routine,
            args,
            pos,
            site,
        } => {
            if !ctx.in_main {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    "separate calls are only allowed in `main` in this language",
                ));
            }
            let sig = resolve_separate_call(target, routine, scope, classes, ctx, *pos)?;
            if sig.kind != RoutineKind::Query {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    format!("`{routine}` is a command and has no result"),
                ));
            }
            check_args(&sig, routine, args, scope, classes, ctx, *pos)?;
            ctx.max_site = ctx.max_site.max(site + 1);
            Ok(sig.result.expect("query has a result type"))
        }
        Expr::LocalCall { routine, args, pos } => {
            let class = scope.class.ok_or_else(|| {
                LangError::at(
                    Phase::Check,
                    *pos,
                    format!("`{routine}(…)`: unqualified calls are only allowed inside a class"),
                )
            })?;
            let sig = class.routines.get(routine).cloned().ok_or_else(|| {
                LangError::at(
                    Phase::Check,
                    *pos,
                    format!("class `{}` has no routine `{routine}`", class.name),
                )
            })?;
            if sig.kind != RoutineKind::Query {
                return Err(LangError::at(
                    Phase::Check,
                    *pos,
                    format!("`{routine}` is a command and has no result"),
                ));
            }
            check_args(&sig, routine, args, scope, classes, ctx, *pos)?;
            Ok(sig.result.expect("query has a result type"))
        }
        Expr::Binary { op, lhs, rhs, pos } => {
            let lt = check_expr(lhs, scope, classes, ctx)?;
            let rt = check_expr(rhs, scope, classes, ctx)?;
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    expect_type(lt, Type::Int, lhs.pos(), "an arithmetic operand")?;
                    expect_type(rt, Type::Int, rhs.pos(), "an arithmetic operand")?;
                    Ok(Type::Int)
                }
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    expect_type(lt, Type::Int, lhs.pos(), "a comparison operand")?;
                    expect_type(rt, Type::Int, rhs.pos(), "a comparison operand")?;
                    Ok(Type::Bool)
                }
                BinOp::Eq | BinOp::Neq => {
                    if lt != rt {
                        return Err(LangError::at(
                            Phase::Check,
                            *pos,
                            format!("cannot compare {lt} with {rt}"),
                        ));
                    }
                    Ok(Type::Bool)
                }
                BinOp::And | BinOp::Or => {
                    expect_type(lt, Type::Bool, lhs.pos(), "a boolean operand")?;
                    expect_type(rt, Type::Bool, rhs.pos(), "a boolean operand")?;
                    Ok(Type::Bool)
                }
            }
        }
        Expr::Unary { op, expr, pos: _ } => {
            let t = check_expr(expr, scope, classes, ctx)?;
            match op {
                UnOp::Neg => {
                    expect_type(t, Type::Int, expr.pos(), "a negated value")?;
                    Ok(Type::Int)
                }
                UnOp::Not => {
                    expect_type(t, Type::Bool, expr.pos(), "a negated condition")?;
                    Ok(Type::Bool)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Effect inference over separate blocks
// ---------------------------------------------------------------------------

/// Per-class routine purity: `purity[class][routine]` is `true` iff the
/// routine (transitively) assigns no attribute and calls no command.  Pure
/// queries contribute `Read` to the effect of a block; impure ones `Write`.
type PurityTable = BTreeMap<String, BTreeMap<String, bool>>;

/// Computes the purity table for every class in the program.
///
/// Purity is coinductive: a cycle of mutually recursive queries with no
/// direct attribute write anywhere is pure (routines on the in-progress
/// stack are optimistically assumed pure; any write in the cycle is still
/// discovered when its own body is walked).
fn compute_purity(program: &Program) -> PurityTable {
    let mut table = PurityTable::new();
    for class in &program.classes {
        let by_name: BTreeMap<&str, &Routine> = class
            .routines
            .iter()
            .map(|r| (r.name.as_str(), r))
            .collect();
        let attributes: BTreeSet<&str> = class.attributes.iter().map(|a| a.name.as_str()).collect();
        let mut memo: BTreeMap<String, bool> = BTreeMap::new();
        let mut stack: BTreeSet<String> = BTreeSet::new();
        let names: Vec<String> = class.routines.iter().map(|r| r.name.clone()).collect();
        for name in names {
            routine_purity(&name, &by_name, &attributes, &mut memo, &mut stack);
        }
        table.insert(class.name.clone(), memo);
    }
    table
}

fn routine_purity(
    name: &str,
    by_name: &BTreeMap<&str, &Routine>,
    attributes: &BTreeSet<&str>,
    memo: &mut BTreeMap<String, bool>,
    stack: &mut BTreeSet<String>,
) -> bool {
    if let Some(&known) = memo.get(name) {
        return known;
    }
    if stack.contains(name) {
        return true; // coinductive: no write seen on this path so far
    }
    let Some(routine) = by_name.get(name) else {
        return false; // unknown callee: conservatively impure
    };
    stack.insert(name.to_string());
    // Locals and parameters shadow attributes; assignments to them are pure.
    let shadowed: BTreeSet<&str> = routine
        .params
        .iter()
        .map(|p| p.name.as_str())
        .chain(routine.locals.iter().map(|l| l.name.as_str()))
        .collect();
    let mut summary = RoutineSummary::default();
    summarize_stmts(&routine.body, attributes, &shadowed, &mut summary);
    if let Some(require) = &routine.require {
        summarize_expr(require, &mut summary);
    }
    if let Some(ensure) = &routine.ensure {
        summarize_expr(ensure, &mut summary);
    }
    let mut pure = routine.kind == RoutineKind::Query && !summary.writes_attribute;
    if pure {
        for callee in &summary.callees {
            if !routine_purity(callee, by_name, attributes, memo, stack) {
                pure = false;
                break;
            }
        }
    }
    stack.remove(name);
    memo.insert(name.to_string(), pure);
    pure
}

/// Syntactic facts about one routine body needed by the purity analysis.
#[derive(Default)]
struct RoutineSummary {
    /// Assigns an attribute (directly) or calls a command.
    writes_attribute: bool,
    /// Names of unqualified queries called (purity checked transitively).
    callees: BTreeSet<String>,
}

fn summarize_stmts(
    stmts: &[Stmt],
    attributes: &BTreeSet<&str>,
    shadowed: &BTreeSet<&str>,
    summary: &mut RoutineSummary,
) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { target, value } => {
                match target {
                    LValue::Var(name, _) => {
                        if !shadowed.contains(name.as_str()) && attributes.contains(name.as_str()) {
                            summary.writes_attribute = true;
                        }
                    }
                    LValue::Index { array, index, .. } => {
                        if !shadowed.contains(array.as_str()) && attributes.contains(array.as_str())
                        {
                            summary.writes_attribute = true;
                        }
                        summarize_expr(index, summary);
                    }
                    LValue::Result(_) => {}
                }
                summarize_expr(value, summary);
            }
            // Commands are conservatively impure regardless of their body.
            Stmt::LocalCommand { .. } => summary.writes_attribute = true,
            Stmt::If {
                arms, otherwise, ..
            } => {
                for (cond, branch) in arms {
                    summarize_expr(cond, summary);
                    summarize_stmts(branch, attributes, shadowed, summary);
                }
                summarize_stmts(otherwise, attributes, shadowed, summary);
            }
            Stmt::While { cond, body, .. } => {
                summarize_expr(cond, summary);
                summarize_stmts(body, attributes, shadowed, summary);
            }
            Stmt::Print { value, .. } => {
                if let PrintArg::Value(expr) = value {
                    summarize_expr(expr, summary);
                }
            }
            // Not reachable inside routine bodies (rejected by check_stmt),
            // but be conservative if that ever changes.
            Stmt::Create { .. } | Stmt::SeparateBlock { .. } | Stmt::CommandCall { .. } => {
                summary.writes_attribute = true;
            }
        }
    }
}

fn summarize_expr(expr: &Expr, summary: &mut RoutineSummary) {
    match expr {
        Expr::Int(..) | Expr::Bool(..) | Expr::Var(..) | Expr::Result(..) => {}
        Expr::Index { array, index, .. } => {
            summarize_expr(array, summary);
            summarize_expr(index, summary);
        }
        Expr::NewArray { len, .. } => summarize_expr(len, summary),
        Expr::Length { array, .. } => summarize_expr(array, summary),
        Expr::Random { bound, .. } => summarize_expr(bound, summary),
        Expr::LocalCall { routine, args, .. } => {
            summary.callees.insert(routine.clone());
            for arg in args {
                summarize_expr(arg, summary);
            }
        }
        // Separate queries cannot occur inside routine bodies; conservative.
        Expr::QueryCall { args, .. } => {
            summary.writes_attribute = true;
            for arg in args {
                summarize_expr(arg, summary);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            summarize_expr(lhs, summary);
            summarize_expr(rhs, summary);
        }
        Expr::Unary { expr, .. } => summarize_expr(expr, summary),
    }
}

/// The outcome of the per-block effect classification.
struct BlockLint {
    inferred: BTreeSet<(u32, u32)>,
    diagnostics: Vec<Diagnostic>,
}

/// The effect one separate block has on one of its reserved targets, plus
/// witnesses for diagnostics.
#[derive(Default)]
struct TargetEffect {
    effect: Effect,
    /// First command call or nested re-reservation (a definite write).
    command_write: Option<(String, Pos)>,
    /// First impure query (writes attribute state from inside a query).
    impure_query: Option<(String, Pos)>,
}

impl TargetEffect {
    fn widen(&mut self, effect: Effect) {
        self.effect = self.effect.join(effect);
    }
}

/// Walks `main`, classifying every `separate` block on the effect lattice.
///
/// * Declared `separate read` blocks with a `Write` effect on any target are
///   a hard error (`QS-E001`) — the static counterpart of the runtime
///   `MailboxError::ReadOnlyReservation`.
/// * Plain blocks whose every target stays at or below `Read` (with at least
///   one actual read) are recorded as inferred read blocks and noted
///   (`QS-N001`).
/// * Plain blocks that only *query* their targets but still write (an impure
///   query) get a `QS-W001` warning naming the query that blocks the
///   downgrade.
fn classify_separate_blocks(
    main: &MainDecl,
    handler_classes: &BTreeMap<String, String>,
    purity: &PurityTable,
) -> LangResult<BlockLint> {
    let mut lint = BlockLint {
        inferred: BTreeSet::new(),
        diagnostics: Vec::new(),
    };
    classify_in_stmts(&main.body, handler_classes, purity, &mut lint)?;
    Ok(lint)
}

fn classify_in_stmts(
    stmts: &[Stmt],
    handler_classes: &BTreeMap<String, String>,
    purity: &PurityTable,
    lint: &mut BlockLint,
) -> LangResult<()> {
    for stmt in stmts {
        match stmt {
            Stmt::SeparateBlock {
                targets,
                read,
                body,
                pos,
            } => {
                // Nested blocks are classified on their own merits first.
                classify_in_stmts(body, handler_classes, purity, lint)?;
                classify_block(targets, *read, body, *pos, handler_classes, purity, lint)?;
            }
            Stmt::If {
                arms, otherwise, ..
            } => {
                for (_, branch) in arms {
                    classify_in_stmts(branch, handler_classes, purity, lint)?;
                }
                classify_in_stmts(otherwise, handler_classes, purity, lint)?;
            }
            Stmt::While { body, .. } => {
                classify_in_stmts(body, handler_classes, purity, lint)?;
            }
            _ => {}
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn classify_block(
    targets: &[String],
    declared_read: bool,
    body: &[Stmt],
    pos: Pos,
    handler_classes: &BTreeMap<String, String>,
    purity: &PurityTable,
    lint: &mut BlockLint,
) -> LangResult<()> {
    let mut effects: BTreeMap<&str, TargetEffect> = BTreeMap::new();
    for target in targets {
        let mut effect = TargetEffect::default();
        target_effect_in_stmts(target, body, handler_classes, purity, &mut effect);
        effects.insert(target.as_str(), effect);
    }
    let worst = effects
        .values()
        .map(|e| e.effect)
        .fold(Effect::Pure, Effect::join);

    if declared_read {
        if worst == Effect::Write {
            let (witness, witness_pos, what) = effects
                .iter()
                .find_map(|(t, e)| {
                    e.command_write
                        .as_ref()
                        .map(|(name, p)| (format!("command `{t}.{name}`"), *p, "command"))
                        .or_else(|| {
                            e.impure_query.as_ref().map(|(name, p)| {
                                (format!("impure query `{t}.{name}`"), *p, "impure query")
                            })
                        })
                })
                .expect("a Write effect has a witness");
            return Err(LangError::at(
                Phase::Check,
                witness_pos,
                format!(
                    "QS-E001: {witness} writes through the `separate read` \
                     reservation declared at {}:{} ({what}s need an exclusive \
                     reservation)",
                    pos.line, pos.col
                ),
            ));
        }
        return Ok(());
    }

    let any_read = effects.values().any(|e| e.effect == Effect::Read);
    if worst <= Effect::Read && any_read {
        lint.inferred.insert((pos.line, pos.col));
        lint.diagnostics.push(
            Diagnostic::note(
                "QS-N001",
                format!(
                    "separate block on [{}] proven read-only; shared-read \
                     reservation emitted under auto-read",
                    targets.join(", ")
                ),
            )
            .with_span(pos.line, pos.col),
        );
    } else if worst == Effect::Write && effects.values().all(|e| e.command_write.is_none()) {
        let (target, (query, query_pos)) = effects
            .iter()
            .find_map(|(t, e)| e.impure_query.as_ref().map(|w| (*t, w.clone())))
            .expect("a command-free Write effect stems from an impure query");
        lint.diagnostics.push(
            Diagnostic::warning(
                "QS-W001",
                format!(
                    "separate block on [{}] only queries its targets but is \
                     not downgraded: query `{target}.{query}` at {}:{} writes \
                     attribute state",
                    targets.join(", "),
                    query_pos.line,
                    query_pos.col
                ),
            )
            .with_span(pos.line, pos.col),
        );
    }
    Ok(())
}

fn target_effect_in_stmts(
    target: &str,
    stmts: &[Stmt],
    handler_classes: &BTreeMap<String, String>,
    purity: &PurityTable,
    out: &mut TargetEffect,
) {
    for stmt in stmts {
        match stmt {
            Stmt::CommandCall {
                target: t,
                routine,
                args,
                pos,
            } => {
                if t == target {
                    out.widen(Effect::Write);
                    if out.command_write.is_none() {
                        out.command_write = Some((routine.clone(), *pos));
                    }
                }
                for arg in args {
                    target_effect_in_expr(target, arg, handler_classes, purity, out);
                }
            }
            Stmt::Assign { target: _, value } => {
                target_effect_in_expr(target, value, handler_classes, purity, out);
            }
            Stmt::SeparateBlock {
                targets, body, pos, ..
            } => {
                if targets.iter().any(|t| t == target) {
                    // Re-reserving an already reserved handler: conservative.
                    out.widen(Effect::Write);
                    if out.command_write.is_none() {
                        out.command_write = Some(("<re-reservation>".to_string(), *pos));
                    }
                } else {
                    target_effect_in_stmts(target, body, handler_classes, purity, out);
                }
            }
            Stmt::If {
                arms, otherwise, ..
            } => {
                for (cond, branch) in arms {
                    target_effect_in_expr(target, cond, handler_classes, purity, out);
                    target_effect_in_stmts(target, branch, handler_classes, purity, out);
                }
                target_effect_in_stmts(target, otherwise, handler_classes, purity, out);
            }
            Stmt::While { cond, body, .. } => {
                target_effect_in_expr(target, cond, handler_classes, purity, out);
                target_effect_in_stmts(target, body, handler_classes, purity, out);
            }
            Stmt::Print { value, .. } => {
                if let PrintArg::Value(expr) = value {
                    target_effect_in_expr(target, expr, handler_classes, purity, out);
                }
            }
            Stmt::Create { .. } | Stmt::LocalCommand { .. } => {}
        }
    }
}

fn target_effect_in_expr(
    target: &str,
    expr: &Expr,
    handler_classes: &BTreeMap<String, String>,
    purity: &PurityTable,
    out: &mut TargetEffect,
) {
    match expr {
        Expr::QueryCall {
            target: t,
            routine,
            args,
            pos,
            ..
        } => {
            if t == target {
                let pure = handler_classes
                    .get(target)
                    .and_then(|class| purity.get(class))
                    .and_then(|routines| routines.get(routine))
                    .copied()
                    .unwrap_or(false);
                if pure {
                    out.widen(Effect::Read);
                } else {
                    out.widen(Effect::Write);
                    if out.impure_query.is_none() {
                        out.impure_query = Some((routine.clone(), *pos));
                    }
                }
            }
            for arg in args {
                target_effect_in_expr(target, arg, handler_classes, purity, out);
            }
        }
        Expr::Int(..) | Expr::Bool(..) | Expr::Var(..) | Expr::Result(..) => {}
        Expr::Index { array, index, .. } => {
            target_effect_in_expr(target, array, handler_classes, purity, out);
            target_effect_in_expr(target, index, handler_classes, purity, out);
        }
        Expr::NewArray { len, .. } => {
            target_effect_in_expr(target, len, handler_classes, purity, out)
        }
        Expr::Length { array, .. } => {
            target_effect_in_expr(target, array, handler_classes, purity, out)
        }
        Expr::Random { bound, .. } => {
            target_effect_in_expr(target, bound, handler_classes, purity, out)
        }
        Expr::LocalCall { args, .. } => {
            for arg in args {
                target_effect_in_expr(target, arg, handler_classes, purity, out);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            target_effect_in_expr(target, lhs, handler_classes, purity, out);
            target_effect_in_expr(target, rhs, handler_classes, purity, out);
        }
        Expr::Unary { expr, .. } => {
            target_effect_in_expr(target, expr, handler_classes, purity, out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(source: &str) -> LangResult<CheckedProgram> {
        check_program(parse_program(source).unwrap())
    }

    const COUNTER: &str = "class COUNTER\n\
         attribute count : INTEGER\n\
         command bump(amount: INTEGER) do count := count + amount end\n\
         query value : INTEGER do Result := count end\n\
       end\n";

    #[test]
    fn accepts_a_well_formed_program() {
        let checked = check(&format!(
            "{COUNTER}\
             main local c : separate COUNTER local v : INTEGER do \
               create c separate c do c.bump(2) v := c.value() end print(v) end"
        ))
        .unwrap();
        assert_eq!(checked.handler_vars.len(), 1);
        assert_eq!(checked.handler_vars["c"], 0);
        assert_eq!(checked.handler_classes["c"], "COUNTER");
        assert_eq!(checked.query_sites, 1);
        assert_eq!(checked.classes["COUNTER"].fields.len(), 1);
    }

    #[test]
    fn rejects_calls_outside_separate_blocks() {
        let err = check(&format!(
            "{COUNTER}main local c : separate COUNTER do create c c.bump(1) end"
        ))
        .unwrap_err();
        assert!(err.message.contains("outside a `separate"));
    }

    #[test]
    fn rejects_unknown_routine_and_bad_arity() {
        let err = check(&format!(
            "{COUNTER}main local c : separate COUNTER do separate c do c.missing() end end"
        ))
        .unwrap_err();
        assert!(err.message.contains("no routine"));
        let err = check(&format!(
            "{COUNTER}main local c : separate COUNTER do separate c do c.bump(1, 2) end end"
        ))
        .unwrap_err();
        assert!(err.message.contains("expects 1 argument"));
    }

    #[test]
    fn rejects_command_in_expression_and_query_as_statement() {
        let err = check(&format!(
            "{COUNTER}main local c : separate COUNTER local v : INTEGER do \
               separate c do v := c.bump(1) end end"
        ))
        .unwrap_err();
        assert!(err.message.contains("is a command"));
        let err = check(&format!(
            "{COUNTER}main local c : separate COUNTER do separate c do c.value() end end"
        ))
        .unwrap_err();
        assert!(err.message.contains("is a query"));
    }

    #[test]
    fn rejects_type_mismatches() {
        let err = check("main local b : BOOLEAN do b := 3 end").unwrap_err();
        assert!(err.message.contains("BOOLEAN"));
        let err = check("main local i : INTEGER do if i then i := 1 end end").unwrap_err();
        assert!(err.message.contains("condition"));
        let err = check("main local a : ARRAY do a := array(true) end").unwrap_err();
        assert!(err.message.contains("array length"));
    }

    #[test]
    fn rejects_unknown_class_and_duplicate_names() {
        let err = check("main local x : separate NOPE do end").unwrap_err();
        assert!(err.message.contains("unknown class"));
        let err = check("class C attribute a : INTEGER attribute a : INTEGER end main do end")
            .unwrap_err();
        assert!(err.message.contains("duplicate attribute"));
        let err = check(&format!("{COUNTER}{COUNTER}main do end")).unwrap_err();
        assert!(err.message.contains("duplicate class"));
    }

    #[test]
    fn rejects_separate_vars_used_as_values() {
        let err = check(&format!(
            "{COUNTER}main local c : separate COUNTER local v : INTEGER do v := c end"
        ))
        .unwrap_err();
        assert!(err.message.contains("cannot be used as a value"));
        let err = check(&format!(
            "{COUNTER}main local c : separate COUNTER do c := 1 end"
        ))
        .unwrap_err();
        assert!(err.message.contains("cannot be assigned"));
    }

    #[test]
    fn rejects_result_outside_queries_and_nested_restrictions() {
        let err = check("main do Result := 1 end").unwrap_err();
        assert!(err.message.contains("Result"));
        let err = check(
            "class C attribute n : INTEGER \
               command f do create n end \
             end main do end",
        )
        .unwrap_err();
        assert!(err.message.contains("only allowed in `main`"));
    }

    #[test]
    fn contracts_must_be_boolean() {
        let err = check(
            "class C attribute n : INTEGER \
               command f require n + 1 do n := 1 end \
             end main do end",
        )
        .unwrap_err();
        assert!(err.message.contains("require"));
    }

    #[test]
    fn multiple_handlers_get_distinct_indices() {
        let checked = check(&format!(
            "{COUNTER}main local a : separate COUNTER local b : separate COUNTER do \
               create a create b separate a, b do a.bump(1) b.bump(2) end end"
        ))
        .unwrap();
        assert_eq!(checked.handler_vars.len(), 2);
        assert_ne!(checked.handler_vars["a"], checked.handler_vars["b"]);
    }

    #[test]
    fn query_only_blocks_are_inferred_read_only() {
        let checked = check(&format!(
            "{COUNTER}\
             main local c : separate COUNTER local v : INTEGER do \
               create c \
               separate c do c.bump(1) end \
               separate c do v := c.value() + c.value() end \
               print(v) end"
        ))
        .unwrap();
        assert_eq!(checked.inferred_read_blocks.len(), 1);
        assert_eq!(checked.diagnostics.len(), 1);
        let note = &checked.diagnostics[0];
        assert_eq!(note.code, "QS-N001");
        assert!(note.message.contains("proven read-only"));
        assert!(note.span.is_some());
    }

    #[test]
    fn blocks_with_commands_are_not_inferred_and_not_warned() {
        let checked = check(&format!(
            "{COUNTER}\
             main local c : separate COUNTER local v : INTEGER do \
               create c \
               separate c do c.bump(1) v := c.value() end \
               print(v) end"
        ))
        .unwrap();
        assert!(checked.inferred_read_blocks.is_empty());
        assert!(checked.diagnostics.is_empty());
    }

    const TICKET: &str = "class TICKET\n\
         attribute next : INTEGER\n\
         query take : INTEGER do Result := next next := next + 1 end\n\
         query peek : INTEGER do Result := next end\n\
       end\n";

    #[test]
    fn impure_queries_block_the_downgrade_with_a_warning() {
        let checked = check(&format!(
            "{TICKET}\
             main local t : separate TICKET local v : INTEGER do \
               create t separate t do v := t.take() end print(v) end"
        ))
        .unwrap();
        assert!(checked.inferred_read_blocks.is_empty());
        assert_eq!(checked.diagnostics.len(), 1);
        let warning = &checked.diagnostics[0];
        assert_eq!(warning.code, "QS-W001");
        assert!(warning.message.contains("t.take"));
    }

    #[test]
    fn declared_read_blocks_reject_commands_statically() {
        let err = check(&format!(
            "{COUNTER}\
             main local c : separate COUNTER do \
               create c separate read c do c.bump(1) end end"
        ))
        .unwrap_err();
        assert!(err.message.contains("QS-E001"), "got: {}", err.message);
        assert!(err.message.contains("c.bump"));
    }

    #[test]
    fn declared_read_blocks_reject_impure_queries_statically() {
        let err = check(&format!(
            "{TICKET}\
             main local t : separate TICKET local v : INTEGER do \
               create t separate read t do v := t.take() end print(v) end"
        ))
        .unwrap_err();
        assert!(err.message.contains("QS-E001"), "got: {}", err.message);
        assert!(err.message.contains("impure query"));
    }

    #[test]
    fn declared_read_blocks_accept_pure_queries() {
        let checked = check(&format!(
            "{TICKET}\
             main local t : separate TICKET local v : INTEGER do \
               create t separate read t do v := t.peek() end print(v) end"
        ))
        .unwrap();
        // Declared blocks are honoured via their `read` flag, not inference.
        assert!(checked.inferred_read_blocks.is_empty());
    }

    #[test]
    fn multi_target_blocks_need_every_target_read_only() {
        let source = format!(
            "{COUNTER}\
             main local a : separate COUNTER local b : separate COUNTER local v : INTEGER do \
               create a create b \
               separate a, b do v := a.value() + b.value() end \
               separate a, b do v := a.value() b.bump(1) end \
               print(v) end"
        );
        let checked = check(&source).unwrap();
        assert_eq!(checked.inferred_read_blocks.len(), 1);
    }

    #[test]
    fn purity_sees_through_local_shadowing_and_recursion() {
        // `steps` is a parameter shadowing nothing, `count` is written only
        // through a local named `count` — the attribute stays untouched, and
        // the two queries recurse into each other.
        let source = "class MATH\n\
             attribute count : INTEGER\n\
             query even(n: INTEGER) : BOOLEAN local count : INTEGER do \
               count := 0 \
               if n = 0 then Result := true else Result := odd(n - 1) end end\n\
             query odd(n: INTEGER) : BOOLEAN do \
               if n = 0 then Result := false else Result := even(n - 1) end end\n\
           end\n\
           main local m : separate MATH local b : BOOLEAN do \
             create m separate m do b := m.even(4) end print(b) end";
        let checked = check(source).unwrap();
        assert_eq!(checked.inferred_read_blocks.len(), 1);
    }

    #[test]
    fn nested_re_reservation_blocks_the_downgrade() {
        let source = format!(
            "{COUNTER}\
             main local c : separate COUNTER local v : INTEGER do \
               create c \
               separate c do \
                 v := c.value() \
                 separate c do v := c.value() end \
               end \
               print(v) end"
        );
        let checked = check(&source).unwrap();
        // The inner block is inferred; the outer one re-reserves `c`.
        assert_eq!(checked.inferred_read_blocks.len(), 1);
    }

    #[test]
    fn local_calls_inside_routines_are_checked() {
        let ok = check(
            "class C attribute n : INTEGER \
               query twice(v: INTEGER) : INTEGER do Result := v * 2 end \
               command set(v: INTEGER) do n := twice(v) end \
             end main do end",
        );
        assert!(ok.is_ok());
        let err = check(
            "class C attribute n : INTEGER \
               command set(v: INTEGER) do n := missing(v) end \
             end main do end",
        )
        .unwrap_err();
        assert!(err.message.contains("no routine"));
    }
}
