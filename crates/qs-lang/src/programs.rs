//! Ready-made programs used by the examples, benchmarks and tests.
//!
//! Each program exercises a different part of the execution model: plain
//! asynchronous commands, query-heavy copy loops (the Fig. 14 shape the
//! static pass targets), multi-handler reservations (Fig. 5) and contracts.

/// A minimal counter program: asynchronous bumps followed by one query.
pub const COUNTER: &str = "\
class COUNTER
  attribute count : INTEGER
  command bump(amount: INTEGER) do count := count + amount end
  command reset do count := 0 end
  query value : INTEGER do Result := count end
end

main
  local c : separate COUNTER
  local v : INTEGER
  local i : INTEGER
do
  create c
  separate c do
    i := 0
    while i < 100 loop c.bump(i) i := i + 1 end
    v := c.value()
  end
  print(v)
end
";

/// Expected `print` output of [`COUNTER`].
pub fn counter_expected() -> Vec<String> {
    vec![(0..100).sum::<i64>().to_string()]
}

/// A bank-transfer program with a two-handler separate block: the invariant
/// (conservation of the total balance) is only observable consistently
/// because both accounts are reserved together (Fig. 5 of the paper).
pub const BANK_TRANSFER: &str = "\
class ACCOUNT
  attribute balance : INTEGER
  command open(amount: INTEGER) require amount >= 0 do balance := amount end
  command deposit(amount: INTEGER) require amount > 0 do balance := balance + amount end
  command withdraw(amount: INTEGER) require amount > 0 do balance := balance - amount end
  query value : INTEGER do Result := balance end
end

main
  local a : separate ACCOUNT
  local b : separate ACCOUNT
  local total : INTEGER
  local i : INTEGER
do
  create a
  create b
  separate a, b do
    a.open(900)
    b.open(100)
    i := 0
    while i < 10 loop
      a.withdraw(10)
      b.deposit(10)
      i := i + 1
    end
    total := a.value() + b.value()
  end
  print(total)
  print(\"transfers done\")
end
";

/// Expected `print` output of [`BANK_TRANSFER`].
pub fn bank_transfer_expected() -> Vec<String> {
    vec!["1000".to_string(), "transfers done".to_string()]
}

/// The Fig. 14 copy loop: a client pulls `n` elements out of a handler-owned
/// array with one query per element.  Under naive code generation every read
/// pays a sync round-trip; the static pass (or dynamic coalescing) removes
/// all but the first.
pub fn copy_loop(n: usize) -> String {
    format!(
        "\
class STORE
  attribute data : ARRAY
  command fill(n: INTEGER) local i : INTEGER do
    data := array(n)
    i := 0
    while i < n loop data[i] := i * 3 i := i + 1 end
  end
  query item(i: INTEGER) : INTEGER do Result := data[i] end
  query size : INTEGER do Result := length(data) end
end

main
  local s : separate STORE
  local x : ARRAY
  local i : INTEGER
  local n : INTEGER
  local checksum : INTEGER
do
  create s
  separate s do
    s.fill({n})
    n := s.size()
    x := array(n)
    i := 0
    while i < n loop
      x[i] := s.item(i)
      i := i + 1
    end
  end
  i := 0
  while i < n loop checksum := checksum + x[i] i := i + 1 end
  print(checksum)
end
"
    )
}

/// Expected `print` output of [`copy_loop`]`(n)`.
pub fn copy_loop_expected(n: usize) -> Vec<String> {
    vec![(0..n as i64).map(|i| i * 3).sum::<i64>().to_string()]
}

/// A pipeline of two workers: a producer handler fills a buffer, a consumer
/// handler folds it; the client moves data between them (the SCOOP "pull"
/// idiom of §3.4).
pub const TWO_STAGE_PIPELINE: &str = "\
class SOURCE
  attribute items : ARRAY
  command generate(n: INTEGER) local i : INTEGER do
    items := array(n)
    i := 0
    while i < n loop items[i] := i + 1 i := i + 1 end
  end
  query item(i: INTEGER) : INTEGER do Result := items[i] end
  query count : INTEGER do Result := length(items) end
end

class SINK
  attribute total : INTEGER
  attribute accepted : INTEGER
  command accept(v: INTEGER) require v > 0 do
    total := total + v
    accepted := accepted + 1
  end
  query sum : INTEGER do Result := total end
  query count : INTEGER do Result := accepted end
end

main
  local src : separate SOURCE
  local dst : separate SINK
  local i : INTEGER
  local n : INTEGER
  local v : INTEGER
  local answer : INTEGER
do
  create src
  create dst
  separate src do
    src.generate(64)
    n := src.count()
    separate dst do
      i := 0
      while i < n loop
        v := src.item(i)
        dst.accept(v)
        i := i + 1
      end
      answer := dst.sum()
    end
  end
  print(answer)
end
";

/// Expected `print` output of [`TWO_STAGE_PIPELINE`].
pub fn two_stage_pipeline_expected() -> Vec<String> {
    vec![(1..=64i64).sum::<i64>().to_string()]
}

/// A read-mostly program: one calibration block writes the sensor, then a
/// query-only block walks every reading.  The second block is a plain
/// `separate` — the effect-inference pass proves it read-only, so under
/// `auto_read` the interpreter reserves it in shared read mode and every
/// query executes on the client without a queue crossing.
pub const HOT_READS: &str = "\
class SENSOR
  attribute readings : ARRAY
  attribute samples : INTEGER
  command calibrate(n: INTEGER) local i : INTEGER do
    readings := array(n)
    i := 0
    while i < n loop readings[i] := i * 7 i := i + 1 end
    samples := n
  end
  query at(i: INTEGER) : INTEGER do Result := readings[i] end
  query count : INTEGER do Result := samples end
  query mean : INTEGER local i : INTEGER local total : INTEGER do
    i := 0
    while i < samples loop total := total + readings[i] i := i + 1 end
    Result := total / samples
  end
end

main
  local s : separate SENSOR
  local i : INTEGER
  local n : INTEGER
  local checksum : INTEGER
do
  create s
  separate s do s.calibrate(48) end
  separate s do
    n := s.count()
    i := 0
    while i < n loop
      checksum := checksum + s.at(i)
      i := i + 1
    end
    checksum := checksum + s.mean()
  end
  print(checksum)
end
";

/// Expected `print` output of [`HOT_READS`].
pub fn hot_reads_expected() -> Vec<String> {
    let total: i64 = (0..48).map(|i| i * 7).sum();
    vec![(total + total / 48).to_string()]
}

/// A gauge whose commands carry contracts; raising by a non-positive amount
/// violates the precondition and the run reports it.
pub const CONTRACT_VIOLATION: &str = "\
class GAUGE
  attribute level : INTEGER
  command raise(amount: INTEGER) require amount > 0 do level := level + amount ensure level > 0 end
  query value : INTEGER do Result := level end
end

main
  local g : separate GAUGE
  local v : INTEGER
do
  create g
  separate g do
    g.raise(0 - 3)
    v := g.value()
  end
  print(v)
end
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, run_compiled, QueryStrategy};
    use qs_runtime::Runtime;

    fn run_all_strategies(source: &str, expected: &[String]) {
        let compiled = compile(source).unwrap();
        for strategy in [
            QueryStrategy::RuntimeManaged,
            QueryStrategy::NaiveSync,
            compiled.static_strategy(),
        ] {
            let runtime = Runtime::fully_optimized();
            let output = run_compiled(&compiled, &runtime, strategy).unwrap();
            assert_eq!(output.printed, expected);
        }
    }

    #[test]
    fn counter_program_runs() {
        run_all_strategies(COUNTER, &counter_expected());
    }

    #[test]
    fn bank_transfer_conserves_the_total() {
        run_all_strategies(BANK_TRANSFER, &bank_transfer_expected());
    }

    #[test]
    fn copy_loop_matches_reference() {
        run_all_strategies(&copy_loop(128), &copy_loop_expected(128));
    }

    #[test]
    fn pipeline_matches_reference() {
        run_all_strategies(TWO_STAGE_PIPELINE, &two_stage_pipeline_expected());
    }

    #[test]
    fn hot_reads_matches_reference() {
        run_all_strategies(HOT_READS, &hot_reads_expected());
    }

    #[test]
    fn hot_reads_is_inferred_read_only() {
        let compiled = compile(HOT_READS).unwrap();
        assert_eq!(compiled.checked.inferred_read_blocks.len(), 1);
        assert!(compiled
            .checked
            .diagnostics
            .iter()
            .any(|d| d.code == "QS-N001"));
    }

    #[test]
    fn copy_loop_static_plan_removes_the_inner_sync() {
        let compiled = compile(&copy_loop(32)).unwrap();
        assert!(compiled.lowered.report.syncs_removed() >= 1);
        assert!(compiled.lowered.plan.elided_sites() >= 1);
    }

    #[test]
    fn contract_violation_program_fails() {
        let compiled = compile(CONTRACT_VIOLATION).unwrap();
        let runtime = Runtime::fully_optimized();
        let err = run_compiled(&compiled, &runtime, QueryStrategy::RuntimeManaged).unwrap_err();
        assert!(err.message.contains("precondition"));
    }
}
