//! Lowering of `main` to the `qs-compiler` mini-IR and extraction of a
//! per-query-site synchronisation plan.
//!
//! The paper's static sync-coalescing pass (§3.4.2) runs over LLVM bitcode;
//! here the same pass (implemented in `qs-compiler`) runs over a control-flow
//! graph lowered from the surface program.  What the interpreter ultimately
//! needs from the pass is one bit per query call site: *does this site still
//! need a sync before executing the query on the client?*  Lowering therefore
//! tags the `QueryRead` instruction of each site with its site id; after the
//! pass runs, the [`SyncPlan`] records which sites kept their preceding sync.
//!
//! Two aspects of the lowering are SCOOP-specific:
//!
//! * A `separate` block boundary invalidates synchronisation: entering the
//!   block enqueues a fresh private queue, leaving it enqueues the END
//!   marker, and both are asynchronous operations on the reserved handlers.
//!   They are lowered as `AsyncCall`s so the pass can never carry a sync-set
//!   entry across block boundaries.
//! * Distinct separate variables always denote distinct handlers in this
//!   language (they can only be bound by `create`), so the alias model is
//!   [`AliasModel::NoAlias`] — the favourable case of Fig. 15b.

use qs_compiler::ir::{AliasModel, BlockId, Function, Instr};
use qs_compiler::transform::{coalesce_syncs, CoalesceReport};

use crate::ast::*;
use crate::sema::CheckedProgram;

/// For every query call site of `main`: `true` when the site must perform a
/// sync before executing the query on the client, `false` when the static
/// pass proved the handler is already synchronised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncPlan {
    needs_sync: Vec<bool>,
}

impl SyncPlan {
    /// A plan in which every site syncs (naive code generation).
    pub fn naive(sites: usize) -> Self {
        SyncPlan {
            needs_sync: vec![true; sites],
        }
    }

    /// Whether the given site still needs a sync.
    pub fn needs_sync(&self, site: usize) -> bool {
        self.needs_sync.get(site).copied().unwrap_or(true)
    }

    /// Number of sites whose sync was removed.
    pub fn elided_sites(&self) -> usize {
        self.needs_sync.iter().filter(|k| !**k).count()
    }

    /// Total number of sites covered by the plan.
    pub fn sites(&self) -> usize {
        self.needs_sync.len()
    }
}

/// The result of lowering and optimising `main`.
#[derive(Debug, Clone)]
pub struct LoweredMain {
    /// The naive-codegen control-flow graph (a sync before every query).
    pub naive: Function,
    /// The graph after the sync-coalescing pass.
    pub coalesced: Function,
    /// The pass report (sync counts, analysis iterations).
    pub report: CoalesceReport,
    /// The per-site synchronisation plan extracted from `coalesced`.
    pub plan: SyncPlan,
}

/// Lowers `main` of a checked program and runs the static sync-coalescing
/// pass over it.
pub fn lower_main(checked: &CheckedProgram) -> LoweredMain {
    let naive = build_cfg(checked);
    let report = coalesce_syncs(&naive);
    let coalesced = report.function.clone();
    let plan = extract_plan(&coalesced, checked.query_sites);
    LoweredMain {
        naive,
        coalesced,
        report,
        plan,
    }
}

/// Builds the naive-codegen CFG for `main`.
pub fn build_cfg(checked: &CheckedProgram) -> Function {
    let mut lowerer = Lowerer::new(checked);
    lowerer.stmts(&checked.program.main.body);
    lowerer.finish()
}

/// Derives the per-site plan from a coalesced function: a site needs a sync
/// exactly when the instruction immediately preceding its `QueryRead`
/// (lowering always emits the pair adjacently) is still a `Sync` of the same
/// handler.
fn extract_plan(coalesced: &Function, sites: usize) -> SyncPlan {
    let mut needs_sync = vec![false; sites];
    for block in &coalesced.blocks {
        let mut previous_sync: Option<usize> = None;
        for instr in &block.instrs {
            match instr {
                Instr::Sync(h) => previous_sync = Some(*h),
                Instr::QueryRead { handler, label } => {
                    if let Some(site) = parse_site(label) {
                        if site < sites {
                            needs_sync[site] = previous_sync == Some(*handler);
                        }
                    }
                    previous_sync = None;
                }
                _ => previous_sync = None,
            }
        }
    }
    SyncPlan { needs_sync }
}

fn site_label(site: usize) -> String {
    format!("site:{site}")
}

fn parse_site(label: &str) -> Option<usize> {
    label.strip_prefix("site:")?.parse().ok()
}

struct Lowerer<'a> {
    checked: &'a CheckedProgram,
    function: Function,
    current: BlockId,
}

impl<'a> Lowerer<'a> {
    fn new(checked: &'a CheckedProgram) -> Self {
        let mut function = Function::new("main", AliasModel::NoAlias);
        let entry = function.add_block(Vec::new(), Vec::new());
        function.entry = entry;
        Lowerer {
            checked,
            function,
            current: entry,
        }
    }

    fn finish(self) -> Function {
        self.function
    }

    fn handler_var(&self, name: &str) -> usize {
        self.checked.handler_vars[name]
    }

    fn emit(&mut self, instr: Instr) {
        self.function.blocks[self.current].instrs.push(instr);
    }

    fn new_block(&mut self) -> BlockId {
        self.function.add_block(Vec::new(), Vec::new())
    }

    fn set_successors(&mut self, block: BlockId, successors: Vec<BlockId>) {
        self.function.blocks[block].successors = successors;
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            self.stmt(stmt);
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Assign { value, target } => {
                if let LValue::Index { index, .. } = target {
                    self.expr(index);
                }
                self.expr(value);
            }
            Stmt::Create { var, .. } => {
                self.emit(Instr::Local(format!("create {var}")));
            }
            Stmt::SeparateBlock { targets, body, .. } => {
                // Entering the block: enqueueing the private queue is an
                // asynchronous operation; the handler is certainly not synced
                // with this new block.
                for target in targets {
                    self.emit(Instr::AsyncCall {
                        handler: self.handler_var(target),
                        label: format!("enter separate {target}"),
                    });
                }
                self.stmts(body);
                // Leaving the block: the END marker is logged asynchronously
                // and any later block must re-sync.
                for target in targets {
                    self.emit(Instr::AsyncCall {
                        handler: self.handler_var(target),
                        label: format!("leave separate {target}"),
                    });
                }
            }
            Stmt::CommandCall {
                target,
                routine,
                args,
                ..
            } => {
                for arg in args {
                    self.expr(arg);
                }
                self.emit(Instr::AsyncCall {
                    handler: self.handler_var(target),
                    label: format!("{target}.{routine}"),
                });
            }
            Stmt::LocalCommand { routine, args, .. } => {
                for arg in args {
                    self.expr(arg);
                }
                self.emit(Instr::Local(format!("{routine}(…)")));
            }
            Stmt::If {
                arms, otherwise, ..
            } => {
                let join = self.new_block();
                let mut branch_entries = Vec::new();
                // Chain of condition blocks; the first one is the current
                // block, each subsequent `elseif` gets its own block.
                for (index, (cond, branch)) in arms.iter().enumerate() {
                    self.expr(cond);
                    let branch_block = self.new_block();
                    branch_entries.push(branch_block);
                    let next_cond_block = if index + 1 < arms.len() || !otherwise.is_empty() {
                        self.new_block()
                    } else {
                        join
                    };
                    self.set_successors(self.current, vec![branch_block, next_cond_block]);
                    // Lower the branch body.
                    self.current = branch_block;
                    self.stmts(branch);
                    self.set_successors(self.current, vec![join]);
                    // Continue with the next condition (or the else block).
                    self.current = next_cond_block;
                }
                if !otherwise.is_empty() {
                    self.stmts(otherwise);
                    self.set_successors(self.current, vec![join]);
                    self.current = join;
                } else {
                    // `self.current` is already `join` when there is no else.
                    self.current = join;
                }
            }
            Stmt::While { cond, body, .. } => {
                let header = self.new_block();
                let body_block = self.new_block();
                let exit = self.new_block();
                self.set_successors(self.current, vec![header]);
                self.current = header;
                self.expr(cond);
                self.set_successors(header, vec![body_block, exit]);
                self.current = body_block;
                self.stmts(body);
                self.set_successors(self.current, vec![header]);
                self.current = exit;
            }
            Stmt::Print { value, .. } => {
                if let PrintArg::Value(expr) = value {
                    self.expr(expr);
                }
                self.emit(Instr::Local("print".to_string()));
            }
        }
    }

    fn expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Int(..) | Expr::Bool(..) | Expr::Var(..) | Expr::Result(..) => {}
            Expr::Index { array, index, .. } => {
                self.expr(array);
                self.expr(index);
            }
            Expr::NewArray { len, .. } => self.expr(len),
            Expr::Length { array, .. } => self.expr(array),
            Expr::Random { bound, .. } => self.expr(bound),
            Expr::QueryCall {
                target, args, site, ..
            } => {
                for arg in args {
                    self.expr(arg);
                }
                let handler = self.handler_var(target);
                // Naive code generation: a sync in front of every query read.
                self.emit(Instr::Sync(handler));
                self.emit(Instr::QueryRead {
                    handler,
                    label: site_label(*site),
                });
            }
            Expr::LocalCall { args, .. } => {
                for arg in args {
                    self.expr(arg);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Unary { expr, .. } => self.expr(expr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::sema::check_program;

    fn lower(source: &str) -> LoweredMain {
        lower_main(&check_program(parse_program(source).unwrap()).unwrap())
    }

    const ARRAY_CLASS: &str = "class STORE\n\
        attribute data : ARRAY\n\
        command fill(n: INTEGER) local i : INTEGER do \
          data := array(n) i := 0 \
          while i < n loop data[i] := i i := i + 1 end \
        end\n\
        query item(i: INTEGER) : INTEGER do Result := data[i] end\n\
        query size : INTEGER do Result := length(data) end\n\
      end\n";

    #[test]
    fn straight_line_queries_keep_only_the_first_sync() {
        let lowered = lower(&format!(
            "{ARRAY_CLASS}\
             main local s : separate STORE local a : INTEGER local b : INTEGER do \
               create s separate s do s.fill(4) a := s.item(0) b := s.item(1) end end"
        ));
        // Naive codegen: one sync per query site.
        assert_eq!(lowered.naive.count_syncs(), 2);
        // The command `fill` invalidates, so the first query keeps its sync;
        // the second is covered by the first.
        assert_eq!(lowered.coalesced.count_syncs(), 1);
        assert!(lowered.plan.needs_sync(0));
        assert!(!lowered.plan.needs_sync(1));
        assert_eq!(lowered.plan.elided_sites(), 1);
    }

    #[test]
    fn fig14_shaped_loop_drops_the_loop_body_sync() {
        // A read before the loop dominates the reads inside the loop, which
        // is exactly the Fig. 14 situation.
        let lowered = lower(&format!(
            "{ARRAY_CLASS}\
             main local s : separate STORE local x : ARRAY local i : INTEGER local n : INTEGER do \
               create s \
               separate s do \
                 s.fill(64) \
                 n := s.size() \
                 x := array(n) \
                 i := 0 \
                 while i < n loop x[i] := s.item(i) i := i + 1 end \
               end \
             end"
        ));
        assert_eq!(lowered.naive.count_syncs(), 2);
        assert_eq!(lowered.coalesced.count_syncs(), 1, "loop body sync removed");
        // Site 0 is `s.size()` (keeps its sync: `fill` just invalidated);
        // site 1 is `s.item(i)` inside the loop (covered on every path).
        assert!(lowered.plan.needs_sync(0));
        assert!(!lowered.plan.needs_sync(1));
    }

    #[test]
    fn commands_between_queries_force_resync() {
        let lowered = lower(&format!(
            "{ARRAY_CLASS}\
             main local s : separate STORE local a : INTEGER do \
               create s separate s do \
                 a := s.size() \
                 s.fill(8) \
                 a := s.size() \
               end end"
        ));
        assert_eq!(
            lowered.coalesced.count_syncs(),
            2,
            "the async fill invalidates"
        );
        assert!(lowered.plan.needs_sync(0));
        assert!(lowered.plan.needs_sync(1));
    }

    #[test]
    fn separate_block_boundaries_invalidate_sync() {
        let lowered = lower(&format!(
            "{ARRAY_CLASS}\
             main local s : separate STORE local a : INTEGER do \
               create s \
               separate s do a := s.size() end \
               separate s do a := s.size() end \
             end"
        ));
        // Both blocks must keep their sync: the reservation is new each time.
        assert_eq!(lowered.coalesced.count_syncs(), 2);
        assert!(lowered.plan.needs_sync(0));
        assert!(lowered.plan.needs_sync(1));
    }

    #[test]
    fn if_branches_intersect_sync_sets() {
        let lowered = lower(&format!(
            "{ARRAY_CLASS}\
             main local s : separate STORE local a : INTEGER local b : INTEGER do \
               create s separate s do \
                 a := s.size() \
                 if a > 0 then b := s.item(0) else s.fill(2) end \
                 b := s.size() \
               end end"
        ));
        // Site 0 (`s.size()` before the if) syncs.  Site 1 (`s.item(0)` in the
        // then-branch) is covered by site 0.  Site 2 (`s.size()` after the if)
        // must re-sync because the else-branch issued an asynchronous call.
        assert!(lowered.plan.needs_sync(0));
        assert!(!lowered.plan.needs_sync(1));
        assert!(lowered.plan.needs_sync(2));
    }

    #[test]
    fn two_handlers_do_not_interfere_without_aliasing() {
        let lowered = lower(&format!(
            "{ARRAY_CLASS}\
             main local s : separate STORE local t : separate STORE \
                  local a : INTEGER local b : INTEGER do \
               create s create t \
               separate s, t do \
                 a := s.size() \
                 t.fill(4) \
                 b := s.size() \
               end end"
        ));
        // The async call goes to `t`; under NoAlias it does not invalidate `s`.
        assert!(lowered.plan.needs_sync(0));
        assert!(!lowered.plan.needs_sync(1));
    }

    #[test]
    fn naive_plan_syncs_everywhere() {
        let plan = SyncPlan::naive(3);
        assert!(plan.needs_sync(0) && plan.needs_sync(1) && plan.needs_sync(2));
        assert_eq!(plan.elided_sites(), 0);
        assert_eq!(plan.sites(), 3);
        // Out-of-range sites conservatively sync.
        assert!(plan.needs_sync(99));
    }

    #[test]
    fn lowering_records_pass_statistics() {
        let lowered = lower(&format!(
            "{ARRAY_CLASS}\
             main local s : separate STORE local a : INTEGER local i : INTEGER do \
               create s separate s do \
                 s.fill(16) a := s.size() i := 0 \
                 while i < a loop i := i + s.item(i) end \
               end end"
        ));
        assert_eq!(lowered.report.syncs_before, lowered.naive.count_syncs());
        assert_eq!(lowered.report.syncs_after, lowered.coalesced.count_syncs());
        assert!(lowered.report.analysis_iterations >= 1);
    }
}
