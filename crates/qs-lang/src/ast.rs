//! The abstract syntax tree of the surface language.
//!
//! The language is deliberately small but covers everything the paper's
//! programming model needs to be demonstrated end to end:
//!
//! * classes with attributes, asynchronous **commands** and synchronous
//!   **queries** (optionally guarded by `require`/`ensure` contracts);
//! * a `main` routine running on the root client thread;
//! * `separate x, y do … end` blocks reserving one or several handlers;
//! * `create x` spawning a new handler that owns a fresh object;
//! * commands `x.f(args)` (asynchronous, the `call` rule) and queries
//!   `x.f(args)` in expression position (synchronous, the `query` rule);
//! * integers, booleans and integer arrays, `if`/`while`, `print`.

use crate::error::Pos;

/// A type annotation in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `INTEGER`
    Integer,
    /// `BOOLEAN`
    Boolean,
    /// `ARRAY` — a one-dimensional array of integers.
    Array,
    /// `separate C` — a reference to an object of class `C` on its own
    /// handler.  In this language every class-typed variable is separate,
    /// mirroring the paper's focus; the keyword is still required so that the
    /// programs read like SCOOP.
    SeparateClass(String),
}

impl TypeExpr {
    /// Whether this type denotes a handler-owned object.
    pub fn is_separate(&self) -> bool {
        matches!(self, TypeExpr::SeparateClass(_))
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division)
    Div,
    /// `mod`
    Mod,
    /// `=`
    Eq,
    /// `/=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Boolean negation.
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Pos),
    /// Boolean literal.
    Bool(bool, Pos),
    /// A variable: local, parameter or (inside a routine) an attribute.
    Var(String, Pos),
    /// The `Result` pseudo-variable inside a query body.
    Result(Pos),
    /// Array indexing `a[i]`.
    Index {
        /// The array-valued expression.
        array: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
        /// Source position of the `[`.
        pos: Pos,
    },
    /// `array(n)` — a fresh zero-filled integer array of length `n`.
    NewArray {
        /// Length expression.
        len: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `length(a)` — the number of elements of an array expression.
    Length {
        /// The array expression.
        array: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `random(n)` — a pseudo-random integer in `[0, n)`, seeded
    /// deterministically per run (used by the randmat-style demos).
    Random {
        /// Upper bound expression.
        bound: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// A synchronous **query call** on a separate object: `x.f(args)` in
    /// expression position.  This is the paper's `query` rule.
    QueryCall {
        /// The separate variable the query targets.
        target: String,
        /// The routine name.
        routine: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Source position of the call.
        pos: Pos,
        /// A unique identifier assigned by the parser; used to connect the
        /// call site with the IR instruction the lowering produces for it so
        /// the static sync-coalescing decision can be applied at this site.
        site: usize,
    },
    /// A synchronous call to a routine of the *current* object, inside a
    /// routine body (guarantee 1 of §2.2: non-separate calls are immediate).
    LocalCall {
        /// The routine name.
        routine: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source position of the operator.
        pos: Pos,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
}

impl Expr {
    /// The source position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p)
            | Expr::Bool(_, p)
            | Expr::Var(_, p)
            | Expr::Result(p)
            | Expr::Index { pos: p, .. }
            | Expr::NewArray { pos: p, .. }
            | Expr::Length { pos: p, .. }
            | Expr::Random { pos: p, .. }
            | Expr::QueryCall { pos: p, .. }
            | Expr::LocalCall { pos: p, .. }
            | Expr::Binary { pos: p, .. }
            | Expr::Unary { pos: p, .. } => *p,
        }
    }
}

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A plain variable (local, parameter, attribute or `Result`).
    Var(String, Pos),
    /// The `Result` pseudo-variable.
    Result(Pos),
    /// An element of an array-valued variable: `a[i] := …`.
    Index {
        /// The array variable name.
        array: String,
        /// The index expression.
        index: Expr,
        /// Source position.
        pos: Pos,
    },
}

impl LValue {
    /// The source position of the assignment target.
    pub fn pos(&self) -> Pos {
        match self {
            LValue::Var(_, p) | LValue::Result(p) | LValue::Index { pos: p, .. } => *p,
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `lvalue := expr`
    Assign {
        /// Target.
        target: LValue,
        /// Value.
        value: Expr,
    },
    /// `create x` — spawns a handler owning a fresh, default-initialised
    /// object of the class of `x`.
    Create {
        /// The separate variable being created.
        var: String,
        /// Source position.
        pos: Pos,
    },
    /// `separate x, y do … end` — reserves the listed handlers for the block.
    /// With the `read` modifier (`separate read x, y do … end`) the handlers
    /// are reserved in **shared read mode**: any number of clients hold them
    /// concurrently, only queries are allowed, and the checker rejects
    /// commands on the targets at compile time.
    SeparateBlock {
        /// The separate variables reserved by the block.
        targets: Vec<String>,
        /// Whether the block was declared `separate read` (shared-read
        /// reservation; commands on the targets are a compile-time error).
        read: bool,
        /// The block body.
        body: Vec<Stmt>,
        /// Source position of the `separate` keyword.
        pos: Pos,
    },
    /// An asynchronous **command call** on a separate object (the `call`
    /// rule): `x.f(args)` in statement position.
    CommandCall {
        /// The separate variable the command targets.
        target: String,
        /// The routine name.
        routine: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// A synchronous call to a command of the current object (routine bodies
    /// only).
    LocalCommand {
        /// The routine name.
        routine: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `if c then … elseif c2 then … else … end`
    If {
        /// The `(condition, branch)` arms in order; the first true condition
        /// wins.
        arms: Vec<(Expr, Vec<Stmt>)>,
        /// The `else` branch (empty when absent).
        otherwise: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `while c loop … end`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `print(expr)` or `print("text")`.
    Print {
        /// What to print.
        value: PrintArg,
        /// Source position.
        pos: Pos,
    },
}

/// Argument of a `print` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum PrintArg {
    /// A string literal.
    Text(String),
    /// An expression whose value is printed.
    Value(Expr),
}

/// A declared name with a type (parameter, local or attribute).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decl {
    /// The declared name.
    pub name: String,
    /// Its type.
    pub ty: TypeExpr,
    /// Where it was declared.
    pub pos: Pos,
}

/// Whether a routine is an asynchronous command or a synchronous query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutineKind {
    /// A command: no result, called asynchronously on separate targets.
    Command,
    /// A query: has a result, called synchronously.
    Query,
}

/// A routine (command or query) of a class.
#[derive(Debug, Clone, PartialEq)]
pub struct Routine {
    /// Command or query.
    pub kind: RoutineKind,
    /// The routine name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Decl>,
    /// Result type (queries only).
    pub result: Option<TypeExpr>,
    /// Local variable declarations.
    pub locals: Vec<Decl>,
    /// `require` precondition (checked/waited on before the body runs).
    pub require: Option<Expr>,
    /// `ensure` postcondition (asserted after the body runs).
    pub ensure: Option<Expr>,
    /// The body.
    pub body: Vec<Stmt>,
    /// Source position of the routine header.
    pub pos: Pos,
}

/// A class declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// The class name.
    pub name: String,
    /// Attribute declarations.
    pub attributes: Vec<Decl>,
    /// Routines.
    pub routines: Vec<Routine>,
    /// Source position of the `class` keyword.
    pub pos: Pos,
}

/// The `main` routine: locals plus a body executed on the root client thread.
#[derive(Debug, Clone, PartialEq)]
pub struct MainDecl {
    /// Local variable declarations.
    pub locals: Vec<Decl>,
    /// The body.
    pub body: Vec<Stmt>,
    /// Source position.
    pub pos: Pos,
}

/// A whole program: classes plus `main`.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The class declarations, in source order.
    pub classes: Vec<ClassDecl>,
    /// The main routine.
    pub main: MainDecl,
}

impl Program {
    /// Looks up a class by name.
    pub fn class(&self, name: &str) -> Option<&ClassDecl> {
        self.classes.iter().find(|c| c.name == name)
    }
}

impl ClassDecl {
    /// Looks up a routine by name.
    pub fn routine(&self, name: &str) -> Option<&Routine> {
        self.routines.iter().find(|r| r.name == name)
    }

    /// Looks up an attribute by name.
    pub fn attribute(&self, name: &str) -> Option<&Decl> {
        self.attributes.iter().find(|a| a.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_expr_separateness() {
        assert!(TypeExpr::SeparateClass("ACCOUNT".into()).is_separate());
        assert!(!TypeExpr::Integer.is_separate());
        assert!(!TypeExpr::Array.is_separate());
    }

    #[test]
    fn expr_positions_are_reachable() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Int(1, Pos::new(1, 1))),
            rhs: Box::new(Expr::Int(2, Pos::new(1, 5))),
            pos: Pos::new(1, 3),
        };
        assert_eq!(e.pos(), Pos::new(1, 3));
    }

    #[test]
    fn program_lookup_helpers() {
        let class = ClassDecl {
            name: "C".into(),
            attributes: vec![Decl {
                name: "n".into(),
                ty: TypeExpr::Integer,
                pos: Pos::default(),
            }],
            routines: vec![],
            pos: Pos::default(),
        };
        let program = Program {
            classes: vec![class],
            main: MainDecl {
                locals: vec![],
                body: vec![],
                pos: Pos::default(),
            },
        };
        assert!(program.class("C").is_some());
        assert!(program.class("D").is_none());
        assert!(program.class("C").unwrap().attribute("n").is_some());
        assert!(program.class("C").unwrap().routine("missing").is_none());
    }
}
