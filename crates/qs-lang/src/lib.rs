//! # qs-lang — a miniature SCOOP surface language on top of the SCOOP/Qs runtime
//!
//! The paper's system is a compiler (Haskell, targeting LLVM) plus a runtime
//! (C); the `qs-runtime` crate reproduces the runtime and `qs-compiler`
//! reproduces the optimisation pass.  This crate closes the remaining gap by
//! providing a *surface language* in the SCOOP style, so that whole programs —
//! classes, handlers, separate blocks, asynchronous commands, synchronous
//! queries, contracts — can be written as text, checked, lowered through the
//! static sync-coalescing pass and executed on the real runtime:
//!
//! ```
//! use qs_lang::{compile, run_compiled, QueryStrategy};
//! use qs_runtime::Runtime;
//!
//! let program = compile(
//!     "class COUNTER\n\
//!        attribute count : INTEGER\n\
//!        command bump(amount: INTEGER) do count := count + amount end\n\
//!        query value : INTEGER do Result := count end\n\
//!      end\n\
//!      main local c : separate COUNTER local v : INTEGER do\n\
//!        create c\n\
//!        separate c do c.bump(3) c.bump(4) v := c.value() end\n\
//!        print(v)\n\
//!      end",
//! ).unwrap();
//!
//! let runtime = Runtime::fully_optimized();
//! let output = run_compiled(&program, &runtime, QueryStrategy::RuntimeManaged).unwrap();
//! assert_eq!(output.printed, vec!["7"]);
//! ```
//!
//! Pipeline: [`token`] → [`parser`] → [`sema`] → ([`lower`] for the static
//! pass) → [`interp`].  The [`programs`] module ships ready-made programs used
//! by the examples, benchmarks and integration tests.

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod interp;
pub mod lower;
pub mod parser;
pub mod programs;
pub mod sema;
pub mod token;
pub mod value;

pub use error::{LangError, LangResult, Phase, Pos};
pub use interp::{run_program, QueryStrategy, RunOutput};
pub use lower::{build_cfg, lower_main, LoweredMain, SyncPlan};
pub use parser::{parse_expr, parse_program};
pub use sema::{check_program, CheckedProgram, ClassInfo, RoutineSig, Type};
pub use token::{lex, Token, TokenKind};
pub use value::{ObjectState, SharedRng, Value};

/// A fully front-end-processed program: checked and lowered.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The checked program (class tables, handler variables, query sites).
    pub checked: CheckedProgram,
    /// The lowered `main` with the static sync-coalescing results.
    pub lowered: LoweredMain,
}

impl Compiled {
    /// The query strategy derived from the static sync-coalescing pass.
    pub fn static_strategy(&self) -> QueryStrategy {
        QueryStrategy::StaticPlan(self.lowered.plan.clone())
    }

    /// Diagnostics emitted by the effect-inference pass (notes for inferred
    /// read-only blocks, warnings for near-misses).
    pub fn diagnostics(&self) -> &[qs_compiler::Diagnostic] {
        &self.checked.diagnostics
    }

    /// The machine-readable JSON dump of [`Self::diagnostics`].
    pub fn diagnostics_json(&self) -> String {
        qs_compiler::diagnostics_to_json(&self.checked.diagnostics)
    }
}

/// Runs the whole front end on `source`: lex, parse, check, lower, optimise.
pub fn compile(source: &str) -> LangResult<Compiled> {
    let program = parse_program(source)?;
    let checked = check_program(program)?;
    let lowered = lower_main(&checked);
    Ok(Compiled { checked, lowered })
}

/// Executes a compiled program on `runtime` with the chosen query strategy.
pub fn run_compiled(
    compiled: &Compiled,
    runtime: &qs_runtime::Runtime,
    strategy: QueryStrategy,
) -> LangResult<RunOutput> {
    run_program(&compiled.checked, runtime, strategy)
}

/// Convenience: compile and run `source` in one call.
pub fn run_source(
    source: &str,
    runtime: &qs_runtime::Runtime,
    strategy: QueryStrategy,
) -> LangResult<RunOutput> {
    let compiled = compile(source)?;
    run_compiled(&compiled, runtime, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_runtime::Runtime;

    #[test]
    fn compile_reports_errors_from_every_phase() {
        assert_eq!(compile("main do x := # end").unwrap_err().phase, Phase::Lex);
        assert_eq!(compile("main do x := end").unwrap_err().phase, Phase::Parse);
        assert_eq!(
            compile("main do x := 1 end").unwrap_err().phase,
            Phase::Check
        );
    }

    #[test]
    fn run_source_round_trips() {
        let runtime = Runtime::fully_optimized();
        let output = run_source(
            "main local i : INTEGER do i := 2 + 3 print(i) end",
            &runtime,
            QueryStrategy::RuntimeManaged,
        )
        .unwrap();
        assert_eq!(output.printed, vec!["5"]);
    }

    #[test]
    fn static_strategy_matches_lowered_plan() {
        let compiled = compile(
            "class C attribute n : INTEGER \
               command set(v: INTEGER) do n := v end \
               query get : INTEGER do Result := n end \
             end \
             main local c : separate C local a : INTEGER local b : INTEGER do \
               create c separate c do c.set(1) a := c.get() b := c.get() end end",
        )
        .unwrap();
        let QueryStrategy::StaticPlan(plan) = compiled.static_strategy() else {
            panic!("expected a static plan");
        };
        assert!(plan.needs_sync(0));
        assert!(!plan.needs_sync(1));
    }
}
