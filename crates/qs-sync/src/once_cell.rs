//! A write-once, read-many cell used for lazily published handler state.
//!
//! Handlers publish their result slots and statistics blocks exactly once;
//! clients read them many times.  [`OnceValue`] provides that pattern without
//! taking a lock on the read path.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::Backoff;

const UNINIT: u8 = 0;
const WRITING: u8 = 1;
const INIT: u8 = 2;

/// A cell that can be written exactly once and read any number of times.
///
/// ```
/// use qs_sync::OnceValue;
/// let cell = OnceValue::new();
/// assert!(cell.set(10).is_ok());
/// assert!(cell.set(11).is_err());
/// assert_eq!(cell.get(), Some(&10));
/// ```
pub struct OnceValue<T> {
    state: AtomicU8,
    value: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: the state machine serialises the single write before any read.
unsafe impl<T: Send> Send for OnceValue<T> {}
unsafe impl<T: Send + Sync> Sync for OnceValue<T> {}

impl<T> Default for OnceValue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OnceValue<T> {
    /// Creates an empty cell.
    pub const fn new() -> Self {
        OnceValue {
            state: AtomicU8::new(UNINIT),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    /// Attempts to store `value`; fails (returning it) if already set.
    pub fn set(&self, value: T) -> Result<(), T> {
        match self
            .state
            .compare_exchange(UNINIT, WRITING, Ordering::Acquire, Ordering::Relaxed)
        {
            Ok(_) => {
                // SAFETY: we won the CAS, so we are the unique writer.
                unsafe { (*self.value.get()).write(value) };
                self.state.store(INIT, Ordering::Release);
                Ok(())
            }
            Err(_) => Err(value),
        }
    }

    /// Returns the stored value, if initialised.
    pub fn get(&self) -> Option<&T> {
        if self.state.load(Ordering::Acquire) == INIT {
            // SAFETY: INIT published with release ordering guarantees the
            // write is visible and no further writes occur.
            Some(unsafe { (*self.value.get()).assume_init_ref() })
        } else {
            None
        }
    }

    /// Blocks (spinning/yielding) until the value is available and returns it.
    pub fn wait(&self) -> &T {
        let backoff = Backoff::new();
        loop {
            if let Some(v) = self.get() {
                return v;
            }
            backoff.snooze();
        }
    }

    /// Returns `true` if the cell has been initialised.
    pub fn is_set(&self) -> bool {
        self.state.load(Ordering::Acquire) == INIT
    }
}

impl<T> Drop for OnceValue<T> {
    fn drop(&mut self) {
        if *self.state.get_mut() == INIT {
            // SAFETY: value is initialised and we hold exclusive access.
            unsafe { (*self.value.get()).assume_init_drop() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn set_and_get() {
        let c = OnceValue::new();
        assert!(c.get().is_none());
        assert!(!c.is_set());
        c.set(String::from("x")).unwrap();
        assert_eq!(c.get().map(String::as_str), Some("x"));
        assert!(c.is_set());
    }

    #[test]
    fn second_set_fails_and_returns_value() {
        let c = OnceValue::new();
        c.set(1).unwrap();
        assert_eq!(c.set(2), Err(2));
        assert_eq!(c.get(), Some(&1));
    }

    #[test]
    fn only_one_concurrent_setter_wins() {
        let c = Arc::new(OnceValue::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || c.set(i).is_ok()));
        }
        let wins: usize = handles
            .into_iter()
            .map(|h| h.join().unwrap() as usize)
            .sum();
        assert_eq!(wins, 1);
        assert!(c.get().is_some());
    }

    #[test]
    fn wait_blocks_until_set() {
        let c = Arc::new(OnceValue::new());
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || *c2.wait());
        thread::sleep(std::time::Duration::from_millis(10));
        c.set(99).unwrap();
        assert_eq!(t.join().unwrap(), 99);
    }

    #[test]
    fn drop_releases_value() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let c = OnceValue::new();
            assert!(c.set(D).is_ok());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }
}
