//! A counting wait group (latch) used to join groups of handlers/workers.
//!
//! The benchmark harness and the executor use it to wait for all workers of a
//! parallel phase to finish, mirroring the join at the end of the Cowichan
//! kernels (§4.1.1).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A reusable countdown latch.
///
/// ```
/// use qs_sync::WaitGroup;
/// use std::sync::Arc;
///
/// let wg = Arc::new(WaitGroup::new());
/// for _ in 0..4 {
///     wg.add(1);
///     let wg = Arc::clone(&wg);
///     std::thread::spawn(move || wg.done());
/// }
/// wg.wait();
/// ```
#[derive(Debug)]
pub struct WaitGroup {
    count: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl Default for WaitGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitGroup {
    /// Creates a wait group with a count of zero.
    pub fn new() -> Self {
        WaitGroup {
            count: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// Creates a wait group with an initial count of `n`.
    pub fn with_count(n: usize) -> Self {
        let wg = Self::new();
        wg.count.store(n, Ordering::Relaxed);
        wg
    }

    /// Adds `n` to the outstanding count.
    pub fn add(&self, n: usize) {
        self.count.fetch_add(n, Ordering::AcqRel);
    }

    /// Decrements the outstanding count by one, waking waiters at zero.
    pub fn done(&self) {
        let prev = self.count.fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "WaitGroup::done called more times than add");
        if prev == 1 {
            // Take the lock so a waiter cannot miss the notification between
            // its count check and its condvar wait.
            let _guard = self.lock.lock().unwrap();
            self.cond.notify_all();
        }
    }

    /// Returns the current outstanding count.
    pub fn count(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// Blocks until the outstanding count reaches zero.
    pub fn wait(&self) {
        if self.count.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut guard = self.lock.lock().unwrap();
        while self.count.load(Ordering::Acquire) != 0 {
            guard = self.cond.wait(guard).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn zero_count_does_not_block() {
        WaitGroup::new().wait();
    }

    #[test]
    fn waits_for_all_workers() {
        let wg = Arc::new(WaitGroup::new());
        let progress = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            wg.add(1);
            let wg = Arc::clone(&wg);
            let progress = Arc::clone(&progress);
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(5));
                progress.fetch_add(1, Ordering::SeqCst);
                wg.done();
            });
        }
        wg.wait();
        assert_eq!(progress.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn with_count_prearms_the_latch() {
        let wg = Arc::new(WaitGroup::with_count(2));
        assert_eq!(wg.count(), 2);
        let wg2 = Arc::clone(&wg);
        let t = thread::spawn(move || {
            wg2.done();
            wg2.done();
        });
        wg.wait();
        t.join().unwrap();
        assert_eq!(wg.count(), 0);
    }

    #[test]
    #[should_panic(expected = "more times than add")]
    fn unbalanced_done_panics() {
        let wg = WaitGroup::new();
        wg.done();
    }

    #[test]
    fn reusable_after_reaching_zero() {
        let wg = Arc::new(WaitGroup::new());
        for _round in 0..3 {
            for _ in 0..4 {
                wg.add(1);
                let wg = Arc::clone(&wg);
                thread::spawn(move || wg.done());
            }
            wg.wait();
            assert_eq!(wg.count(), 0);
        }
    }
}
