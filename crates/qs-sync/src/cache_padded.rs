//! Cache-line padding for hot shared fields.
//!
//! The head and tail indices of the SPSC private queue (§3.1 of the paper)
//! are written by different threads; placing them on the same cache line
//! causes false sharing that dominates the cost of enqueueing a call.  The
//! queue crates wrap such fields in [`CachePadded`].

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to (at least) the size of a cache line.
///
/// 128 bytes is used rather than 64 because modern Intel parts prefetch two
/// lines at a time (spatial prefetcher) and Apple/ARM big cores use 128-byte
/// lines; over-aligning is harmless, under-aligning is not.
#[derive(Default, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line-aligned container.
    #[inline]
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consumes the wrapper, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::mem;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn alignment_is_at_least_128() {
        assert!(mem::align_of::<CachePadded<u8>>() >= 128);
        assert!(mem::align_of::<CachePadded<AtomicUsize>>() >= 128);
    }

    #[test]
    fn size_is_at_least_one_line() {
        assert!(mem::size_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn deref_round_trips() {
        let mut p = CachePadded::new(41usize);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn two_padded_fields_do_not_share_a_line() {
        struct Pair {
            a: CachePadded<AtomicUsize>,
            b: CachePadded<AtomicUsize>,
        }
        let pair = Pair {
            a: CachePadded::new(AtomicUsize::new(0)),
            b: CachePadded::new(AtomicUsize::new(0)),
        };
        let pa = &pair.a as *const _ as usize;
        let pb = &pair.b as *const _ as usize;
        assert!(pa.abs_diff(pb) >= 128);
    }

    #[test]
    fn debug_and_from_work() {
        let p: CachePadded<i32> = 7.into();
        assert_eq!(format!("{p:?}"), "CachePadded(7)");
    }
}
