//! A test-and-test-and-set spinlock with exponential backoff.
//!
//! §3.3 of the paper: "Currently, the multiple reservation implementation
//! uses one spinlock for every handler to maintain the ordering guarantees.
//! [...] These spinlocks were not found to decrease performance."  The
//! runtime uses this lock to make multi-handler reservations atomic; critical
//! sections are a handful of queue enqueues, so a spinlock is appropriate.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

use crate::Backoff;

/// A mutual-exclusion spinlock protecting a value of type `T`.
///
/// ```
/// use qs_sync::SpinLock;
/// let lock = SpinLock::new(0u64);
/// *lock.lock() += 1;
/// assert_eq!(*lock.lock(), 1);
/// ```
pub struct SpinLock<T: ?Sized> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock provides exclusive access to `T`; sending the lock only
// requires `T: Send`, sharing it requires `T: Send` as well (a `&SpinLock`
// can be used to move a `T` out via `lock()` + `mem::replace`).
unsafe impl<T: ?Sized + Send> Send for SpinLock<T> {}
unsafe impl<T: ?Sized + Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Creates an unlocked spinlock holding `value`.
    pub const fn new(value: T) -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> SpinLock<T> {
    /// Acquires the lock, spinning (with backoff) until it is available.
    pub fn lock(&self) -> SpinLockGuard<'_, T> {
        let backoff = Backoff::new();
        loop {
            // Test-and-test-and-set: only attempt the RMW when the lock looks
            // free, so contended waiters spin on a shared (non-invalidating)
            // cache line.
            if !self.locked.load(Ordering::Relaxed)
                && self
                    .locked
                    .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return SpinLockGuard { lock: self };
            }
            backoff.snooze();
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<SpinLockGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinLockGuard { lock: self })
        } else {
            None
        }
    }

    /// Returns `true` if the lock is currently held by some thread.
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    /// Returns a mutable reference to the value without locking.
    ///
    /// This is safe because `&mut self` guarantees exclusive access.
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: Default> Default for SpinLock<T> {
    fn default() -> Self {
        SpinLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for SpinLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("SpinLock").field("value", &&*guard).finish(),
            None => f.write_str("SpinLock { <locked> }"),
        }
    }
}

/// RAII guard returned by [`SpinLock::lock`]; releases the lock on drop.
pub struct SpinLockGuard<'a, T: ?Sized> {
    lock: &'a SpinLock<T>,
}

impl<T: ?Sized> Deref for SpinLockGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: holding the guard means the lock flag is set and no other
        // guard exists.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for SpinLockGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above, plus `&mut self` prevents aliasing through this
        // guard.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for SpinLockGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for SpinLockGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn basic_mutation() {
        let lock = SpinLock::new(vec![1, 2, 3]);
        lock.lock().push(4);
        assert_eq!(*lock.lock(), vec![1, 2, 3, 4]);
        assert_eq!(lock.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = SpinLock::new(());
        let guard = lock.try_lock().unwrap();
        assert!(lock.try_lock().is_none());
        assert!(lock.is_locked());
        drop(guard);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut lock = SpinLock::new(5);
        *lock.get_mut() = 6;
        assert_eq!(*lock.lock(), 6);
    }

    #[test]
    fn debug_formats() {
        let lock = SpinLock::new(1);
        assert!(format!("{lock:?}").contains('1'));
        let _g = lock.lock();
        assert!(format!("{lock:?}").contains("locked"));
    }

    #[test]
    fn counter_is_race_free_under_contention() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        let lock = Arc::new(SpinLock::new(0usize));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            handles.push(thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    *lock.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), THREADS * PER_THREAD);
    }

    #[test]
    fn guard_release_is_observed_by_other_threads() {
        // Publish a value under the lock, observe it from another thread.
        let lock = Arc::new(SpinLock::new(None::<String>));
        let l2 = Arc::clone(&lock);
        let writer = thread::spawn(move || {
            *l2.lock() = Some("published".to_string());
        });
        writer.join().unwrap();
        assert_eq!(lock.lock().as_deref(), Some("published"));
    }
}
