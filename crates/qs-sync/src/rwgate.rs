//! Reader–writer gate guarding a handler-owned object.
//!
//! Shared-read reservations let many clients execute queries against one
//! handler's object concurrently.  That is sound only while no command runs:
//! the [`ReadGate`] is the synchronisation point.  Readers (clients holding a
//! read reservation) take the gate in *read* mode; every `&mut` access to the
//! object — the handler main loop applying a batch, or a client-executed
//! query under an exclusive reservation — takes it in *write* mode.
//!
//! The design goals, in order:
//!
//! 1. **Free when unused.** A handler with no read reservations must pay one
//!    uncontended CAS per batch, nothing more — the exclusive-only fast paths
//!    of the runtime must not regress.
//! 2. **Writer preference.** A stream of readers must not starve the handler:
//!    once a writer announces itself, new readers are refused until it has
//!    run, so the reader population can only shrink while a writer waits.
//!    This also makes the deadlock detector's writer-blocked-behind-readers
//!    edges sound: the blocking set never grows.
//! 3. **No blocking inside the gate.** All acquisition entry points are
//!    `try_`-shaped plus an explicit waiter list ([`enlist`](ReadGate::enlist)),
//!    so callers choose how to wait — parking a client thread, or re-arming a
//!    pooled handler through its scheduler hook.
//!
//! The state packs into one `AtomicU64`: bits 0..32 count active readers,
//! bit 32 flags an active writer, bits 33.. count announced (waiting)
//! writers.  A single load classifies the gate; acquisition is a single CAS.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::parker::Parker;
use crate::spinlock::SpinLock;

/// Active-reader count mask (bits 0..32).
const READERS_MASK: u64 = (1 << 32) - 1;
/// Set while a writer holds the gate.
const WRITER_ACTIVE: u64 = 1 << 32;
/// One announced (waiting) writer; the count occupies bits 33 and up.
const WRITER_WAITING_UNIT: u64 = 1 << 33;

/// How a party blocked on the gate wants to be woken.
#[derive(Clone)]
pub enum GateWake {
    /// A client thread parked on this [`Parker`]; wake it.
    Parker(Arc<Parker>),
    /// Arbitrary callback — e.g. re-arm a pooled handler via its scheduler
    /// wake hook.  Must be cheap and must not block.
    Hook(Arc<dyn Fn() + Send + Sync>),
}

impl GateWake {
    fn fire(&self) {
        match self {
            GateWake::Parker(parker) => parker.wake(),
            GateWake::Hook(hook) => hook(),
        }
    }
}

struct GateWaiter {
    writer: bool,
    wake: GateWake,
}

/// A reader-counting, writer-preferring gate over one object.
///
/// See the [module docs](self) for the protocol.  The lost-wake discipline is
/// the usual one: a blocked party *first* [`enlist`](ReadGate::enlist)s its
/// waker, *then* re-tries acquisition; a releasing party *first* publishes
/// the new state (with `Release` ordering), *then* drains and fires the
/// waiter list.  Either the retry sees the new state or the waker sees the
/// enlisted entry.  Wakes may be spurious (the state can be re-taken before
/// the woken party retries); callers loop.
pub struct ReadGate {
    state: AtomicU64,
    waiters: SpinLock<Vec<GateWaiter>>,
}

impl Default for ReadGate {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadGate {
    /// Creates an open gate: no readers, no writer.
    pub fn new() -> Self {
        ReadGate {
            state: AtomicU64::new(0),
            waiters: SpinLock::new(Vec::new()),
        }
    }

    /// Tries to take the gate in read mode.  Fails (returning `false`) while
    /// a writer is active *or announced* — writer preference means readers
    /// queue behind any waiting writer.
    pub fn try_read(&self) -> bool {
        let mut current = self.state.load(Ordering::Relaxed);
        loop {
            if current & !READERS_MASK != 0 {
                return false;
            }
            debug_assert!(current & READERS_MASK < READERS_MASK, "reader overflow");
            match self.state.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // `a` = reader count after this acquisition.
                    qs_obs::trace(
                        qs_obs::TraceKind::ReadAcquire,
                        (current & READERS_MASK) + 1,
                        0,
                    );
                    return true;
                }
                Err(now) => current = now,
            }
        }
    }

    /// Releases one read hold.  The last reader out wakes enlisted waiters
    /// so an announced writer can proceed.
    pub fn end_read(&self) {
        let prev = self.state.fetch_sub(1, Ordering::Release);
        debug_assert!(prev & READERS_MASK > 0, "end_read without a read hold");
        // `a` = reader count after this release.
        qs_obs::trace(qs_obs::TraceKind::ReadRelease, (prev & READERS_MASK) - 1, 0);
        if prev & READERS_MASK == 1 {
            self.wake_waiters();
        }
    }

    /// Tries to take the gate in write mode: succeeds iff no reader and no
    /// other writer is active.  Announced-writer bits do not block this —
    /// any writer may win the CAS, announced or not — so the uncontended
    /// exclusive path stays a single CAS.
    pub fn try_write(&self) -> bool {
        let mut current = self.state.load(Ordering::Relaxed);
        loop {
            if current & (READERS_MASK | WRITER_ACTIVE) != 0 {
                return false;
            }
            match self.state.compare_exchange_weak(
                current,
                current | WRITER_ACTIVE,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => current = now,
            }
        }
    }

    /// Announces a waiting writer: from here until
    /// [`retract_writer`](ReadGate::retract_writer) (or the writer gets in
    /// and [`end_write`](ReadGate::end_write)s after winning), new readers
    /// are refused, so the active-reader set can only shrink.
    pub fn announce_writer(&self) {
        self.state.fetch_add(WRITER_WAITING_UNIT, Ordering::AcqRel);
    }

    /// Withdraws one [`announce_writer`](ReadGate::announce_writer).  Wakes
    /// waiters: readers refused purely because of this announcement can now
    /// get in.
    pub fn retract_writer(&self) {
        let prev = self.state.fetch_sub(WRITER_WAITING_UNIT, Ordering::AcqRel);
        debug_assert!(prev >= WRITER_WAITING_UNIT, "retract without announce");
        self.wake_waiters();
    }

    /// Releases the write hold and wakes all enlisted waiters (readers and
    /// writers alike; whoever retries first wins).
    pub fn end_write(&self) {
        let prev = self.state.fetch_and(!WRITER_ACTIVE, Ordering::Release);
        debug_assert!(prev & WRITER_ACTIVE != 0, "end_write without a write hold");
        self.wake_waiters();
    }

    /// Takes the gate in write mode, spinning/parking the calling thread
    /// until it succeeds.  Convenience for dedicated (thread-per-handler)
    /// paths where blocking the OS thread is fine.
    pub fn write(&self) {
        if self.try_write() {
            return;
        }
        self.announce_writer();
        let parker = Arc::new(Parker::new());
        loop {
            if self.try_write() {
                break;
            }
            self.enlist(true, GateWake::Parker(Arc::clone(&parker)));
            if self.try_write() {
                break;
            }
            parker.park_until(|| self.writable());
        }
        self.retract_writer();
    }

    /// Registers a waiter to be woken at the next release event.  One-shot:
    /// the entry is consumed (or becomes stale) at the next wake round, so
    /// blocked parties re-enlist on every failed retry.
    pub fn enlist(&self, writer: bool, wake: GateWake) {
        self.waiters.lock().push(GateWaiter { writer, wake });
    }

    fn wake_waiters(&self) {
        let drained = std::mem::take(&mut *self.waiters.lock());
        for waiter in drained {
            let _ = waiter.writer;
            waiter.wake.fire();
        }
    }

    /// Number of active readers right now (racy snapshot).
    pub fn readers(&self) -> u32 {
        (self.state.load(Ordering::Acquire) & READERS_MASK) as u32
    }

    /// `true` if a write acquisition would succeed right now (racy).
    pub fn writable(&self) -> bool {
        self.state.load(Ordering::Acquire) & (READERS_MASK | WRITER_ACTIVE) == 0
    }

    /// `true` while a writer is announced or active — the signal that
    /// readers are (or are about to be) refused (racy snapshot).
    pub fn writer_contended(&self) -> bool {
        self.state.load(Ordering::Acquire) & !READERS_MASK != 0
    }
}

impl std::fmt::Debug for ReadGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.load(Ordering::Relaxed);
        f.debug_struct("ReadGate")
            .field("readers", &(state & READERS_MASK))
            .field("writer_active", &(state & WRITER_ACTIVE != 0))
            .field("writers_waiting", &(state / WRITER_WAITING_UNIT))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn readers_share_writers_exclude() {
        let gate = ReadGate::new();
        assert!(gate.try_read());
        assert!(gate.try_read());
        assert_eq!(gate.readers(), 2);
        assert!(!gate.try_write(), "readers block writers");
        gate.end_read();
        assert!(!gate.try_write());
        gate.end_read();
        assert!(gate.try_write());
        assert!(!gate.try_read(), "active writer blocks readers");
        assert!(!gate.try_write(), "writers are exclusive");
        gate.end_write();
        assert!(gate.try_read());
        gate.end_read();
    }

    #[test]
    fn announced_writer_refuses_new_readers() {
        let gate = ReadGate::new();
        assert!(gate.try_read());
        gate.announce_writer();
        assert!(!gate.try_read(), "writer preference");
        assert!(gate.writer_contended());
        gate.end_read();
        assert!(gate.try_write());
        gate.end_write();
        gate.retract_writer();
        assert!(gate.try_read());
        gate.end_read();
        assert!(!gate.writer_contended());
    }

    #[test]
    fn blocking_write_waits_for_readers() {
        let gate = Arc::new(ReadGate::new());
        assert!(gate.try_read());
        let g2 = Arc::clone(&gate);
        let writer = thread::spawn(move || {
            g2.write();
            let got_it = !g2.writable();
            g2.end_write();
            got_it
        });
        thread::sleep(Duration::from_millis(20));
        gate.end_read();
        assert!(writer.join().unwrap());
    }

    #[test]
    fn hook_waiters_fire_on_release() {
        let gate = ReadGate::new();
        let fired = Arc::new(AtomicUsize::new(0));
        assert!(gate.try_read());
        let counter = Arc::clone(&fired);
        gate.enlist(
            true,
            GateWake::Hook(Arc::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })),
        );
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        gate.end_read();
        assert_eq!(fired.load(Ordering::SeqCst), 1, "last reader out wakes");
        // The list is one-shot: a second release round does not re-fire.
        assert!(gate.try_write());
        gate.end_write();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stress_readers_never_overlap_a_writer() {
        let gate = Arc::new(ReadGate::new());
        let in_write = Arc::new(AtomicUsize::new(0));
        let violations = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for _ in 0..4 {
            let gate = Arc::clone(&gate);
            let in_write = Arc::clone(&in_write);
            let violations = Arc::clone(&violations);
            threads.push(thread::spawn(move || {
                for _ in 0..20_000 {
                    if gate.try_read() {
                        if in_write.load(Ordering::SeqCst) != 0 {
                            violations.fetch_add(1, Ordering::SeqCst);
                        }
                        gate.end_read();
                    }
                }
            }));
        }
        for _ in 0..2 {
            let gate = Arc::clone(&gate);
            let in_write = Arc::clone(&in_write);
            let violations = Arc::clone(&violations);
            threads.push(thread::spawn(move || {
                for _ in 0..5_000 {
                    gate.write();
                    if in_write.fetch_add(1, Ordering::SeqCst) != 0 {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                    if gate.readers() != 0 {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                    in_write.fetch_sub(1, Ordering::SeqCst);
                    gate.end_write();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(violations.load(Ordering::SeqCst), 0);
        assert!(gate.writable());
    }
}
