//! Single-value rendezvous ("direct handoff") between a handler and a client.
//!
//! §3.2 of the paper describes the final query optimisation: "when the
//! handler finishes synchronizing with a client, it will have no more work to
//! do. Therefore control passes directly from the handler to the client [...]
//! avoiding unnecessary context switching."
//!
//! [`Handoff`] captures that interaction as a reusable one-slot channel: the
//! producer (handler) deposits a value and directly unparks the exact
//! consumer thread (client) that is waiting — no queue, no global scheduler,
//! no lock on the fast path.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::Thread;

use crate::Backoff;

const IDLE: u8 = 0;
const WAITING: u8 = 1;
const READY: u8 = 2;
/// Terminal: the producer will never deposit a value (it dropped the
/// request or unwound before completing).  A waiter must not park forever
/// on it — [`Handoff::wait`] surfaces it as a panic.
const ABANDONED: u8 = 3;

/// A reusable one-slot rendezvous channel.
///
/// At most one consumer waits at a time (in the runtime, the private queue's
/// owning client) and at most one producer completes the handoff (the
/// handler).  The pair may be reused for any number of rounds; rounds are
/// numbered so that a late producer from a previous round can never satisfy a
/// later wait.
///
/// ```
/// use qs_sync::Handoff;
/// use std::sync::Arc;
///
/// let h = Arc::new(Handoff::<u64>::new());
/// let h2 = Arc::clone(&h);
/// let producer = std::thread::spawn(move || h2.complete(7));
/// assert_eq!(h.wait(), 7);
/// producer.join().unwrap();
/// ```
pub struct Handoff<T> {
    state: AtomicU8,
    round: AtomicUsize,
    slot: UnsafeCell<MaybeUninit<T>>,
    waiter: Mutex<Option<Thread>>,
}

// SAFETY: the state machine guarantees exclusive access to `slot`: the
// producer writes it only in the IDLE/WAITING -> READY transition and the
// consumer reads it only after observing READY.
unsafe impl<T: Send> Send for Handoff<T> {}
unsafe impl<T: Send> Sync for Handoff<T> {}

impl<T> Default for Handoff<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Handoff<T> {
    /// Creates an empty handoff slot.
    pub fn new() -> Self {
        Handoff {
            state: AtomicU8::new(IDLE),
            round: AtomicUsize::new(0),
            slot: UnsafeCell::new(MaybeUninit::uninit()),
            waiter: Mutex::new(None),
        }
    }

    /// Deposits `value` and wakes the waiting consumer, if any.
    ///
    /// Must be called at most once per round (i.e. per matching
    /// [`wait`](Handoff::wait)); the runtime guarantees this because each
    /// query enqueues exactly one sync token.
    pub fn complete(&self, value: T) {
        // SAFETY: per the round protocol only one producer writes per round
        // and the consumer does not read until READY is published below.
        unsafe { (*self.slot.get()).write(value) };
        let prev = self.state.swap(READY, Ordering::Release);
        if prev == WAITING {
            if let Some(thread) = self.waiter.lock().unwrap().take() {
                thread.unpark();
            }
        }
    }

    /// Returns `true` if a value has been deposited and not yet consumed.
    pub fn is_ready(&self) -> bool {
        self.state.load(Ordering::Acquire) == READY
    }

    /// Returns `true` once the producer [`abandon`](Handoff::abandon)ed the
    /// handoff: no value will ever arrive and [`wait`](Handoff::wait) would
    /// panic.
    pub fn is_abandoned(&self) -> bool {
        self.state.load(Ordering::Acquire) == ABANDONED
    }

    /// Marks the handoff as never-completing and wakes the waiting
    /// consumer, whose [`wait`](Handoff::wait) then panics instead of
    /// parking forever.
    ///
    /// Called by producer-side guards when the request that was supposed to
    /// [`complete`](Handoff::complete) is dropped unexecuted or unwinds
    /// mid-execution (e.g. a deadlock-broken nested push).  A value already
    /// deposited is never overwritten; abandoning twice is harmless.
    pub fn abandon(&self) {
        let mut current = self.state.load(Ordering::Acquire);
        loop {
            if current == READY || current == ABANDONED {
                return;
            }
            match self.state.compare_exchange(
                current,
                ABANDONED,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(previous) => {
                    if previous == WAITING {
                        if let Some(thread) = self.waiter.lock().unwrap().take() {
                            thread.unpark();
                        }
                    }
                    return;
                }
                Err(now) => current = now,
            }
        }
    }

    /// Waits for the producer and takes the deposited value, resetting the
    /// handoff for the next round.
    ///
    /// # Panics
    ///
    /// Panics if the producer [`abandon`](Handoff::abandon)ed the handoff:
    /// the value will never arrive, and surfacing that beats parking the
    /// consumer forever.
    pub fn wait(&self) -> T {
        let backoff = Backoff::new();
        loop {
            match self.state.load(Ordering::Acquire) {
                READY => break,
                ABANDONED => Self::panic_abandoned(),
                _ => {}
            }
            if backoff.is_completed() {
                self.park_until_ready();
                if self.state.load(Ordering::Acquire) == ABANDONED {
                    Self::panic_abandoned();
                }
                break;
            }
            backoff.snooze();
        }
        // SAFETY: READY was observed with acquire ordering, so the write in
        // `complete` happens-before this read, and the protocol gives the
        // consumer exclusive access now.
        let value = unsafe { (*self.slot.get()).assume_init_read() };
        self.round.fetch_add(1, Ordering::Relaxed);
        self.state.store(IDLE, Ordering::Release);
        value
    }

    fn panic_abandoned() -> ! {
        panic!(
            "handoff abandoned: the producer dropped or failed the request before \
             completing it; the awaited value will never arrive"
        );
    }

    /// [`wait`](Handoff::wait) with a park-site instrumentation hook:
    /// `on_block` runs once, just before the consumer commits to blocking,
    /// and whatever it returns is held for the duration of the wait.
    ///
    /// The runtime uses this to register the wait in its deadlock wait-for
    /// registry (the guard removes the edge when dropped); a handoff whose
    /// value is already deposited takes the ready fast path and never calls
    /// the hook, so un-contended query round-trips stay unregistered.
    pub fn wait_instrumented<G>(&self, on_block: impl FnOnce() -> G) -> T {
        if self.is_ready() {
            return self.wait();
        }
        let _blocked = on_block();
        self.wait()
    }

    fn park_until_ready(&self) {
        loop {
            {
                let mut waiter = self.waiter.lock().unwrap();
                // CAS so a racing `complete`/`abandon` (which transition
                // without taking the lock) is never overwritten.
                match self.state.compare_exchange(
                    IDLE,
                    WAITING,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => *waiter = Some(std::thread::current()),
                    Err(READY) | Err(ABANDONED) => return,
                    Err(_) => *waiter = Some(std::thread::current()),
                }
            }
            loop {
                std::thread::park();
                match self.state.load(Ordering::Acquire) {
                    READY | ABANDONED => return,
                    WAITING => continue, // spurious wake-up
                    _ => break,          // retry registration
                }
            }
        }
    }

    /// Returns the number of completed rounds (mainly for statistics).
    pub fn rounds(&self) -> usize {
        self.round.load(Ordering::Relaxed)
    }
}

impl<T> Drop for Handoff<T> {
    fn drop(&mut self) {
        // A value that was deposited but never consumed must still be dropped.
        if *self.state.get_mut() == READY {
            // SAFETY: READY means the slot holds an initialised value and no
            // consumer will read it (we have `&mut self`).
            unsafe { (*self.slot.get()).assume_init_drop() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn complete_then_wait() {
        let h = Handoff::new();
        h.complete(42u32);
        assert!(h.is_ready());
        assert_eq!(h.wait(), 42);
        assert!(!h.is_ready());
        assert_eq!(h.rounds(), 1);
    }

    #[test]
    fn wait_blocks_for_producer() {
        let h = Arc::new(Handoff::<String>::new());
        let h2 = Arc::clone(&h);
        let producer = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            h2.complete("hello".to_string());
        });
        assert_eq!(h.wait(), "hello");
        producer.join().unwrap();
    }

    #[test]
    fn reusable_for_many_rounds() {
        let h = Arc::new(Handoff::<usize>::new());
        let h2 = Arc::clone(&h);
        let rounds = 10_000;
        let producer = thread::spawn(move || {
            for i in 0..rounds {
                // Wait for the slot to be free before the next round.
                while h2.is_ready() {
                    std::hint::spin_loop();
                }
                h2.complete(i);
            }
        });
        for i in 0..rounds {
            assert_eq!(h.wait(), i);
        }
        producer.join().unwrap();
        assert_eq!(h.rounds(), rounds);
    }

    #[test]
    fn abandonment_wakes_and_panics_the_waiter_instead_of_hanging() {
        // A parked waiter is released by `abandon` and panics.
        let h = Arc::new(Handoff::<u32>::new());
        let h2 = Arc::clone(&h);
        let waiter = thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h2.wait()))
        });
        thread::sleep(Duration::from_millis(30));
        assert!(!h.is_abandoned());
        h.abandon();
        let result = waiter.join().unwrap();
        assert!(result.is_err(), "abandoned wait must panic, not hang");
        assert!(h.is_abandoned());
        assert!(!h.is_ready());
        // Abandoning twice is harmless; a fresh wait panics immediately.
        h.abandon();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.wait())).is_err());

        // A deposited value is never overwritten by a late abandon.
        let h = Handoff::new();
        h.complete(9u32);
        h.abandon();
        assert!(h.is_ready());
        assert_eq!(h.wait(), 9);
    }

    #[test]
    fn wait_instrumented_skips_the_hook_when_ready() {
        use std::sync::atomic::AtomicUsize;
        let h = Handoff::new();
        h.complete(5u32);
        let calls = AtomicUsize::new(0);
        let value = h.wait_instrumented(|| {
            calls.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(value, 5);
        assert_eq!(calls.load(Ordering::SeqCst), 0, "ready fast path");

        // A genuinely blocking wait runs the hook exactly once, before
        // blocking, and drops its guard after the value arrives.
        let h = Arc::new(Handoff::<u32>::new());
        let h2 = Arc::clone(&h);
        let producer = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            h2.complete(7);
        });
        struct Guard(Arc<AtomicUsize>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let value = h.wait_instrumented(|| Guard(Arc::clone(&drops)));
        assert_eq!(value, 7);
        assert_eq!(drops.load(Ordering::SeqCst), 1, "guard released after wait");
        producer.join().unwrap();
    }

    #[test]
    fn unconsumed_value_is_dropped() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let h = Handoff::new();
            h.complete(D);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn values_are_not_dropped_twice() {
        let h = Handoff::new();
        h.complete(Box::new(7));
        let b = h.wait();
        assert_eq!(*b, 7);
        drop(h); // must not double-drop the already-taken box
    }
}
