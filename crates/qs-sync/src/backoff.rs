//! Exponential backoff for spin loops.
//!
//! The queue-of-queues and the reservation spinlocks both contain short
//! optimistic spin phases.  Spinning without backoff saturates the coherence
//! fabric (see the MESI discussion in *Rust Atomics and Locks*, ch. 7), so
//! every spin loop in this workspace goes through [`Backoff`].

use std::hint;
use std::thread;

/// Maximum exponent used while pure-spinning; beyond this the backoff
/// starts yielding to the OS scheduler.
const SPIN_LIMIT: u32 = 6;
/// Maximum exponent overall; the caller should park instead of continuing to
/// back off once [`Backoff::is_completed`] returns `true`.
const YIELD_LIMIT: u32 = 10;

/// An exponential backoff helper for spin loops.
///
/// ```
/// use qs_sync::Backoff;
/// use std::sync::atomic::{AtomicBool, Ordering};
///
/// let flag = AtomicBool::new(true);
/// let backoff = Backoff::new();
/// while !flag.load(Ordering::Acquire) {
///     backoff.snooze();
/// }
/// ```
#[derive(Debug)]
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// Creates a fresh backoff state.
    #[inline]
    pub fn new() -> Self {
        Backoff {
            step: std::cell::Cell::new(0),
        }
    }

    /// Resets the backoff to its initial state.
    #[inline]
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Backs off for a short, purely busy-waiting period.
    ///
    /// Use this when the awaited condition is expected to change within a few
    /// hundred cycles (e.g. the other side of an SPSC queue is mid-enqueue).
    #[inline]
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..(1u32 << step) {
            hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Backs off, yielding to the OS scheduler once spinning has not helped.
    #[inline]
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..(1u32 << step) {
                hint::spin_loop();
            }
        } else {
            thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Returns `true` once backing off any further is pointless and the
    /// caller should block (park) instead.
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn starts_incomplete() {
        let b = Backoff::new();
        assert!(!b.is_completed());
    }

    #[test]
    fn completes_after_enough_snoozes() {
        let b = Backoff::new();
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn spin_never_completes() {
        let b = Backoff::new();
        for _ in 0..100 {
            b.spin();
        }
        assert!(!b.is_completed());
    }

    #[test]
    fn reset_restores_initial_state() {
        let b = Backoff::new();
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn usable_in_cross_thread_wait() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let t = std::thread::spawn(move || {
            f2.store(true, Ordering::Release);
        });
        let b = Backoff::new();
        while !flag.load(Ordering::Acquire) {
            b.snooze();
        }
        t.join().unwrap();
    }
}
