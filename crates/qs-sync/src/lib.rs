//! Low-level synchronisation substrate for the SCOOP/Qs runtime.
//!
//! The SCOOP/Qs paper (West, Nanz, Meyer — PPoPP 2015) builds its runtime out
//! of a small number of synchronisation devices:
//!
//! * spinlocks guarding the multi-handler reservation path (§3.3),
//! * a wait/release ("sync") handoff between a client and a handler used to
//!   implement queries (§2.3, rules `query`/`sync`),
//! * direct control transfer from handler to client once a sync completes,
//!   avoiding the global scheduler (§3.2),
//! * cache-conscious layout of the hot queue structures (§3.1).
//!
//! This crate provides those devices in isolation so that they can be unit
//! and property tested, benchmarked (ablation E9 in `DESIGN.md`) and reused by
//! the queue, executor and runtime crates.

#![warn(missing_docs)]

pub mod backoff;
pub mod cache_padded;
pub mod event;
pub mod handoff;
pub mod once_cell;
pub mod parker;
pub mod rwgate;
pub mod spinlock;
pub mod wait_group;

pub use backoff::Backoff;
pub use cache_padded::CachePadded;
pub use event::Event;
pub use handoff::Handoff;
pub use once_cell::OnceValue;
pub use parker::Parker;
pub use rwgate::{GateWake, ReadGate};
pub use spinlock::{SpinLock, SpinLockGuard};
pub use wait_group::WaitGroup;
