//! A one-thread parking slot with a lost-wakeup-free publish protocol.
//!
//! The queue crate's blocking paths (a consumer waiting for work, a bounded
//! producer waiting for space) all follow the same shape: register the
//! current thread, publish a "parked" flag, re-check the awaited condition,
//! and park until a waker observes the flag.  The subtle part is the memory
//! ordering: the flag publish and the condition re-check must not be
//! StoreLoad-reordered, or the parker and the waker can miss each other and
//! the thread parks forever.  That protocol lives here *once*, so every
//! blocking queue path shares the same proven sequence instead of carrying
//! its own copy.

use std::sync::atomic::{fence, AtomicBool, Ordering};
use std::thread::Thread;

use crate::SpinLock;

/// A parking slot for a single waiting thread.
///
/// The waiter calls [`park_until`](Parker::park_until) with the condition it
/// is waiting for; any other thread calls [`wake`](Parker::wake) after
/// making that condition true.  Either the waker's SeqCst swap observes the
/// parked flag (and unparks), or the waiter's post-fence re-check observes
/// the state the waker published first — a plain Release store + Acquire
/// re-check would allow both sides to miss each other (StoreLoad
/// reordering) and lose the wakeup.
#[derive(Debug, Default)]
pub struct Parker {
    thread: SpinLock<Option<Thread>>,
    parked: AtomicBool,
}

impl Parker {
    /// Creates an empty parking slot.
    pub fn new() -> Self {
        Parker {
            thread: SpinLock::new(None),
            parked: AtomicBool::new(false),
        }
    }

    /// Blocks the current thread until `condition` returns `true` or a
    /// [`wake`](Parker::wake) arrives (callers re-check in their outer
    /// retry loop, so an early wake costs one extra iteration, never a
    /// missed state change).
    ///
    /// The condition is re-checked after the parked flag is published (and
    /// after every wakeup), so a state change racing with the registration
    /// is never missed.  Spurious returns of the underlying `thread::park`
    /// are absorbed.
    pub fn park_until(&self, mut condition: impl FnMut() -> bool) {
        *self.thread.lock() = Some(std::thread::current());
        self.parked.store(true, Ordering::Release);
        // Orders the parked-flag publish before the re-check; pairs with the
        // SeqCst swap in `wake`.
        fence(Ordering::SeqCst);
        if condition() {
            self.unregister();
            return;
        }
        while self.parked.load(Ordering::Acquire) {
            std::thread::park();
            if condition() {
                self.unregister();
                return;
            }
        }
    }

    /// [`park_until`](Parker::park_until) with a deadline: gives up once
    /// `Instant::now() >= deadline` even if neither the condition nor a wake
    /// arrived.  Returns the final observation of `condition` — `true` when
    /// the awaited state was seen (possibly right at the deadline), `false`
    /// on a pure timeout.  Like `park_until`, a wake may also return early
    /// with the condition still false; callers re-check in their outer loop.
    pub fn park_until_deadline(
        &self,
        mut condition: impl FnMut() -> bool,
        deadline: std::time::Instant,
    ) -> bool {
        *self.thread.lock() = Some(std::thread::current());
        self.parked.store(true, Ordering::Release);
        // Same publish protocol as `park_until`; pairs with the SeqCst swap
        // in `wake`.
        fence(Ordering::SeqCst);
        if condition() {
            self.unregister();
            return true;
        }
        while self.parked.load(Ordering::Acquire) {
            let now = std::time::Instant::now();
            if now >= deadline {
                self.unregister();
                return condition();
            }
            std::thread::park_timeout(deadline - now);
            if condition() {
                self.unregister();
                return true;
            }
        }
        condition()
    }

    fn unregister(&self) {
        self.parked.store(false, Ordering::Release);
        self.thread.lock().take();
    }

    /// Wakes the parked thread, if any.
    ///
    /// Call *after* publishing the state change the waiter is waiting for.
    /// The SeqCst swap pairs with the fence in [`park_until`].
    pub fn wake(&self) {
        if self.parked.swap(false, Ordering::SeqCst) {
            if let Some(thread) = self.thread.lock().take() {
                thread.unpark();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn condition_true_up_front_never_parks() {
        let parker = Parker::new();
        parker.park_until(|| true);
    }

    #[test]
    fn wake_releases_a_parked_thread() {
        let parker = Arc::new(Parker::new());
        let flag = Arc::new(AtomicBool::new(false));
        let waiter = {
            let (parker, flag) = (Arc::clone(&parker), Arc::clone(&flag));
            thread::spawn(move || parker.park_until(|| flag.load(Ordering::Acquire)))
        };
        thread::sleep(Duration::from_millis(30));
        flag.store(true, Ordering::Release);
        parker.wake();
        waiter.join().unwrap();
    }

    #[test]
    fn wake_without_waiter_is_harmless() {
        let parker = Parker::new();
        parker.wake();
        parker.park_until(|| true);
    }

    #[test]
    fn deadline_park_times_out_without_a_wake() {
        let parker = Parker::new();
        let deadline = std::time::Instant::now() + Duration::from_millis(40);
        let started = std::time::Instant::now();
        let observed = parker.park_until_deadline(|| false, deadline);
        assert!(!observed, "nothing ever made the condition true");
        assert!(started.elapsed() >= Duration::from_millis(40));
        // The slot is fully unregistered: a later plain park still works.
        parker.park_until(|| true);
    }

    #[test]
    fn deadline_park_returns_promptly_on_wake() {
        let parker = Arc::new(Parker::new());
        let flag = Arc::new(AtomicBool::new(false));
        let waiter = {
            let (parker, flag) = (Arc::clone(&parker), Arc::clone(&flag));
            thread::spawn(move || {
                let deadline = std::time::Instant::now() + Duration::from_secs(30);
                parker.park_until_deadline(|| flag.load(Ordering::Acquire), deadline)
            })
        };
        thread::sleep(Duration::from_millis(30));
        flag.store(true, Ordering::Release);
        parker.wake();
        assert!(waiter.join().unwrap(), "wake must deliver the condition");
    }

    #[test]
    fn deadline_park_with_condition_already_true_never_blocks() {
        let parker = Parker::new();
        // A deadline in the past still observes a true condition.
        let deadline = std::time::Instant::now() - Duration::from_millis(1);
        assert!(parker.park_until_deadline(|| true, deadline));
    }

    #[test]
    fn repeated_rounds_lose_no_wakeups() {
        let parker = Arc::new(Parker::new());
        let turn = Arc::new(AtomicUsize::new(0));
        let rounds = 10_000;
        let waker = {
            let (parker, turn) = (Arc::clone(&parker), Arc::clone(&turn));
            thread::spawn(move || {
                for round in 0..rounds {
                    while turn.load(Ordering::Acquire) != round {
                        std::hint::spin_loop();
                    }
                    turn.store(round + 1, Ordering::Release);
                    parker.wake();
                }
            })
        };
        for round in 0..rounds {
            parker.park_until(|| turn.load(Ordering::Acquire) > round);
        }
        waker.join().unwrap();
    }
}
