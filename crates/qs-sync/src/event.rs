//! A reusable binary event (set/wait) built on spinning plus thread parking.
//!
//! The wait/release pair of the `sync` rule (§2.3) is implemented in the
//! runtime as: the client enqueues a *sync token* into its private queue and
//! then waits on an [`Event`]; when the handler dequeues the token it sets
//! the event, releasing the client.  The event first spins briefly (queries
//! usually complete quickly when the handler is already draining the private
//! queue) and then parks the waiting thread.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::thread::Thread;
use std::time::Duration;

use crate::Backoff;

/// Event state: not signalled, signalled, or not signalled with a parked waiter.
const EMPTY: u32 = 0;
const SET: u32 = 1;
const WAITING: u32 = 2;

/// A reusable binary event.
///
/// One or more threads may [`wait`](Event::wait) for the event; a call to
/// [`set`](Event::set) releases all current waiters and leaves the event in
/// the signalled state until [`reset`](Event::reset) is called.
///
/// ```
/// use qs_sync::Event;
/// use std::sync::Arc;
///
/// let ev = Arc::new(Event::new());
/// let ev2 = Arc::clone(&ev);
/// let t = std::thread::spawn(move || ev2.wait());
/// ev.set();
/// t.join().unwrap();
/// ```
#[derive(Debug)]
pub struct Event {
    state: AtomicU32,
    /// Parked waiter handles.  A `Mutex<Vec<_>>` is acceptable here because
    /// the fast path (spin-then-set without parking) never touches it.
    waiters: Mutex<Vec<Thread>>,
}

impl Default for Event {
    fn default() -> Self {
        Self::new()
    }
}

impl Event {
    /// Creates an event in the non-signalled state.
    pub fn new() -> Self {
        Event {
            state: AtomicU32::new(EMPTY),
            waiters: Mutex::new(Vec::new()),
        }
    }

    /// Returns `true` if the event is currently signalled.
    pub fn is_set(&self) -> bool {
        self.state.load(Ordering::Acquire) == SET
    }

    /// Signals the event, waking every thread currently waiting on it.
    pub fn set(&self) {
        let prev = self.state.swap(SET, Ordering::Release);
        if prev == WAITING {
            let mut waiters = self.waiters.lock().unwrap();
            for t in waiters.drain(..) {
                t.unpark();
            }
        }
    }

    /// Clears the signalled state so the event can be waited on again.
    ///
    /// Must only be called when no thread is concurrently waiting; in the
    /// runtime the client resets its own event between queries.
    pub fn reset(&self) {
        self.state.store(EMPTY, Ordering::Release);
    }

    /// Blocks until the event is signalled.
    pub fn wait(&self) {
        let backoff = Backoff::new();
        loop {
            match self.state.load(Ordering::Acquire) {
                SET => return,
                _ if !backoff.is_completed() => backoff.snooze(),
                _ => break,
            }
        }
        // Slow path: register as a parked waiter.
        loop {
            {
                let mut waiters = self.waiters.lock().unwrap();
                // Transition EMPTY -> WAITING with a CAS so that a `set`
                // racing with registration cannot be overwritten (which would
                // lose the wake-up and park forever).
                match self.state.compare_exchange(
                    EMPTY,
                    WAITING,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) | Err(WAITING) => waiters.push(std::thread::current()),
                    // Already signalled.
                    Err(_) => return,
                }
            }
            loop {
                std::thread::park();
                match self.state.load(Ordering::Acquire) {
                    SET => return,
                    // Spurious wake-up: if we are no longer registered (the
                    // waiters vec was drained by a set that raced with a
                    // reset), re-register; otherwise just park again.
                    _ => {
                        let waiters = self.waiters.lock().unwrap();
                        if !waiters
                            .iter()
                            .any(|t| t.id() == std::thread::current().id())
                        {
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Blocks until the event is signalled or `timeout` elapses.
    ///
    /// Returns `true` if the event was signalled.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let backoff = Backoff::new();
        loop {
            if self.state.load(Ordering::Acquire) == SET {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            if backoff.is_completed() {
                std::thread::park_timeout(Duration::from_micros(200));
            } else {
                backoff.snooze();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn set_before_wait_returns_immediately() {
        let ev = Event::new();
        ev.set();
        ev.wait();
        assert!(ev.is_set());
    }

    #[test]
    fn reset_clears_state() {
        let ev = Event::new();
        ev.set();
        assert!(ev.is_set());
        ev.reset();
        assert!(!ev.is_set());
    }

    #[test]
    fn wait_blocks_until_set() {
        let ev = Arc::new(Event::new());
        let ev2 = Arc::clone(&ev);
        let t = thread::spawn(move || {
            ev2.wait();
            true
        });
        thread::sleep(Duration::from_millis(20));
        ev.set();
        assert!(t.join().unwrap());
    }

    #[test]
    fn multiple_waiters_are_all_released() {
        let ev = Arc::new(Event::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let ev = Arc::clone(&ev);
            handles.push(thread::spawn(move || ev.wait()));
        }
        thread::sleep(Duration::from_millis(20));
        ev.set();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn wait_timeout_expires_without_set() {
        let ev = Event::new();
        assert!(!ev.wait_timeout(Duration::from_millis(10)));
        ev.set();
        assert!(ev.wait_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn reusable_across_rounds() {
        // The query loop in the runtime resets and reuses one event per
        // private queue; emulate a few thousand rounds.
        let ev = Arc::new(Event::new());
        let ev2 = Arc::clone(&ev);
        let rounds = 2_000;
        let setter = thread::spawn(move || {
            for _ in 0..rounds {
                // wait until consumer has armed (reset) the event
                while ev2.is_set() {
                    std::hint::spin_loop();
                }
                ev2.set();
            }
        });
        for _ in 0..rounds {
            ev.wait();
            ev.reset();
        }
        setter.join().unwrap();
    }
}
