//! Runtime deadlock detection for SCOOP/Qs: a live wait-for graph.
//!
//! §2.5 of the paper argues that SCOOP/Qs programs can only deadlock through
//! cyclic *queries*, because reservations and asynchronous calls never
//! block.  That argument stops holding the moment mailboxes are bounded: a
//! producer blocked pushing into a full mailbox is a real wait-for edge the
//! model does not have, and a cyclic-logging topology that is perfectly safe
//! with unbounded queues can now hang forever.  Instead of assuming the
//! non-blocking claim, this crate makes it *checkable at runtime*:
//!
//! * the runtime's blocking edges — a client parked in a query handoff, a
//!   producer blocked pushing into a full bounded mailbox, a handler parked
//!   on a client's open private queue, a reservation retrying a wait
//!   condition, a client blocked acquiring the pre-Qs lock-based
//!   configuration's handler lock — register themselves in a
//!   [`WaitRegistry`] for exactly the duration of the wait (RAII: dropping
//!   the [`EdgeGuard`] removes the edge);
//! * a [`DeadlockMonitor`] thread periodically runs cycle detection over the
//!   registry (incrementally: scans are skipped while the edge set is
//!   unchanged and nothing is pending confirmation) and emits a
//!   [`DeadlockReport`] naming the participants and edge kinds on each
//!   cycle;
//! * a detected cycle can optionally be *broken*: [`WaitRegistry::break_edge`]
//!   flips the edge's break token and wakes the blocked thread, which aborts
//!   its wait and surfaces an error — unwinding the cycle the way a
//!   non-blocking `try_call` would have avoided it.
//!
//! Two guards keep the detector honest about false positives:
//!
//! * an edge may carry a *probe* ([`ProbeFn`]) re-checked at scan time (e.g.
//!   "is that mailbox still full?"), so an edge whose wait has logically
//!   ended but whose guard has not been dropped yet cannot complete a cycle;
//! * the monitor only reports a cycle it has seen on **two consecutive
//!   scans** with the identical set of edge instances — transient
//!   coincidences (a push unblocking just as its consumer parks) dissolve
//!   before the confirmation pass.
//!
//! The crate is runtime-agnostic: participants are opaque ids with labels,
//! and the only integration points are edge registration and the break
//! token.  `qs-runtime` wires its handlers, clients, mailboxes and
//! reservations into it behind the `DeadlockPolicy` configuration knob.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// Trace events per thread attached to a report's flight recorder (when
/// full tracing is enabled): enough run-up history to see what each
/// participant was doing as the cycle closed, small enough to log whole.
const FLIGHT_EVENTS_PER_THREAD: usize = 64;

/// Wakes a thread blocked on the instrumented wait so it can observe a break
/// request.  Registered alongside [`EdgeKind::MailboxPush`] edges; called by
/// [`WaitRegistry::break_edge`] after the break token is set.
pub type WakerFn = Arc<dyn Fn() + Send + Sync>;

/// Re-validates an edge at scan time: returns `true` while the wait it
/// describes is still real (e.g. the mailbox is still full, the query result
/// is still pending).  Edges whose probe returns `false` are excluded from
/// cycle detection, so a wait that logically ended a microsecond ago cannot
/// complete a phantom cycle.  Probes are called *outside* the registry lock
/// and must not block.
pub type ProbeFn = Arc<dyn Fn() -> bool + Send + Sync>;

/// Opaque identity of one waiting/owning party (a handler or a client
/// thread) within one [`WaitRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParticipantId(pub u64);

impl fmt::Display for ParticipantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identity of one registered wait-for edge.  Edge ids are never reused, so
/// a cycle key built from edge ids identifies one concrete deadlock
/// instance, not just a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u64);

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The kind of blocking edge a waiter registered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// The waiter is blocked in a query / sync round-trip on the owner (the
    /// only blocking edge the paper's §2.5 model has).
    Query,
    /// The waiter is blocked pushing into the owner's full bounded mailbox
    /// (the backpressure edge bounded mailboxes added).  The only kind the
    /// `Break` policy fails over.
    MailboxPush,
    /// The waiter is retrying a `reserve().when(...)` wait condition whose
    /// truth depends on the owner.  Conditional: a cycle through this edge
    /// may be a livelock (the condition may never become true) rather than a
    /// hard deadlock.
    ReserveWait,
    /// The waiter is a handler parked on the owner's *open but empty*
    /// private queue: it cannot serve any other client until the owner logs
    /// more requests or ends its separate block.
    Serving,
    /// The waiter is blocked acquiring the owner's handler lock (the pre-Qs
    /// lock-based configuration holds it for a whole separate block, so
    /// nested blocks taken in opposite orders form a classic lock cycle).
    HandlerLock,
    /// The waiter is a client blocked acquiring a *shared-read* reservation
    /// on the owner handler's reader–writer gate: a writer is active or
    /// announced, and writer preference refuses new readers until it runs.
    ReadWait,
    /// The waiter is a handler (as writer) blocked behind active readers of
    /// its own object's gate: it cannot apply commands until every current
    /// read reservation ends.  One edge is registered per read holder, so a
    /// cycle names the concrete reader it runs through.
    WriterWait,
}

impl EdgeKind {
    /// Short human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            EdgeKind::Query => "query",
            EdgeKind::MailboxPush => "mailbox-push",
            EdgeKind::ReserveWait => "reserve-wait",
            EdgeKind::Serving => "serving",
            EdgeKind::HandlerLock => "handler-lock",
            EdgeKind::ReadWait => "read-wait",
            EdgeKind::WriterWait => "writer-wait",
        }
    }

    /// Whether the `Break` policy can fail this edge's wait.  Blocked
    /// bounded pushes poll their break token, a parked `reserve().when`
    /// waiter checks it on every wake (its edge carries a waker that unparks
    /// the client), surfacing the break as a `WaitTimeout`, and a client
    /// blocked acquiring a shared-read reservation aborts the acquisition
    /// with a `DeadlockBroken` panic.  Query handoffs, mutex acquisitions
    /// and a handler's own writer wait cannot be failed without corrupting
    /// their protocol.
    pub fn breakable(self) -> bool {
        matches!(
            self,
            EdgeKind::MailboxPush | EdgeKind::ReserveWait | EdgeKind::ReadWait
        )
    }
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Shared break token of one edge: set by [`WaitRegistry::break_edge`],
/// polled by the blocked waiter through [`EdgeGuard::is_broken`].
#[derive(Default)]
struct EdgeState {
    broken: AtomicBool,
}

struct EdgeRecord {
    waiter: ParticipantId,
    owner: ParticipantId,
    kind: EdgeKind,
    state: Arc<EdgeState>,
    waker: Option<WakerFn>,
    probe: Option<ProbeFn>,
    /// When the edge was registered — i.e. when the waiter blocked.  A
    /// reported edge carries its age so the report distinguishes a cycle
    /// that just closed from one that has been wedged for minutes.
    registered_at: Instant,
}

#[derive(Default)]
struct Inner {
    /// Live edges by raw id; BTreeMap for deterministic scan order.
    edges: BTreeMap<u64, EdgeRecord>,
    /// Human-readable labels by raw participant id.
    labels: HashMap<u64, String>,
}

/// The concurrent wait-for registry every real blocking edge reports into.
///
/// ```
/// use qs_deadlock::{EdgeKind, WaitRegistry};
///
/// let registry = WaitRegistry::new();
/// let a = registry.participant("handler-a");
/// let b = registry.participant("handler-b");
/// let _ab = registry.register(a, b, EdgeKind::MailboxPush, None, None);
/// let _ba = registry.register(b, a, EdgeKind::MailboxPush, None, None);
/// let cycles = registry.scan();
/// assert_eq!(cycles.len(), 1);
/// assert_eq!(cycles[0].edges.len(), 2);
/// ```
pub struct WaitRegistry {
    inner: Mutex<Inner>,
    /// Bumped on every edge registration/removal; the monitor skips scans
    /// while it is unchanged and no cycle is pending confirmation.
    version: AtomicU64,
    next_participant: AtomicU64,
    next_edge: AtomicU64,
}

impl WaitRegistry {
    /// Creates an empty registry.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Arc<Self> {
        Arc::new(WaitRegistry {
            inner: Mutex::new(Inner::default()),
            version: AtomicU64::new(0),
            next_participant: AtomicU64::new(1),
            next_edge: AtomicU64::new(1),
        })
    }

    /// Allocates a fresh participant id carrying `label` (shown in reports).
    pub fn participant(&self, label: impl Into<String>) -> ParticipantId {
        let id = self.next_participant.fetch_add(1, Ordering::Relaxed);
        self.inner.lock().unwrap().labels.insert(id, label.into());
        ParticipantId(id)
    }

    /// Releases a participant's label once the party it names is gone (a
    /// retired handler, an exited client thread), so a long-lived registry
    /// does not accumulate one entry per participant ever seen.  Edges that
    /// still reference the id fall back to its numeric display.
    pub fn forget_participant(&self, participant: ParticipantId) {
        self.inner.lock().unwrap().labels.remove(&participant.0);
    }

    /// Whether `edge` is still registered (used by the monitor to prune its
    /// reported-cycle memory; edge ids are never reused).
    pub fn edge_exists(&self, edge: EdgeId) -> bool {
        self.inner.lock().unwrap().edges.contains_key(&edge.0)
    }

    /// Whether any registered edge carries a probe.  Probed edges can
    /// change the *effective* wait-for graph without any
    /// registration/removal (the probe's answer flips), so the monitor must
    /// keep scanning while they exist even at an unchanged
    /// [`version`](Self::version).
    pub fn has_probed_edges(&self) -> bool {
        self.inner
            .lock()
            .unwrap()
            .edges
            .values()
            .any(|record| record.probe.is_some())
    }

    /// Registers the edge "`waiter` is blocked until `owner` makes
    /// progress".  The edge lives until the returned [`EdgeGuard`] is
    /// dropped; register immediately before blocking, drop immediately
    /// after.
    ///
    /// `waker` (for breakable edges) wakes the blocked thread after a break;
    /// `probe` re-validates the edge at scan time (see [`ProbeFn`]).
    pub fn register(
        self: &Arc<Self>,
        waiter: ParticipantId,
        owner: ParticipantId,
        kind: EdgeKind,
        waker: Option<WakerFn>,
        probe: Option<ProbeFn>,
    ) -> EdgeGuard {
        let id = self.next_edge.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(EdgeState::default());
        self.inner.lock().unwrap().edges.insert(
            id,
            EdgeRecord {
                waiter,
                owner,
                kind,
                state: Arc::clone(&state),
                waker,
                probe,
                registered_at: Instant::now(),
            },
        );
        self.version.fetch_add(1, Ordering::Release);
        EdgeGuard {
            registry: Arc::clone(self),
            id,
            state,
        }
    }

    fn remove(&self, id: u64) {
        self.inner.lock().unwrap().edges.remove(&id);
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Sets the break token of `edge` and wakes its blocked waiter.
    /// Returns `false` when the edge is already gone (the wait ended on its
    /// own between scan and break).
    pub fn break_edge(&self, edge: EdgeId) -> bool {
        let waker = {
            let inner = self.inner.lock().unwrap();
            let Some(record) = inner.edges.get(&edge.0) else {
                return false;
            };
            record.state.broken.store(true, Ordering::Release);
            record.waker.clone()
        };
        // The waker runs outside the registry lock: it typically signals a
        // parker or condvar and must never nest back into the registry.
        if let Some(waker) = waker {
            waker();
        }
        true
    }

    /// Number of currently registered edges.
    pub fn edge_count(&self) -> usize {
        self.inner.lock().unwrap().edges.len()
    }

    /// Monotonic change counter (bumped per registration/removal).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Runs cycle detection over the current edge set and returns one
    /// [`DeadlockReport`] per (node-disjoint) cycle found.
    ///
    /// Edges with a probe are re-validated first, *outside* the registry
    /// lock; an edge whose probe fails is invisible to this scan.
    pub fn scan(&self) -> Vec<DeadlockReport> {
        struct Snap {
            id: u64,
            waiter: ParticipantId,
            owner: ParticipantId,
            kind: EdgeKind,
            probe: Option<ProbeFn>,
            registered_at: Instant,
        }
        // Labels are deliberately NOT snapshotted here: the steady-state
        // scan (probed edges, no cycle) would otherwise clone two strings
        // per edge a hundred times a second for nothing.  They are resolved
        // in a second, short lock only for the rare edges that end up on a
        // reported cycle.
        let snapshot: Vec<Snap> = {
            let inner = self.inner.lock().unwrap();
            inner
                .edges
                .iter()
                .map(|(&id, record)| Snap {
                    id,
                    waiter: record.waiter,
                    owner: record.owner,
                    kind: record.kind,
                    probe: record.probe.clone(),
                    registered_at: record.registered_at,
                })
                .collect()
        };
        // Probe outside the lock: probes touch queue state whose writers may
        // themselves be registering edges (lock-order inversion otherwise).
        let live: Vec<&Snap> = snapshot
            .iter()
            .filter(|edge| edge.probe.as_ref().is_none_or(|probe| probe()))
            .collect();
        qs_obs::trace(qs_obs::TraceKind::DeadlockScan, live.len() as u64, 0);

        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            Grey,
            Black,
        }
        fn visit(
            node: ParticipantId,
            live: &[&Snap],
            successors: &BTreeMap<ParticipantId, Vec<usize>>,
            marks: &mut HashMap<ParticipantId, Mark>,
            stack: &mut Vec<(ParticipantId, usize)>,
        ) -> Option<Vec<usize>> {
            match marks.get(&node) {
                Some(Mark::Black) => return None,
                Some(Mark::Grey) => {
                    let start = stack
                        .iter()
                        .position(|(n, _)| *n == node)
                        .expect("grey node is on the stack");
                    return Some(stack[start..].iter().map(|&(_, edge)| edge).collect());
                }
                None => {}
            }
            marks.insert(node, Mark::Grey);
            for &edge_index in successors.get(&node).map_or(&[][..], Vec::as_slice) {
                stack.push((node, edge_index));
                let found = visit(live[edge_index].owner, live, successors, marks, stack);
                stack.pop();
                if found.is_some() {
                    return found;
                }
            }
            marks.insert(node, Mark::Black);
            None
        }

        // Find cycles iteratively: report one, remove its edges, search
        // again — so distinct (edge-disjoint) cycles that share a
        // participant are all reported in one scan, instead of the first
        // one shadowing the rest.  Terminates because every round removes
        // at least one edge.
        let mut removed: Vec<bool> = vec![false; live.len()];
        let mut reports = Vec::new();
        loop {
            let mut successors: BTreeMap<ParticipantId, Vec<usize>> = BTreeMap::new();
            for (index, edge) in live.iter().enumerate() {
                if !removed[index] {
                    successors.entry(edge.waiter).or_default().push(index);
                }
            }
            let mut marks = HashMap::new();
            let mut found = None;
            for &node in successors.keys() {
                let mut stack = Vec::new();
                if let Some(cycle) = visit(node, &live, &successors, &mut marks, &mut stack) {
                    found = Some(cycle);
                    break;
                }
            }
            let Some(cycle) = found else {
                break;
            };
            for &edge_index in &cycle {
                removed[edge_index] = true;
            }
            let label = |participant: ParticipantId| {
                self.inner
                    .lock()
                    .unwrap()
                    .labels
                    .get(&participant.0)
                    .cloned()
                    .unwrap_or_else(|| participant.to_string())
            };
            let now = Instant::now();
            reports.push(DeadlockReport {
                edges: cycle
                    .into_iter()
                    .map(|edge_index| {
                        let edge = live[edge_index];
                        ReportedEdge {
                            id: EdgeId(edge.id),
                            waiter: edge.waiter,
                            waiter_label: label(edge.waiter),
                            owner: edge.owner,
                            owner_label: label(edge.owner),
                            kind: edge.kind,
                            age: now.saturating_duration_since(edge.registered_at),
                        }
                    })
                    .collect(),
                detected_at: SystemTime::now(),
                flight_recorder: if qs_obs::tracing_enabled() {
                    qs_obs::flight_recorder(FLIGHT_EVENTS_PER_THREAD)
                } else {
                    Vec::new()
                },
            });
        }
        reports
    }
}

impl fmt::Debug for WaitRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WaitRegistry")
            .field("edges", &self.edge_count())
            .field("version", &self.version())
            .finish()
    }
}

/// RAII handle for one registered wait-for edge: dropping it removes the
/// edge from the registry.  Held by the blocking site for exactly the
/// duration of the wait.
pub struct EdgeGuard {
    registry: Arc<WaitRegistry>,
    id: u64,
    state: Arc<EdgeState>,
}

impl EdgeGuard {
    /// The registered edge's id.
    pub fn id(&self) -> EdgeId {
        EdgeId(self.id)
    }

    /// Returns `true` once [`WaitRegistry::break_edge`] targeted this edge:
    /// the waiter must abort its wait and surface the break as an error.
    pub fn is_broken(&self) -> bool {
        self.state.broken.load(Ordering::Acquire)
    }
}

impl Drop for EdgeGuard {
    fn drop(&mut self) {
        self.registry.remove(self.id);
    }
}

impl fmt::Debug for EdgeGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EdgeGuard")
            .field("id", &self.id)
            .field("broken", &self.is_broken())
            .finish()
    }
}

/// One edge of a reported cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportedEdge {
    /// The concrete edge instance (usable with [`WaitRegistry::break_edge`]).
    pub id: EdgeId,
    /// The blocked party.
    pub waiter: ParticipantId,
    /// Label of the blocked party.
    pub waiter_label: String,
    /// The party the waiter is blocked on.
    pub owner: ParticipantId,
    /// Label of the owner.
    pub owner_label: String,
    /// What kind of wait this is.
    pub kind: EdgeKind,
    /// How long the waiter had already been blocked when the scan that
    /// produced this report ran.
    pub age: Duration,
}

/// A confirmed wait-for cycle: the handlers/clients on it and the kind of
/// each blocking edge, in cycle order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// The edges of the cycle; edge `i`'s owner is edge `i+1`'s waiter
    /// (cyclically).
    pub edges: Vec<ReportedEdge>,
    /// Wall-clock time of the scan that produced this report, so reports
    /// logged from long-running services correlate with external logs.
    pub detected_at: SystemTime,
    /// The observability flight recorder at detection time: the last few
    /// trace events of every thread (globally time-ordered, one formatted
    /// line each).  Empty unless the process runs with full tracing
    /// ([`qs_obs::ObservabilityMode::Full`]).
    pub flight_recorder: Vec<String>,
}

impl DeadlockReport {
    /// Labels of the waiting participants, in cycle order.
    pub fn participants(&self) -> Vec<&str> {
        self.edges
            .iter()
            .map(|edge| edge.waiter_label.as_str())
            .collect()
    }

    /// The edge kinds on the cycle, in cycle order.
    pub fn kinds(&self) -> Vec<EdgeKind> {
        self.edges.iter().map(|edge| edge.kind).collect()
    }

    /// The first edge the `Break` policy can fail, if the cycle has one.
    pub fn breakable_edge(&self) -> Option<&ReportedEdge> {
        self.edges.iter().find(|edge| edge.kind.breakable())
    }

    /// The canonical identity of this concrete cycle: its sorted edge ids.
    pub fn cycle_key(&self) -> Vec<EdgeId> {
        let mut key: Vec<EdgeId> = self.edges.iter().map(|edge| edge.id).collect();
        key.sort_unstable();
        key
    }
}

impl fmt::Display for DeadlockReport {
    /// Multi-line human rendering: a headline with the party count and the
    /// wall-clock detection time (unix seconds), one line per edge with its
    /// kind, age and breakability, and — when tracing was on — the attached
    /// flight-recorder lines.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let unix = self
            .detected_at
            .duration_since(SystemTime::UNIX_EPOCH)
            .unwrap_or_default();
        write!(
            f,
            "deadlock: {}-party wait cycle (detected at unix {}.{:03}): ",
            self.edges.len(),
            unix.as_secs(),
            unix.subsec_millis()
        )?;
        for edge in &self.edges {
            write!(f, "{} --[{}]--> ", edge.waiter_label, edge.kind)?;
        }
        match self.edges.first() {
            Some(first) => f.write_str(&first.waiter_label)?,
            None => f.write_str("(empty)")?,
        }
        for edge in &self.edges {
            write!(
                f,
                "\n  {}: {} --[{}]--> {} (blocked for {:?}{})",
                edge.id,
                edge.waiter_label,
                edge.kind,
                edge.owner_label,
                edge.age,
                if edge.kind.breakable() {
                    ", breakable"
                } else {
                    ""
                }
            )?;
        }
        if !self.flight_recorder.is_empty() {
            write!(
                f,
                "\n  flight recorder ({} events):",
                self.flight_recorder.len()
            )?;
            for line in &self.flight_recorder {
                write!(f, "\n    {line}")?;
            }
        }
        Ok(())
    }
}

/// The detector thread: periodically scans a [`WaitRegistry`], confirms
/// cycles across two consecutive scans, reports them, and (optionally)
/// breaks one breakable edge per confirmed cycle.
///
/// Dropping the monitor stops and joins the thread.
pub struct DeadlockMonitor {
    stop: Arc<AtomicBool>,
    scans: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl DeadlockMonitor {
    /// Spawns the detector over `registry`, scanning roughly every `tick`.
    ///
    /// The interval is *adaptive* around that base (see [`adaptive_tick`]):
    /// it drops while probed edges keep the effective graph in motion, and
    /// backs off exponentially toward `10 * tick` while the registry is
    /// empty, so an idle runtime costs next to nothing.
    ///
    /// `on_report` runs on the monitor thread once per confirmed cycle; with
    /// `break_cycles` the monitor additionally fails the cycle's first
    /// [breakable](EdgeKind::breakable) edge right after reporting it.
    pub fn spawn(
        registry: Arc<WaitRegistry>,
        tick: Duration,
        break_cycles: bool,
        on_report: impl Fn(&DeadlockReport) + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let scans = Arc::new(AtomicU64::new(0));
        let thread_stop = Arc::clone(&stop);
        let thread_scans = Arc::clone(&scans);
        let handle = std::thread::Builder::new()
            .name("qs-deadlock-monitor".to_string())
            .spawn(move || {
                monitor_loop(
                    &registry,
                    tick,
                    break_cycles,
                    &thread_stop,
                    &thread_scans,
                    &on_report,
                );
            })
            .expect("failed to spawn deadlock monitor");
        DeadlockMonitor {
            stop,
            scans,
            handle: Some(handle),
        }
    }

    /// Number of full cycle-detection scans the monitor has run so far
    /// (skipped ticks — unchanged version, nothing pending — not included).
    pub fn scan_count(&self) -> u64 {
        self.scans.load(Ordering::Relaxed)
    }

    /// Asks the monitor thread to exit at its next tick.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

impl Drop for DeadlockMonitor {
    fn drop(&mut self) {
        self.stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for DeadlockMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeadlockMonitor")
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

/// The monitor's next sleep interval, derived from `base` (the configured
/// tick) and the registry's current shape:
///
/// * **probed edges exist** (or a candidate cycle awaits confirmation): the
///   effective graph can flip without the version moving, so scan fast —
///   `base / 5`, floored at 1ms.  A forming deadlock is confirmed (and, under
///   `Break`, unwound) in a fraction of the base interval.
/// * **registry empty, nothing pending**: back off exponentially — double
///   `current` each idle round up to `10 * base` (100ms at the default 10ms
///   tick).  An idle runtime's monitor wakes ten times a second instead of a
///   hundred.
/// * otherwise (unprobed edges live): hold the base interval; registrations
///   bump the version, so ordinary scans stay cheap skips.
///
/// Pure so the schedule is unit-testable without a thread.
pub fn adaptive_tick(
    base: Duration,
    probed_or_pending: bool,
    idle: bool,
    current: Duration,
) -> Duration {
    let fast_floor = Duration::from_millis(1);
    let idle_cap = base.saturating_mul(10);
    if probed_or_pending {
        (base / 5).max(fast_floor)
    } else if idle {
        current.saturating_mul(2).clamp(base, idle_cap)
    } else {
        base
    }
}

fn monitor_loop(
    registry: &Arc<WaitRegistry>,
    tick: Duration,
    break_cycles: bool,
    stop: &AtomicBool,
    scans: &AtomicU64,
    on_report: &dyn Fn(&DeadlockReport),
) {
    // Cycles seen on the previous scan, awaiting confirmation.
    let mut candidates: HashSet<Vec<EdgeId>> = HashSet::new();
    // Cycles already reported; keyed by edge ids, which are never reused, so
    // one concrete deadlock instance is reported exactly once.
    let mut reported: HashSet<Vec<EdgeId>> = HashSet::new();
    let mut scanned_version = u64::MAX;
    let mut interval = tick;
    while !stop.load(Ordering::Acquire) {
        interval = adaptive_tick(
            tick,
            registry.has_probed_edges() || !candidates.is_empty(),
            registry.edge_count() == 0,
            interval,
        );
        std::thread::sleep(interval);
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Incremental: skip the scan while the edge set is unchanged and no
        // candidate awaits confirmation.  (With candidates pending we must
        // rescan even at the same version — an unchanged registry is exactly
        // what confirms a deadlock.  And while *probed* edges exist, the
        // effective graph can change without the version moving, so those
        // keep the scanner ticking too.)
        let version = registry.version();
        if version == scanned_version && candidates.is_empty() && !registry.has_probed_edges() {
            continue;
        }
        scanned_version = version;
        scans.fetch_add(1, Ordering::Relaxed);
        // Prune reported-cycle memory whose edges are all gone: ids are
        // never reused, so a pruned key can never suppress a fresh cycle,
        // and the set stays bounded by the number of *live* deadlocks.
        reported.retain(|key| key.iter().any(|&edge| registry.edge_exists(edge)));
        let mut next_candidates = HashSet::new();
        for report in registry.scan() {
            let key = report.cycle_key();
            if reported.contains(&key) {
                continue;
            }
            if candidates.contains(&key) {
                // Seen on two consecutive scans with identical edges:
                // confirmed.
                reported.insert(key);
                qs_obs::trace(
                    qs_obs::TraceKind::DeadlockReport,
                    report.edges.len() as u64,
                    0,
                );
                on_report(&report);
                if break_cycles {
                    if let Some(edge) = report.breakable_edge() {
                        registry.break_edge(edge.id);
                    }
                }
            } else {
                next_candidates.insert(key);
            }
        }
        candidates = next_candidates;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn acyclic_edges_report_nothing() {
        let registry = WaitRegistry::new();
        let a = registry.participant("a");
        let b = registry.participant("b");
        let c = registry.participant("c");
        let _ab = registry.register(a, b, EdgeKind::Query, None, None);
        let _bc = registry.register(b, c, EdgeKind::MailboxPush, None, None);
        assert!(registry.scan().is_empty());
        assert_eq!(registry.edge_count(), 2);
    }

    #[test]
    fn a_cycle_is_reported_with_labels_and_kinds() {
        let registry = WaitRegistry::new();
        let a = registry.participant("handler-a");
        let b = registry.participant("handler-b");
        let _ab = registry.register(a, b, EdgeKind::MailboxPush, None, None);
        let _ba = registry.register(b, a, EdgeKind::Serving, None, None);
        let reports = registry.scan();
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!(report.edges.len(), 2);
        let mut participants = report.participants();
        participants.sort_unstable();
        assert_eq!(participants, vec!["handler-a", "handler-b"]);
        assert!(report.kinds().contains(&EdgeKind::MailboxPush));
        assert!(report.kinds().contains(&EdgeKind::Serving));
        assert_eq!(
            report.breakable_edge().map(|edge| edge.kind),
            Some(EdgeKind::MailboxPush)
        );
        let text = report.to_string();
        assert!(text.contains("handler-a"), "{text}");
        assert!(text.contains("mailbox-push"), "{text}");
    }

    #[test]
    fn reports_carry_timestamps_ages_and_render_richly() {
        let registry = WaitRegistry::new();
        let a = registry.participant("handler-a");
        let b = registry.participant("handler-b");
        let _ab = registry.register(a, b, EdgeKind::MailboxPush, None, None);
        std::thread::sleep(Duration::from_millis(5));
        let _ba = registry.register(b, a, EdgeKind::Serving, None, None);
        let report = registry.scan().remove(0);
        assert!(report.detected_at <= SystemTime::now());
        let push = report
            .edges
            .iter()
            .find(|edge| edge.kind == EdgeKind::MailboxPush)
            .expect("push edge on the cycle");
        let serving = report
            .edges
            .iter()
            .find(|edge| edge.kind == EdgeKind::Serving)
            .expect("serving edge on the cycle");
        assert!(push.age >= Duration::from_millis(5), "{:?}", push.age);
        assert!(
            serving.age <= push.age,
            "the later-registered edge is younger"
        );
        let text = report.to_string();
        assert!(text.contains("2-party wait cycle"), "{text}");
        assert!(text.contains("detected at unix"), "{text}");
        assert!(text.contains("breakable"), "{text}");
        assert!(text.contains("blocked for"), "{text}");
    }

    #[test]
    fn flight_recorder_attaches_under_full_tracing() {
        let registry = WaitRegistry::new();
        let a = registry.participant("a");
        let b = registry.participant("b");
        let _ab = registry.register(a, b, EdgeKind::Query, None, None);
        let _ba = registry.register(b, a, EdgeKind::Query, None, None);
        qs_obs::set_mode(qs_obs::ObservabilityMode::Full);
        qs_obs::trace(qs_obs::TraceKind::GuardSignal, 7, 1);
        let report = registry.scan().remove(0);
        qs_obs::set_mode(qs_obs::ObservabilityMode::Off);
        assert!(
            !report.flight_recorder.is_empty(),
            "full tracing attaches the recorder"
        );
        assert!(report.to_string().contains("flight recorder"), "{report}");
    }

    #[test]
    fn dropping_a_guard_dissolves_the_cycle() {
        let registry = WaitRegistry::new();
        let a = registry.participant("a");
        let b = registry.participant("b");
        let ab = registry.register(a, b, EdgeKind::Query, None, None);
        let _ba = registry.register(b, a, EdgeKind::Query, None, None);
        assert_eq!(registry.scan().len(), 1);
        let version = registry.version();
        drop(ab);
        assert!(registry.version() > version, "removal bumps the version");
        assert!(registry.scan().is_empty());
        assert_eq!(registry.edge_count(), 1);
    }

    #[test]
    fn probes_veto_stale_edges() {
        let registry = WaitRegistry::new();
        let a = registry.participant("a");
        let b = registry.participant("b");
        let valid = Arc::new(AtomicBool::new(true));
        let probe_valid = Arc::clone(&valid);
        let _ab = registry.register(
            a,
            b,
            EdgeKind::MailboxPush,
            None,
            Some(Arc::new(move || probe_valid.load(Ordering::Acquire)) as ProbeFn),
        );
        let _ba = registry.register(b, a, EdgeKind::MailboxPush, None, None);
        assert_eq!(registry.scan().len(), 1);
        valid.store(false, Ordering::Release);
        assert!(
            registry.scan().is_empty(),
            "a probed-out edge cannot complete a cycle"
        );
    }

    #[test]
    fn break_edge_sets_the_token_and_fires_the_waker() {
        let registry = WaitRegistry::new();
        let a = registry.participant("a");
        let b = registry.participant("b");
        let wakes = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&wakes);
        let guard = registry.register(
            a,
            b,
            EdgeKind::MailboxPush,
            Some(Arc::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }) as WakerFn),
            None,
        );
        assert!(!guard.is_broken());
        assert!(registry.break_edge(guard.id()));
        assert!(guard.is_broken());
        assert_eq!(wakes.load(Ordering::SeqCst), 1);
        let id = guard.id();
        drop(guard);
        assert!(!registry.break_edge(id), "a removed edge cannot be broken");
    }

    #[test]
    fn three_party_cycle_is_one_report() {
        let registry = WaitRegistry::new();
        let a = registry.participant("a");
        let b = registry.participant("b");
        let c = registry.participant("c");
        let _ab = registry.register(a, b, EdgeKind::MailboxPush, None, None);
        let _bc = registry.register(b, c, EdgeKind::MailboxPush, None, None);
        let _ca = registry.register(c, a, EdgeKind::MailboxPush, None, None);
        let reports = registry.scan();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].edges.len(), 3);
        // Cycle order is consistent: each edge's owner is the next waiter.
        let edges = &reports[0].edges;
        for (index, edge) in edges.iter().enumerate() {
            assert_eq!(edge.owner, edges[(index + 1) % edges.len()].waiter);
        }
    }

    #[test]
    fn edge_disjoint_cycles_sharing_a_node_are_all_reported() {
        // c waits on both h1 and h2 (a multi-handler reservation), and each
        // handler waits back on c: two distinct cycles through the shared
        // node c.  Neither may shadow the other.
        let registry = WaitRegistry::new();
        let c = registry.participant("client");
        let h1 = registry.participant("handler-1");
        let h2 = registry.participant("handler-2");
        let _c1 = registry.register(c, h1, EdgeKind::ReserveWait, None, None);
        let _h1c = registry.register(h1, c, EdgeKind::MailboxPush, None, None);
        let _c2 = registry.register(c, h2, EdgeKind::ReserveWait, None, None);
        let _h2c = registry.register(h2, c, EdgeKind::MailboxPush, None, None);
        let reports = registry.scan();
        assert_eq!(reports.len(), 2, "{reports:?}");
        let mut owners: Vec<String> = reports
            .iter()
            .flat_map(|report| report.edges.iter())
            .filter(|edge| edge.kind == EdgeKind::ReserveWait)
            .map(|edge| edge.owner_label.clone())
            .collect();
        owners.sort_unstable();
        assert_eq!(owners, vec!["handler-1", "handler-2"]);
    }

    #[test]
    fn monitor_confirms_then_reports_and_breaks() {
        let registry = WaitRegistry::new();
        let a = registry.participant("a");
        let b = registry.participant("b");
        let ab = registry.register(a, b, EdgeKind::MailboxPush, None, None);
        let ba = registry.register(b, a, EdgeKind::MailboxPush, None, None);
        let reports: Arc<Mutex<Vec<DeadlockReport>>> = Arc::default();
        let sink = Arc::clone(&reports);
        let monitor = DeadlockMonitor::spawn(
            Arc::clone(&registry),
            Duration::from_millis(2),
            true,
            move |report| sink.lock().unwrap().push(report.clone()),
        );
        // Two scans to confirm, a few ticks of slack.
        for _ in 0..500 {
            if !reports.lock().unwrap().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let collected = reports.lock().unwrap().clone();
        assert_eq!(collected.len(), 1, "confirmed cycle reported exactly once");
        assert!(
            ab.is_broken() || ba.is_broken(),
            "one push edge of the confirmed cycle carries the break token"
        );
        drop(monitor);
    }

    #[test]
    fn adaptive_tick_schedule() {
        let base = Duration::from_millis(10);
        // Probed edges / pending candidates: fast scan, 1ms floor.
        assert_eq!(
            adaptive_tick(base, true, false, base),
            Duration::from_millis(2)
        );
        assert_eq!(
            adaptive_tick(Duration::from_millis(4), true, false, base),
            Duration::from_millis(1),
            "fast interval is floored at 1ms"
        );
        // Idle: exponential back-off toward 10x base, then capped there.
        let mut current = base;
        let mut seen = Vec::new();
        for _ in 0..6 {
            current = adaptive_tick(base, false, true, current);
            seen.push(current.as_millis());
        }
        assert_eq!(seen, vec![20, 40, 80, 100, 100, 100]);
        // Recovery: a fast tick followed by live unprobed edges returns to
        // base (never below it, never stuck at the idle cap).
        let fast = adaptive_tick(base, true, false, base);
        assert_eq!(adaptive_tick(base, false, false, fast), base);
        assert_eq!(adaptive_tick(base, false, false, base * 10), base);
        // Idle growth restarts from base even when entered at the floor.
        assert_eq!(adaptive_tick(base, false, true, fast), base);
    }

    #[test]
    fn monitor_counts_scans_and_skips_when_idle() {
        let registry = WaitRegistry::new();
        let monitor = DeadlockMonitor::spawn(
            Arc::clone(&registry),
            Duration::from_millis(1),
            false,
            |_| {},
        );
        // Empty registry at an unchanged version: ticks are skipped, not
        // scanned.  The first tick scans once (version 0 != u64::MAX).
        std::thread::sleep(Duration::from_millis(40));
        let idle_scans = monitor.scan_count();
        assert!(idle_scans <= 1, "idle ticks must skip, saw {idle_scans}");
        // A probed edge forces a scan per tick.
        let a = registry.participant("a");
        let b = registry.participant("b");
        let probed = registry.register(
            a,
            b,
            EdgeKind::ReadWait,
            None,
            Some(Arc::new(|| true) as ProbeFn),
        );
        std::thread::sleep(Duration::from_millis(40));
        let busy_scans = monitor.scan_count();
        assert!(
            busy_scans > idle_scans,
            "probed edges must keep the scanner ticking"
        );
        drop(probed);
        drop(monitor);
    }

    #[test]
    fn reader_writer_cycle_is_reported_and_read_wait_is_breakable() {
        // Client X holds read(B) and blocks acquiring read(A); handler A is
        // blocked on a query against B (a client-executed call chain); B's
        // writer is blocked behind X's read hold.  Classic 3-party
        // reader/writer cycle over the new edge kinds.
        let registry = WaitRegistry::new();
        let x = registry.participant("client-x");
        let a = registry.participant("handler-a");
        let b = registry.participant("handler-b");
        let xa = registry.register(x, a, EdgeKind::ReadWait, None, None);
        let _ab = registry.register(a, b, EdgeKind::Query, None, None);
        let _bx = registry.register(b, x, EdgeKind::WriterWait, None, None);
        let reports = registry.scan();
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!(report.edges.len(), 3);
        assert!(report.kinds().contains(&EdgeKind::ReadWait));
        assert!(report.kinds().contains(&EdgeKind::WriterWait));
        assert_eq!(
            report.breakable_edge().map(|edge| edge.kind),
            Some(EdgeKind::ReadWait),
            "the read acquisition is the only breakable edge on the cycle"
        );
        assert!(!EdgeKind::WriterWait.breakable());
        let text = report.to_string();
        assert!(text.contains("read-wait"), "{text}");
        assert!(text.contains("writer-wait"), "{text}");
        drop(xa);
    }

    #[test]
    fn monitor_does_not_report_transient_cycles() {
        let registry = WaitRegistry::new();
        let a = registry.participant("a");
        let b = registry.participant("b");
        let reports: Arc<Mutex<Vec<DeadlockReport>>> = Arc::default();
        let sink = Arc::clone(&reports);
        let monitor = DeadlockMonitor::spawn(
            Arc::clone(&registry),
            Duration::from_millis(20),
            false,
            move |report| sink.lock().unwrap().push(report.clone()),
        );
        // Rapidly create and destroy cycles: each lives well under one tick,
        // so no cycle can be seen by two consecutive scans.
        for _ in 0..50 {
            let ab = registry.register(a, b, EdgeKind::Query, None, None);
            let ba = registry.register(b, a, EdgeKind::Query, None, None);
            std::thread::sleep(Duration::from_millis(1));
            drop(ab);
            drop(ba);
        }
        std::thread::sleep(Duration::from_millis(80));
        assert!(
            reports.lock().unwrap().is_empty(),
            "sub-tick cycles must not be reported"
        );
        drop(monitor);
    }
}
