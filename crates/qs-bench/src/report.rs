//! Small formatting/statistics helpers shared by the harness.

/// Geometric mean of a slice of positive numbers (0.0 for an empty slice).
///
/// The paper summarises both evaluations with geometric means (§4.4, §5.4).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints a simple aligned table: a header row followed by labelled rows.
pub fn print_table(title: &str, header: &[String], rows: &[(String, Vec<String>)]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for (label, cells) in rows {
        widths[0] = widths[0].max(label.len());
        for (i, cell) in cells.iter().enumerate() {
            if i + 1 < widths.len() {
                widths[i + 1] = widths[i + 1].max(cell.len());
            }
        }
    }
    let print_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", line.join("  "));
    };
    print_row(header);
    for (label, cells) in rows {
        let mut line = vec![label.clone()];
        line.extend(cells.iter().cloned());
        print_row(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basic_cases() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        print_table(
            "demo",
            &["task".into(), "a".into(), "b".into()],
            &[
                ("x".into(), vec!["1".into(), "2".into()]),
                ("longer-name".into(), vec!["3".into()]),
            ],
        );
    }
}
