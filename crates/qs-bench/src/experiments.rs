//! The experiment definitions: one function per table/figure of the paper,
//! plus the handler-scheduling sweep behind `BENCH_scheduler.json`.

use std::time::{Duration, Instant};

use qs_baselines::Paradigm;
use qs_runtime::{reserve, OptimizationLevel, Runtime, RuntimeConfig, SchedulerMode, WaitConfig};
use qs_workloads::concurrent::{
    run_concurrent, run_concurrent_scoop, ConcurrentParams, ConcurrentTask,
};
use qs_workloads::types::{CowichanParams, ParallelTask};
use qs_workloads::{run_parallel, run_parallel_scoop};

/// How large the problem instances should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast instances for CI / smoke runs (seconds in total).
    Quick,
    /// The default benchmark scale (a few minutes in total).
    Standard,
    /// The paper's full parameters (hours; requires a large machine).
    Paper,
}

impl Scale {
    /// Parses a scale name; unknown names fall back to `Quick`.
    pub fn parse(name: &str) -> Scale {
        match name {
            "standard" => Scale::Standard,
            "paper" => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// The Cowichan parameters for this scale.
    pub fn cowichan(&self, threads: usize) -> CowichanParams {
        match self {
            Scale::Quick => CowichanParams {
                threads,
                ..CowichanParams::small()
            },
            Scale::Standard => CowichanParams::bench(threads),
            Scale::Paper => CowichanParams::paper(threads),
        }
    }

    /// The coordination-benchmark parameters for this scale.
    pub fn concurrent(&self) -> ConcurrentParams {
        match self {
            Scale::Quick => ConcurrentParams::tiny(),
            Scale::Standard => ConcurrentParams::bench(),
            Scale::Paper => ConcurrentParams::paper(),
        }
    }

    /// Thread counts for the scalability sweep (Fig. 19).
    pub fn thread_sweep(&self) -> Vec<usize> {
        let max = qs_exec::default_parallelism();
        let mut sweep = vec![1, 2, 4, 8, 16, 32];
        sweep.retain(|&t| t <= max.max(2));
        if matches!(self, Scale::Quick) {
            sweep.truncate(3);
        }
        sweep
    }
}

/// One labelled series of measurements (a row of a table / a line of a plot).
#[derive(Debug, Clone)]
pub struct Series {
    /// Row label (task name, language name, …).
    pub label: String,
    /// Column labels (optimisation level, paradigm, thread count, …).
    pub columns: Vec<String>,
    /// One measurement per column.
    pub values: Vec<f64>,
}

impl Series {
    /// Creates a series from parallel label/value vectors.
    pub fn new(label: impl Into<String>, columns: Vec<String>, values: Vec<f64>) -> Self {
        Series {
            label: label.into(),
            columns,
            values,
        }
    }

    /// Values normalised to the smallest entry (the format of Table 1).
    pub fn normalized(&self) -> Vec<f64> {
        let min = self
            .values
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .max(f64::MIN_POSITIVE);
        self.values.iter().map(|v| v / min).collect()
    }
}

fn seconds(duration: Duration) -> f64 {
    duration.as_secs_f64()
}

/// Table 1 / Fig. 16: communication time of each parallel task under each
/// optimisation level (values in seconds; Table 1 normalises per row).
pub fn table1_opt_parallel(scale: Scale, threads: usize) -> Vec<Series> {
    let params = scale.cowichan(threads);
    let columns: Vec<String> = OptimizationLevel::ALL
        .iter()
        .map(|l| l.to_string())
        .collect();
    ParallelTask::ALL
        .iter()
        .map(|&task| {
            let values = OptimizationLevel::ALL
                .iter()
                .map(|&level| seconds(run_parallel_scoop(task, level, &params).communicate))
                .collect();
            Series::new(task.name(), columns.clone(), values)
        })
        .collect()
}

/// Table 2 / Fig. 17: wall-clock time of each concurrent task under each
/// optimisation level (seconds).
pub fn table2_opt_concurrent(scale: Scale) -> Vec<Series> {
    let params = scale.concurrent();
    let columns: Vec<String> = OptimizationLevel::ALL
        .iter()
        .map(|l| l.to_string())
        .collect();
    ConcurrentTask::ALL
        .iter()
        .map(|&task| {
            let values = OptimizationLevel::ALL
                .iter()
                .map(|&level| seconds(run_concurrent_scoop(task, level, &params)))
                .collect();
            Series::new(task.name(), columns.clone(), values)
        })
        .collect()
}

/// Table 4 / Fig. 18: total and compute-only times of each parallel task
/// under each paradigm at a fixed thread count (seconds).  Returns
/// `(total, compute)` series per task.
pub fn table4_lang_parallel(scale: Scale, threads: usize) -> Vec<(Series, Series)> {
    let params = scale.cowichan(threads);
    let columns: Vec<String> = Paradigm::ALL.iter().map(|p| p.to_string()).collect();
    ParallelTask::ALL
        .iter()
        .map(|&task| {
            let runs: Vec<_> = Paradigm::ALL
                .iter()
                .map(|&paradigm| run_parallel(task, paradigm, &params))
                .collect();
            let totals = runs.iter().map(|r| seconds(r.total())).collect();
            let computes = runs.iter().map(|r| seconds(r.compute)).collect();
            (
                Series::new(format!("{task} (total)"), columns.clone(), totals),
                Series::new(format!("{task} (compute)"), columns.clone(), computes),
            )
        })
        .collect()
}

/// Fig. 19: speedup of each paradigm on each task over the thread sweep.
/// Returns one series per (task, paradigm) with one value per thread count.
pub fn fig19_scalability(scale: Scale, tasks: &[ParallelTask]) -> Vec<Series> {
    let sweep = scale.thread_sweep();
    let columns: Vec<String> = sweep.iter().map(|t| format!("{t} threads")).collect();
    let mut series = Vec::new();
    for &task in tasks {
        for &paradigm in &Paradigm::ALL {
            let mut times = Vec::new();
            for &threads in &sweep {
                let params = scale.cowichan(threads);
                times.push(seconds(run_parallel(task, paradigm, &params).total()));
            }
            let base = times[0].max(f64::MIN_POSITIVE);
            let speedups = times
                .iter()
                .map(|t| base / t.max(f64::MIN_POSITIVE))
                .collect();
            series.push(Series::new(
                format!("{task} / {paradigm}"),
                columns.clone(),
                speedups,
            ));
        }
    }
    series
}

/// Table 5 / Fig. 20: wall-clock time of each concurrent task under each
/// paradigm (seconds).
pub fn table5_lang_concurrent(scale: Scale) -> Vec<Series> {
    let params = scale.concurrent();
    let columns: Vec<String> = Paradigm::ALL.iter().map(|p| p.to_string()).collect();
    ConcurrentTask::ALL
        .iter()
        .map(|&task| {
            let values = Paradigm::ALL
                .iter()
                .map(|&paradigm| seconds(run_concurrent(task, paradigm, &params)))
                .collect();
            Series::new(task.name(), columns.clone(), values)
        })
        .collect()
}

/// Percentile digest of one latency histogram, in nanoseconds.  All zeros
/// when the run recorded no samples (observability off).
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Recorded samples.
    pub samples: u64,
    /// Median latency.
    pub p50_ns: u64,
    /// 95th-percentile latency.
    pub p95_ns: u64,
    /// 99th-percentile latency.
    pub p99_ns: u64,
    /// Worst observed latency.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Digests a histogram snapshot into the standard percentile set.
    pub fn from_histogram(snap: &qs_obs::HistogramSnapshot) -> LatencySummary {
        LatencySummary {
            samples: snap.count,
            p50_ns: snap.percentile(50.0),
            p95_ns: snap.percentile(95.0),
            p99_ns: snap.percentile(99.0),
            max_ns: snap.max,
        }
    }
}

/// One measured point of the handler-count scaling sweep: `handlers` live
/// handlers under one scheduling mode, each receiving one fan-out block of
/// asynchronous calls followed by a fan-in query.
#[derive(Debug, Clone)]
pub struct SchedulerPoint {
    /// Scheduling mode label ("Dedicated" / "Pooled").
    pub mode: String,
    /// Pool workers (0 for dedicated threads).
    pub workers: usize,
    /// Concurrently live handlers.
    pub handlers: usize,
    /// Requests executed during the measured window.
    pub requests: u64,
    /// Wall-clock time of fan-out + fan-in.
    pub elapsed: Duration,
    /// Requests per second over the measured window.
    pub requests_per_sec: f64,
    /// Highest OS thread count of the process observed during the point.
    pub peak_process_threads: usize,
    /// Scheduler-side worker-thread high-water (0 for dedicated).
    pub peak_scheduler_threads: usize,
    /// Enqueue→execute latency distribution over the point
    /// (`request.enqueue_to_execute_ns`).
    pub latency: LatencySummary,
}

/// Current OS thread count of this process (`/proc/self/status`); 0 when the
/// platform does not expose it.
pub fn process_threads() -> usize {
    let status = match std::fs::read_to_string("/proc/self/status") {
        Ok(status) => status,
        Err(_) => return 0,
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or(0)
}

/// Runs one sweep point: spawns `handlers` handlers, fans one block of
/// `calls_per_handler` calls out to every handler from four client threads,
/// fans the results back in with one query per handler, and verifies the
/// total before reporting.
pub fn scheduler_point(
    mode: SchedulerMode,
    handlers: usize,
    calls_per_handler: usize,
) -> SchedulerPoint {
    // Counters keep the sweep honest about latency percentiles at a cost
    // the overhead gate proves is within noise of Off.
    scheduler_point_with_observability(
        mode,
        handlers,
        calls_per_handler,
        qs_obs::ObservabilityMode::Counters,
    )
}

/// [`scheduler_point`] with an explicit observability mode, for the
/// instrumentation-overhead gate: `Off` measures the uninstrumented
/// baseline, `Full` the worst case with tracing armed.
pub fn scheduler_point_with_observability(
    mode: SchedulerMode,
    handlers: usize,
    calls_per_handler: usize,
    observability: qs_obs::ObservabilityMode,
) -> SchedulerPoint {
    // The ambient mode only ratchets up through `Runtime::new`; benches pin
    // it per point so an earlier `Full` cell cannot leak into an `Off` one.
    qs_obs::set_mode(observability);
    let latency_hist = qs_obs::registry().histogram("request.enqueue_to_execute_ns");
    latency_hist.reset();
    let rt = Runtime::new(
        RuntimeConfig::all_optimizations()
            .with_scheduler(mode)
            .with_observability(observability),
    );
    let fleet: Vec<_> = (0..handlers).map(|_| rt.spawn_handler(0u64)).collect();
    let baseline = rt.stats_snapshot();
    // With dedicated threads the whole fleet is alive right now; sample
    // before the work so that cost is visible.
    let mut peak_threads = process_threads();

    let start = Instant::now();
    let clients = 4.min(handlers).max(1);
    std::thread::scope(|scope| {
        for client in 0..clients {
            let fleet = &fleet;
            scope.spawn(move || {
                for handler in fleet.iter().skip(client).step_by(clients) {
                    handler.separate(|s| {
                        for _ in 0..calls_per_handler {
                            s.call(|n| *n += 1);
                        }
                    });
                }
            });
        }
    });
    peak_threads = peak_threads.max(process_threads());
    // Fan-in: one query per handler proves every logged call was applied.
    let total: u64 = fleet.iter().map(|h| h.query_detached(|n| *n)).sum();
    let elapsed = start.elapsed();
    peak_threads = peak_threads.max(process_threads());
    assert_eq!(
        total,
        (handlers * calls_per_handler) as u64,
        "sweep point lost requests ({mode:?}, {handlers} handlers)"
    );

    let snap = rt.stats_snapshot().since(&baseline);
    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    let point = SchedulerPoint {
        mode: mode.label().to_string(),
        workers: mode.effective_workers().unwrap_or(0),
        handlers,
        requests: snap.requests_executed,
        elapsed,
        requests_per_sec: snap.requests_executed as f64 / secs,
        peak_process_threads: peak_threads,
        peak_scheduler_threads: rt.scheduler_peak_threads(),
        latency: LatencySummary::from_histogram(&latency_hist.snapshot()),
    };
    drop(fleet);
    point
}

/// The handler-count sweep behind `BENCH_scheduler.json`: dedicated versus
/// pooled at each count in `counts`.  Dedicated points above
/// `dedicated_cap` are skipped (tens of thousands of concurrent OS threads
/// are exactly the configuration the pooled scheduler exists to avoid, and
/// not every CI box survives them).
pub fn scheduler_sweep(counts: &[usize], dedicated_cap: usize) -> Vec<SchedulerPoint> {
    let mut points = Vec::new();
    for &handlers in counts {
        if handlers <= dedicated_cap {
            points.push(scheduler_point(SchedulerMode::Dedicated, handlers, 10));
        }
        points.push(scheduler_point(
            SchedulerMode::Pooled { workers: 0 },
            handlers,
            10,
        ));
    }
    points
}

/// One measured point of the sustained-backpressure experiment: `pipelines`
/// client/handler pairs, each client logging `blocks` separate blocks of
/// `calls_per_block` asynchronous calls into a capacity-`capacity` mailbox
/// with `calls_per_block` ≫ `capacity`, so every block spends most of its
/// life with the producer blocked on a full ring.
#[derive(Debug, Clone)]
pub struct BackpressurePoint {
    /// Scheduling mode label ("Dedicated" / "Pooled").
    pub mode: String,
    /// Pool workers (0 for dedicated threads).
    pub workers: usize,
    /// Requests executed during the measured window.
    pub requests: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Requests per second over the measured window.
    pub requests_per_sec: f64,
    /// Producer enqueues that had to block for mailbox space.
    pub backpressure_stalls: u64,
    /// Pressure wakes fired by producers at/past the mailbox watermark.
    pub pressure_wakes: u64,
    /// Yield budgets shrunk under mailbox backpressure.
    pub budget_shrinks: u64,
}

/// Parameters of the sustained-backpressure experiment (shared by the bench
/// sweep and the CI smoke gate so they measure the same thing).
pub const BACKPRESSURE_CAPACITY: usize = 8;
/// Client/handler pairs; deliberately more than the 1-worker pool.
pub const BACKPRESSURE_PIPELINES: usize = 4;
/// Calls per separate block — ≫ the mailbox capacity, the "sustained" part.
pub const BACKPRESSURE_CALLS_PER_BLOCK: usize = 400;

/// Runs the sustained-backpressure workload under one scheduling mode and
/// reports its throughput.  The pooled mode is measured on a deliberately
/// *undersized* pool (`workers: 1` against [`BACKPRESSURE_PIPELINES`]
/// pipelines): that is the configuration where ring-sized service bursts
/// used to collapse to ~0.4× dedicated throughput.
pub fn backpressure_point(mode: SchedulerMode, blocks: usize) -> BackpressurePoint {
    let rt = Runtime::new(
        RuntimeConfig::all_optimizations()
            .with_mailbox_capacity(Some(BACKPRESSURE_CAPACITY))
            .with_scheduler(mode),
    );
    let handlers: Vec<_> = (0..BACKPRESSURE_PIPELINES)
        .map(|_| rt.spawn_handler(0u64))
        .collect();
    let baseline = rt.stats_snapshot();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for handler in &handlers {
            scope.spawn(move || {
                for _ in 0..blocks {
                    handler.separate(|s| {
                        for _ in 0..BACKPRESSURE_CALLS_PER_BLOCK {
                            s.call(|n| *n += 1);
                        }
                    });
                }
            });
        }
    });
    let total: u64 = handlers.iter().map(|h| h.query_detached(|n| *n)).sum();
    let elapsed = start.elapsed();
    assert_eq!(
        total,
        (BACKPRESSURE_PIPELINES * blocks * BACKPRESSURE_CALLS_PER_BLOCK) as u64,
        "backpressure point lost requests ({mode:?})"
    );
    let snap = rt.stats_snapshot().since(&baseline);
    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    BackpressurePoint {
        mode: mode.label().to_string(),
        workers: mode.effective_workers().unwrap_or(0),
        requests: snap.requests_executed,
        elapsed,
        requests_per_sec: snap.requests_executed as f64 / secs,
        backpressure_stalls: snap.backpressure_stalls,
        pressure_wakes: snap.pressure_wakes,
        budget_shrinks: snap.budget_shrinks,
    }
}

/// The sustained-backpressure comparison: dedicated threads versus the
/// 1-worker pool, plus the pooled/dedicated throughput ratio.  Each mode is
/// measured `rounds` times and the best run kept (the experiment is
/// latency-dominated and a single descheduling hiccup should not decide the
/// recorded figure).
pub fn backpressure_sweep(blocks: usize, rounds: usize) -> (BackpressurePoint, BackpressurePoint) {
    let best = |mode| {
        (0..rounds.max(1))
            .map(|_| backpressure_point(mode, blocks))
            .max_by(|a, b| a.requests_per_sec.total_cmp(&b.requests_per_sec))
            .expect("at least one round")
    };
    let dedicated = best(SchedulerMode::Dedicated);
    let pooled = best(SchedulerMode::Pooled { workers: 1 });
    (dedicated, pooled)
}

// ---------------------------------------------------------------------------
// Guarded waits: event-driven parking versus the retry-polling baseline
// ---------------------------------------------------------------------------

/// Which wait loop `reserve(...).when(...)` runs in a wait experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitStrategy {
    /// The default event-driven loop: park on the handlers' guard-waiter
    /// registries, resume on signals.
    Parked,
    /// The legacy retry-polling loop, forced through a bounded-attempt
    /// policy (`max_retries: usize::MAX` never fires, but its presence
    /// selects the polling path) — the differential baseline.
    Polling,
}

impl WaitStrategy {
    /// Display label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            WaitStrategy::Parked => "parked",
            WaitStrategy::Polling => "polling",
        }
    }

    /// The `WaitConfig` selecting this strategy.
    pub fn config(self) -> WaitConfig {
        match self {
            WaitStrategy::Parked => WaitConfig::default(),
            WaitStrategy::Polling => WaitConfig {
                max_retries: Some(usize::MAX),
                ..WaitConfig::default()
            },
        }
    }
}

/// Gap between producer state changes in the resume-latency experiment —
/// long enough that the waiter is parked (or deep in the polling loop's
/// sleep phase) when the change lands.
pub const WAIT_LATENCY_GAP: Duration = Duration::from_millis(1);

/// One measured point of the wake-latency experiment: a single waiter
/// chasing a producer that advances the condition every
/// [`WAIT_LATENCY_GAP`], measuring state-change-to-body latency per round.
#[derive(Debug, Clone)]
pub struct WaitLatencyPoint {
    /// Scheduling mode label ("Dedicated" / "Pooled").
    pub mode: String,
    /// Wait strategy label ("parked" / "polling").
    pub strategy: String,
    /// Measured rounds.
    pub rounds: usize,
    /// Median latency from the handler applying the state change to the
    /// waiter's body observing it, in microseconds.
    pub median_resume_micros: f64,
    /// 95th-percentile resume latency in microseconds.
    pub p95_resume_micros: f64,
    /// Condition evaluations over the whole run.
    pub wait_condition_checks: u64,
    /// Wake-ups of parked waiters by guard signals (0 under polling).
    pub guard_wakeups: u64,
}

/// Measures waiter resume latency: the producer stamps the instant the
/// state change is applied on the handler, and the waiter's body reads the
/// stamp's age — signal, unpark, re-reservation and sync included.
pub fn wait_latency_point(
    mode: SchedulerMode,
    strategy: WaitStrategy,
    rounds: usize,
) -> WaitLatencyPoint {
    struct LatencyCell {
        value: u64,
        stamp: Option<Instant>,
    }
    let rt = Runtime::new(RuntimeConfig::all_optimizations().with_scheduler(mode));
    let cell = rt.spawn_handler(LatencyCell {
        value: 0,
        stamp: None,
    });
    let producer = {
        let cell = cell.clone();
        std::thread::spawn(move || {
            for _ in 0..rounds {
                std::thread::sleep(WAIT_LATENCY_GAP);
                cell.call_detached(|c| {
                    c.value += 1;
                    c.stamp = Some(Instant::now());
                });
            }
        })
    };
    let mut resumes_micros: Vec<f64> = Vec::with_capacity(rounds);
    for round in 0..rounds as u64 {
        let resumed = reserve(&cell)
            .when(move |c: &LatencyCell| c.value > round)
            .timeout(strategy.config())
            .try_run(|guard| guard.query(|c| c.stamp.expect("producer stamped").elapsed()))
            .expect("the latency wait never times out");
        resumes_micros.push(resumed.as_secs_f64() * 1e6);
    }
    producer.join().unwrap();
    resumes_micros.sort_by(f64::total_cmp);
    let snap = rt.stats_snapshot();
    WaitLatencyPoint {
        mode: mode.label().to_string(),
        strategy: strategy.label().to_string(),
        rounds,
        median_resume_micros: resumes_micros[rounds / 2],
        p95_resume_micros: resumes_micros[(rounds * 95 / 100).min(rounds - 1)],
        wait_condition_checks: snap.wait_condition_checks,
        guard_wakeups: snap.guard_wakeups,
    }
}

/// Concurrent waiters in the scaling experiment.
pub const WAIT_SCALING_WAITERS: usize = 100;
/// Producer steps driving the scaling experiment's condition true.
pub const WAIT_SCALING_STEPS: u64 = 10;
/// Gap between producer steps — the window in which parked waiters cost
/// nothing and polling waiters burn evaluations.
pub const WAIT_SCALING_STEP_GAP: Duration = Duration::from_millis(35);

/// One measured point of the waiter-scaling experiment:
/// [`WAIT_SCALING_WAITERS`] clients parked on one handler while a producer
/// advances the condition in [`WAIT_SCALING_STEPS`] spaced steps.  The
/// interesting figure is `wait_condition_checks`: O(waiters × signals) when
/// parked, O(waiters × elapsed / 1ms) when polling.
#[derive(Debug, Clone)]
pub struct WaitScalingPoint {
    /// Scheduling mode label ("Dedicated" / "Pooled").
    pub mode: String,
    /// Wait strategy label ("parked" / "polling").
    pub strategy: String,
    /// Concurrent waiters.
    pub waiters: usize,
    /// Wall-clock time until every waiter resolved.
    pub elapsed: Duration,
    /// Condition evaluations over the whole run.
    pub wait_condition_checks: u64,
    /// Conservative guard signals fired by the runtime.
    pub guard_signals: u64,
    /// Wake-ups of parked waiters (0 under polling).
    pub guard_wakeups: u64,
}

/// Runs the waiter-scaling workload under one mode and strategy.
pub fn wait_scaling_point(
    mode: SchedulerMode,
    strategy: WaitStrategy,
    waiters: usize,
) -> WaitScalingPoint {
    let rt = Runtime::new(RuntimeConfig::all_optimizations().with_scheduler(mode));
    let counter = rt.spawn_handler(0u64);
    let start = Instant::now();
    let threads: Vec<_> = (0..waiters)
        .map(|_| {
            let counter = counter.clone();
            std::thread::spawn(move || {
                reserve(&counter)
                    .when(|c: &u64| *c >= WAIT_SCALING_STEPS)
                    .timeout(strategy.config())
                    .try_run(|_| ())
                    .expect("the scaling wait never times out");
            })
        })
        .collect();
    // Let every waiter pass its spin window first, then advance the
    // condition in spaced steps.
    std::thread::sleep(Duration::from_millis(50));
    for _ in 0..WAIT_SCALING_STEPS {
        std::thread::sleep(WAIT_SCALING_STEP_GAP);
        counter.call_detached(|c| *c += 1);
    }
    for thread in threads {
        thread.join().unwrap();
    }
    let elapsed = start.elapsed();
    let snap = rt.stats_snapshot();
    WaitScalingPoint {
        mode: mode.label().to_string(),
        strategy: strategy.label().to_string(),
        waiters,
        elapsed,
        wait_condition_checks: snap.wait_condition_checks,
        guard_signals: snap.guard_signals,
        guard_wakeups: snap.guard_wakeups,
    }
}

// ---------------------------------------------------------------------------
// Shared-read reservations: exclusive vs read-mode clients on one hot handler
// ---------------------------------------------------------------------------

/// One measured cell of the read-reservation experiment: `readers` clients
/// hammering one hot handler, `write_percent` of each client's operations
/// being synced exclusive writes, the rest queries — taken either through
/// exclusive reservations (the baseline: every client serialises on the
/// handler) or through shared-read reservations (`reserve(&h).read()`).
#[derive(Debug, Clone)]
pub struct ReadersPoint {
    /// Client threads.
    pub readers: usize,
    /// Percentage of each client's operations that are exclusive writes.
    pub write_percent: u32,
    /// Whether reads used shared-read reservations (vs exclusive).
    pub shared: bool,
    /// Operations per client.
    pub ops_per_client: usize,
    /// Wall-clock time of the cell.
    pub elapsed: Duration,
    /// Total operations across all clients.
    pub total_ops: u64,
    /// Operations per second over the measured window.
    pub ops_per_sec: f64,
    /// High-water of concurrent gate-read holders (0 in exclusive mode).
    pub peak_concurrent_readers: u64,
    /// Writers that had to wait behind read holders.
    pub writer_waits: u64,
}

/// Runs one cell of the read-reservation experiment.
///
/// The handler owns a `(u64, u64)` pair with the invariant `b == 2 * a`,
/// restored by every write as a whole but broken inside it; every read
/// re-checks the invariant, so the throughput numbers double as a torn-read
/// stress.  Writes are synced exclusive blocks in *both* modes — the
/// experiment varies only how the reads are taken.
pub fn readers_point(
    readers: usize,
    write_percent: u32,
    shared: bool,
    ops_per_client: usize,
) -> ReadersPoint {
    assert!(write_percent <= 100);
    let rt = Runtime::new(RuntimeConfig::all_optimizations());
    let hot = rt.spawn_handler((0u64, 0u64));
    let write_period = 100u32
        .checked_div(write_percent)
        .map_or(usize::MAX, |p| p as usize);
    // In shared mode, start with every client parked on a barrier *inside*
    // its read block: deterministic proof the readers overlap (and an exact
    // `peak_concurrent_readers >= readers` record).  Sampling overlap from
    // the timed loop alone is unreliable — sub-microsecond holds convoy on
    // the contended cache lines and can serialise for thousands of
    // operations at a stretch.
    let rendezvous = std::sync::Barrier::new(readers);

    let start = Instant::now();
    let writes_total: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let hot = &hot;
                let rendezvous = &rendezvous;
                scope.spawn(move || {
                    let mut writes = 0u64;
                    if shared {
                        reserve(hot).read().run(|_| rendezvous.wait());
                    }
                    for op in 0..ops_per_client {
                        if op % write_period == 0 && write_percent > 0 {
                            // Synced exclusive write: applied (and contending
                            // with the read crowd) before the block ends.
                            hot.separate(|s| {
                                s.call(|p| {
                                    p.0 += 1;
                                    p.1 = 2 * p.0;
                                });
                                s.query(|p| p.0)
                            });
                            writes += 1;
                        } else if shared {
                            let pair = reserve(hot).read().run(|r| r.query(|p| *p));
                            assert_eq!(pair.1, 2 * pair.0, "torn read: {pair:?}");
                        } else {
                            let pair = hot.separate(|s| s.query(|p| *p));
                            assert_eq!(pair.1, 2 * pair.0, "torn read: {pair:?}");
                        }
                    }
                    writes
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed = start.elapsed();
    let (final_a, final_b) = hot.query_detached(|p| *p);
    assert_eq!(
        (final_a, final_b),
        (writes_total, 2 * writes_total),
        "readers point lost writes ({readers} readers, {write_percent}% writes, shared={shared})"
    );

    let snap = rt.stats_snapshot();
    let total_ops = (readers * ops_per_client) as u64;
    ReadersPoint {
        readers,
        write_percent,
        shared,
        ops_per_client,
        elapsed,
        total_ops,
        ops_per_sec: total_ops as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        peak_concurrent_readers: snap.peak_concurrent_readers,
        writer_waits: snap.writer_waits,
    }
}

/// The readers × write-ratio grid behind `BENCH_readers.json`: every cell
/// measured with exclusive reads first, then shared reads, so each
/// (readers, write_percent) pair yields a directly comparable ratio.
pub fn readers_sweep(
    reader_counts: &[usize],
    write_percents: &[u32],
    ops: usize,
) -> Vec<ReadersPoint> {
    let mut points = Vec::new();
    for &readers in reader_counts {
        for &write_percent in write_percents {
            points.push(readers_point(readers, write_percent, false, ops));
            points.push(readers_point(readers, write_percent, true, ops));
        }
    }
    points
}

// ---------------------------------------------------------------------------
// Auto-read downgrade: inferred `.read()` lang programs vs hand-written
// ---------------------------------------------------------------------------

/// One cell of the auto-read experiment: the same read-mostly surface
/// program executed three ways — reads through plain exclusive blocks
/// (auto-read off), through a hand-written `separate read` block, or through
/// a plain block the effect-inference pass proved read-only (auto-read on).
/// The inferred column earning the declared column's throughput *and* its
/// `read_reservations` count is the end-to-end proof that the static pass
/// emits the downgrade automatically.
#[derive(Debug, Clone)]
pub struct AutoReadPoint {
    /// `"exclusive"`, `"declared"` or `"inferred"`.
    pub mode: &'static str,
    /// Readings the sensor holds (queries per program iteration ≈ readings + 2).
    pub readings: usize,
    /// Program iterations measured.
    pub iterations: usize,
    /// Wall-clock time of the cell.
    pub elapsed: Duration,
    /// Sensor queries per second across the run.
    pub queries_per_sec: f64,
    /// Shared-read reservations taken across the run (0 in exclusive mode).
    pub read_reservations: u64,
}

/// The read-mostly sensor program of the auto-read experiment; `declared`
/// picks between a hand-written `separate read` block and a plain block left
/// for the effect-inference pass to downgrade.
fn auto_read_source(readings: usize, declared: bool) -> String {
    let keyword = if declared {
        "separate read"
    } else {
        "separate"
    };
    format!(
        "\
class SENSOR
  attribute readings : ARRAY
  attribute samples : INTEGER
  command calibrate(n: INTEGER) local i : INTEGER do
    readings := array(n)
    i := 0
    while i < n loop readings[i] := i * 7 i := i + 1 end
    samples := n
  end
  query at(i: INTEGER) : INTEGER do Result := readings[i] end
  query count : INTEGER do Result := samples end
end

main
  local s : separate SENSOR
  local i : INTEGER
  local n : INTEGER
  local checksum : INTEGER
do
  create s
  separate s do s.calibrate({readings}) end
  {keyword} s do
    n := s.count()
    i := 0
    while i < n loop
      checksum := checksum + s.at(i)
      i := i + 1
    end
  end
  print(checksum)
end
"
    )
}

/// Runs one cell of the auto-read experiment.
pub fn auto_read_point(mode: &'static str, readings: usize, iterations: usize) -> AutoReadPoint {
    use qs_lang::{compile, run_compiled, QueryStrategy};

    let (declared, auto_read) = match mode {
        "exclusive" => (false, false),
        "declared" => (true, false),
        "inferred" => (false, true),
        other => panic!("unknown auto-read mode {other}"),
    };
    let compiled = compile(&auto_read_source(readings, declared)).expect("program compiles");
    if mode == "inferred" {
        assert_eq!(
            compiled.checked.inferred_read_blocks.len(),
            1,
            "the effect pass must prove the query block read-only"
        );
    }
    let expected: i64 = (0..readings as i64).map(|i| i * 7).sum();
    let runtime = Runtime::new(RuntimeConfig::all_optimizations().with_auto_read(auto_read));

    let start = Instant::now();
    let mut read_reservations = 0u64;
    for _ in 0..iterations {
        let output = run_compiled(&compiled, &runtime, QueryStrategy::RuntimeManaged)
            .expect("auto-read cell runs");
        assert_eq!(
            output.printed,
            vec![expected.to_string()],
            "auto-read cell diverged in mode {mode}"
        );
        read_reservations = output.stats.read_reservations;
    }
    let elapsed = start.elapsed();
    let queries = (iterations * (readings + 2)) as u64;
    AutoReadPoint {
        mode,
        readings,
        iterations,
        elapsed,
        queries_per_sec: queries as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        read_reservations,
    }
}

/// The three-mode auto-read comparison behind the `auto` section of
/// `BENCH_readers.json`.
pub fn auto_read_sweep(readings: usize, iterations: usize) -> Vec<AutoReadPoint> {
    ["exclusive", "declared", "inferred"]
        .into_iter()
        .map(|mode| auto_read_point(mode, readings, iterations))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_point_accounts_every_request() {
        for mode in [
            SchedulerMode::Dedicated,
            SchedulerMode::Pooled { workers: 2 },
        ] {
            let point = scheduler_point(mode, 32, 10);
            assert_eq!(point.handlers, 32);
            // 10 calls per handler plus one fan-in query each (client- or
            // handler-executed depending on level; All uses client-executed,
            // so only the calls count as executed requests).
            assert!(point.requests >= 320, "{point:?}");
            assert!(point.requests_per_sec > 0.0);
        }
    }

    #[test]
    fn readers_point_accounts_every_operation() {
        for shared in [false, true] {
            let point = readers_point(2, 10, shared, 200);
            assert_eq!(point.total_ops, 400);
            assert_eq!(point.shared, shared);
            assert!(point.ops_per_sec > 0.0);
        }
        // The opening rendezvous makes the overlap record deterministic.
        let point = readers_point(4, 0, true, 500);
        assert!(
            point.peak_concurrent_readers >= 4,
            "shared cell recorded no reader overlap: {point:?}"
        );
    }

    #[test]
    fn auto_read_cells_agree_and_only_read_modes_reserve_shared() {
        let points = auto_read_sweep(32, 3);
        assert_eq!(points.len(), 3);
        let by_mode = |mode: &str| points.iter().find(|p| p.mode == mode).unwrap();
        assert_eq!(by_mode("exclusive").read_reservations, 0);
        assert!(by_mode("declared").read_reservations > 0);
        assert!(
            by_mode("inferred").read_reservations > 0,
            "the effect pass must emit the .read() downgrade"
        );
        for point in &points {
            assert!(point.queries_per_sec > 0.0);
        }
    }

    #[test]
    fn process_thread_count_is_visible_on_linux() {
        let threads = process_threads();
        if cfg!(target_os = "linux") {
            assert!(threads >= 1, "at least the main thread");
        }
    }

    #[test]
    fn scale_parsing_and_parameters() {
        assert_eq!(Scale::parse("standard"), Scale::Standard);
        assert_eq!(Scale::parse("paper"), Scale::Paper);
        assert_eq!(Scale::parse("anything"), Scale::Quick);
        assert!(Scale::Quick.cowichan(4).nr < Scale::Standard.cowichan(4).nr);
        assert!(!Scale::Quick.thread_sweep().is_empty());
    }

    #[test]
    fn series_normalisation_uses_the_minimum() {
        let s = Series::new("x", vec!["a".into(), "b".into()], vec![2.0, 8.0]);
        assert_eq!(s.normalized(), vec![1.0, 4.0]);
    }
}
