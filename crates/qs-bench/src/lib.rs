//! # qs-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§4 and §5).
//! The [`experiments`] module produces the raw series; the `run_experiments`
//! binary prints them in the same shape as the paper's tables, and the
//! Criterion benches under `benches/` provide statistically sound per-cell
//! measurements.
//!
//! | Paper artefact | Harness entry point |
//! |---|---|
//! | Table 1 / Fig. 16 (optimisations, parallel) | `run_experiments table1`, bench `opt_parallel` |
//! | Table 2 / Fig. 17 (optimisations, concurrent) | `run_experiments table2`, bench `opt_concurrent` |
//! | Table 4 / Fig. 18 / Fig. 19 (languages, parallel + scalability) | `run_experiments table4`, bench `lang_parallel` |
//! | Table 5 / Fig. 20 (languages, concurrent) | `run_experiments table5`, bench `lang_concurrent` |
//! | §4.4 / §5.4 geometric-mean summaries | `run_experiments summary` |
//! | §3.2 query-shift ablation | bench `ablation_query` |
//! | §3.1 queue-structure ablation | bench `ablation_queues` |
//! | Mailbox batching/backpressure ablation | bench `ablation_batching` |

#![warn(missing_docs)]

pub mod experiments;
pub mod remote_sweep;
pub mod report;

pub use experiments::{Scale, Series};
pub use remote_sweep::{RemotePoint, REMOTE_CALLS_PER_USER, REMOTE_QUERIES_PER_USER};
pub use report::{geometric_mean, print_table};
