//! Prints the paper's tables and figure series from fresh measurements.
//!
//! ```text
//! run_experiments [table1|table2|table4|table5|fig19|summary|all] [quick|standard|paper]
//! run_experiments scheduler [smoke|quick|full]   # writes BENCH_scheduler.json
//! run_experiments waits [smoke|quick|full]       # guarded-wait parking vs polling,
//!                                                # writes BENCH_waits.json
//! run_experiments readers [smoke|quick|full]     # shared-read vs exclusive clients,
//!                                                # writes BENCH_readers.json
//! run_experiments remote [smoke|quick|full]      # multi-process cluster sweep,
//!                                                # writes BENCH_remote.json
//! run_experiments overhead [smoke|quick|full]    # observability-overhead gate
//! run_experiments remote-node <addr>             # internal: one cluster node process
//! ```
//!
//! Results (who wins, by what factor) are machine-relative; EXPERIMENTS.md
//! records a measured run next to the paper's reported numbers, and
//! `BENCH_scheduler.json` a handler-count sweep of the M:N scheduler.

use qs_bench::remote_sweep::{
    remote_point, RemotePoint, REMOTE_CALLS_PER_USER, REMOTE_QUERIES_PER_USER,
};

use qs_bench::experiments::{
    auto_read_sweep, backpressure_sweep, fig19_scalability, readers_sweep,
    scheduler_point_with_observability, scheduler_sweep, table1_opt_parallel,
    table2_opt_concurrent, table4_lang_parallel, table5_lang_concurrent, wait_latency_point,
    wait_scaling_point, AutoReadPoint, BackpressurePoint, LatencySummary, ReadersPoint, Scale,
    SchedulerPoint, WaitLatencyPoint, WaitScalingPoint, WaitStrategy, BACKPRESSURE_CALLS_PER_BLOCK,
    BACKPRESSURE_CAPACITY, BACKPRESSURE_PIPELINES, WAIT_LATENCY_GAP, WAIT_SCALING_STEPS,
    WAIT_SCALING_STEP_GAP, WAIT_SCALING_WAITERS,
};
use qs_bench::report::{geometric_mean, print_table};
use qs_runtime::SchedulerMode;
use qs_workloads::types::ParallelTask;

fn fmt(values: &[f64]) -> Vec<String> {
    values.iter().map(|v| format!("{v:.3}")).collect()
}

fn run_table1(scale: Scale, threads: usize) -> Vec<f64> {
    let series = table1_opt_parallel(scale, threads);
    let header: Vec<String> = std::iter::once("task".to_string())
        .chain(series[0].columns.iter().cloned())
        .collect();
    let rows: Vec<(String, Vec<String>)> = series
        .iter()
        .map(|s| (s.label.clone(), fmt(&s.normalized())))
        .collect();
    print_table(
        "Table 1 — parallel tasks, communication time normalised to fastest optimisation",
        &header,
        &rows,
    );
    let rows_seconds: Vec<(String, Vec<String>)> = series
        .iter()
        .map(|s| (s.label.clone(), fmt(&s.values)))
        .collect();
    print_table(
        "Fig. 16 — parallel tasks, communication time per optimisation (seconds)",
        &header,
        &rows_seconds,
    );
    // "All" column feeds the §4.4 summary.
    series.iter().map(|s| s.values[4]).collect()
}

fn run_table2(scale: Scale) -> Vec<Vec<f64>> {
    let series = table2_opt_concurrent(scale);
    let header: Vec<String> = std::iter::once("task".to_string())
        .chain(series[0].columns.iter().cloned())
        .collect();
    let rows: Vec<(String, Vec<String>)> = series
        .iter()
        .map(|s| (s.label.clone(), fmt(&s.values)))
        .collect();
    print_table(
        "Table 2 / Fig. 17 — concurrent tasks, time per optimisation (seconds)",
        &header,
        &rows,
    );
    series.iter().map(|s| s.values.clone()).collect()
}

fn run_table4(scale: Scale, threads: usize) {
    let series = table4_lang_parallel(scale, threads);
    let header: Vec<String> = std::iter::once("task".to_string())
        .chain(series[0].0.columns.iter().cloned())
        .collect();
    let mut rows = Vec::new();
    for (total, compute) in &series {
        rows.push((total.label.clone(), fmt(&total.values)));
        rows.push((compute.label.clone(), fmt(&compute.values)));
    }
    print_table(
        &format!("Table 4 / Fig. 18 — parallel tasks per paradigm at {threads} threads (seconds)"),
        &header,
        &rows,
    );
}

fn run_fig19(scale: Scale) {
    let series = fig19_scalability(scale, &[ParallelTask::Chain, ParallelTask::Randmat]);
    let header: Vec<String> = std::iter::once("task / paradigm".to_string())
        .chain(series[0].columns.iter().cloned())
        .collect();
    let rows: Vec<(String, Vec<String>)> = series
        .iter()
        .map(|s| (s.label.clone(), fmt(&s.values)))
        .collect();
    print_table(
        "Fig. 19 — speedup over 1-thread run (chain, randmat)",
        &header,
        &rows,
    );
}

fn run_table5(scale: Scale) {
    let series = table5_lang_concurrent(scale);
    let header: Vec<String> = std::iter::once("task".to_string())
        .chain(series[0].columns.iter().cloned())
        .collect();
    let rows: Vec<(String, Vec<String>)> = series
        .iter()
        .map(|s| (s.label.clone(), fmt(&s.values)))
        .collect();
    print_table(
        "Table 5 / Fig. 20 — concurrent tasks per paradigm (seconds)",
        &header,
        &rows,
    );
    let per_paradigm: Vec<(String, Vec<String>)> = series[0]
        .columns
        .iter()
        .enumerate()
        .map(|(i, paradigm)| {
            let column: Vec<f64> = series.iter().map(|s| s.values[i]).collect();
            (
                paradigm.clone(),
                vec![format!("{:.3}", geometric_mean(&column))],
            )
        })
        .collect();
    print_table(
        "§5.4 — geometric mean over the concurrent tasks (seconds)",
        &["paradigm".to_string(), "geo-mean".to_string()],
        &per_paradigm,
    );
}

fn run_summary(scale: Scale, threads: usize) {
    let table2 = table2_opt_concurrent(scale);
    let levels = table2[0].columns.clone();
    let per_level: Vec<(String, Vec<String>)> = levels
        .iter()
        .enumerate()
        .map(|(i, level)| {
            let column: Vec<f64> = table2.iter().map(|s| s.values[i]).collect();
            (
                level.clone(),
                vec![format!("{:.3}", geometric_mean(&column))],
            )
        })
        .collect();
    print_table(
        "§4.4 — geometric mean of the concurrent benchmarks per optimisation (seconds)",
        &["optimisation".to_string(), "geo-mean".to_string()],
        &per_level,
    );
    let _ = threads;
}

/// One latency digest as a JSON object (nanoseconds throughout).
fn latency_to_json(l: &LatencySummary) -> String {
    format!(
        "{{\"samples\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
        l.samples, l.p50_ns, l.p95_ns, l.p99_ns, l.max_ns
    )
}

/// Hand-rolled JSON for the scheduler sweep (the workspace is offline; no
/// serde).  One object per point, stable key order.
fn scheduler_points_to_json(
    points: &[SchedulerPoint],
    dedicated_cap: usize,
    backpressure: &(BackpressurePoint, BackpressurePoint),
    overhead: &OverheadReport,
) -> String {
    let mut out = String::from("{\n  \"bench\": \"scheduler_handler_sweep\",\n");
    out.push_str("  \"unit\": \"requests_per_sec\",\n");
    out.push_str(&format!(
        "  \"parallelism\": {},\n  \"dedicated_handler_cap\": {dedicated_cap},\n  \
         \"dedicated_cap_reason\": \"one OS thread per handler exhausts memory above \
         ~16k threads on this class of machine; the pooled scheduler exists to lift \
         exactly this limit\",\n  \"points\": [\n",
        qs_exec::default_parallelism()
    ));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"workers\": {}, \"handlers\": {}, \
             \"requests\": {}, \"elapsed_secs\": {:.6}, \"requests_per_sec\": {:.1}, \
             \"peak_process_threads\": {}, \"peak_scheduler_threads\": {}, \
             \"latency_ns\": {}}}{}\n",
            p.mode,
            p.workers,
            p.handlers,
            p.requests,
            p.elapsed.as_secs_f64(),
            p.requests_per_sec,
            p.peak_process_threads,
            p.peak_scheduler_threads,
            latency_to_json(&p.latency),
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    let (dedicated, pooled) = backpressure;
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"backpressure\": {{\n    \"capacity\": {BACKPRESSURE_CAPACITY}, \
         \"pipelines\": {BACKPRESSURE_PIPELINES}, \
         \"calls_per_block\": {BACKPRESSURE_CALLS_PER_BLOCK},\n"
    ));
    let mut point = |label: &str, p: &BackpressurePoint, trailing: &str| {
        out.push_str(&format!(
            "    \"{label}\": {{\"mode\": \"{}\", \"workers\": {}, \"requests\": {}, \
             \"elapsed_secs\": {:.6}, \"requests_per_sec\": {:.1}, \
             \"backpressure_stalls\": {}, \"pressure_wakes\": {}, \
             \"budget_shrinks\": {}}}{trailing}\n",
            p.mode,
            p.workers,
            p.requests,
            p.elapsed.as_secs_f64(),
            p.requests_per_sec,
            p.backpressure_stalls,
            p.pressure_wakes,
            p.budget_shrinks,
        ));
    };
    point("dedicated", dedicated, ",");
    point("pooled", pooled, ",");
    out.push_str(&format!(
        "    \"pooled_over_dedicated\": {:.3}\n  }},\n",
        pooled.requests_per_sec / dedicated.requests_per_sec.max(f64::MIN_POSITIVE)
    ));
    out.push_str(&overhead_to_json(overhead));
    out.push_str("}\n");
    out
}

/// The `scheduler` mode: run the handler-count sweep and write
/// `BENCH_scheduler.json` next to the current directory.
/// Minimum pooled/dedicated throughput ratio the sustained-backpressure
/// experiment must reach; the CI smoke run fails below it so the ~0.4×
/// collapse this ratio used to sit at cannot silently return.
const BACKPRESSURE_MIN_RATIO: f64 = 0.6;

/// Floor on `Off`-mode throughput relative to the interleaved baseline cell
/// (which also runs `Off`): the two cells are the same configuration, so
/// their best-of-N ratio measures the run's own noise — a disarmed
/// instrumentation layer costing more than 1% would show up here as a
/// systematic, not noise-shaped, shortfall.
const OVERHEAD_OFF_MIN_RATIO: f64 = 0.99;
/// Floor on `Full`-mode throughput relative to `Off`: tracing plus counters
/// on every hot path may cost at most 10% on the fan-out/fan-in workload.
const OVERHEAD_FULL_MIN_RATIO: f64 = 0.90;

/// Calls per handler in each overhead cell.  Deliberately 10x the sweep's
/// points: sub-50ms cells measure scheduler jitter, not instrumentation
/// (two identical `Off` cells were seen 5-10% apart at 10 calls/handler).
const OVERHEAD_CALLS_PER_HANDLER: usize = 100;

/// Best-of-N throughput of the three instrumentation cells on one fixed
/// scheduler workload, measured interleaved so clock drift and thermal
/// throttling hit every cell alike.
///
/// The gate ratios are **paired per round**: cells inside one round run
/// milliseconds apart, so a ratio taken within a round cancels the minute-
/// scale drift of a shared CI box (identical `Off` cells were seen 14%
/// apart when their best passes came from *different* rounds).  Each gate
/// keeps its most favorable round — a real regression depresses the ratio
/// in every round, while one-sided noise only spoils some of them.
struct OverheadReport {
    handlers: usize,
    calls_per_handler: usize,
    rounds: usize,
    /// Best requests/sec with observability `Off` (reference cell).
    baseline_req_per_sec: f64,
    /// Best requests/sec of the second `Off` cell (noise calibration).
    off_req_per_sec: f64,
    /// Best requests/sec with observability `Full` (tracing armed).
    full_req_per_sec: f64,
    /// Best per-round off/baseline throughput ratio (gated quantity).
    off_over_baseline: f64,
    /// Best per-round full/off throughput ratio (gated quantity).
    full_over_off: f64,
}

impl OverheadReport {
    fn off_over_baseline(&self) -> f64 {
        self.off_over_baseline
    }

    fn full_over_off(&self) -> f64 {
        self.full_over_off
    }
}

/// Runs the instrumentation-overhead cells: `rounds` interleaved passes of
/// baseline(`Off`), off(`Off`) and full(`Full`) on the pooled scheduler,
/// keeping each cell's best pass (best-of-N rejects one-sided scheduling
/// hiccups far better than means on shared CI boxes).  The cell order
/// rotates every round so no cell systematically inherits the slot-position
/// advantages (allocator state, cache warmth, frequency ramp) of running
/// first or last.
fn measure_overhead(handlers: usize, calls_per_handler: usize, rounds: usize) -> OverheadReport {
    use qs_obs::ObservabilityMode as Obs;
    let mode = SchedulerMode::Pooled { workers: 0 };
    // Warm-up pass: first-touch page faults and worker spin-up belong to
    // nobody's cell.
    scheduler_point_with_observability(mode, handlers, calls_per_handler, Obs::Off);
    let cells = [(0usize, Obs::Off), (1, Obs::Off), (2, Obs::Full)];
    let mut best = [0.0f64; 3];
    let (mut off_over_baseline, mut full_over_off) = (0.0f64, 0.0f64);
    for round in 0..rounds {
        let mut rps = [0.0f64; 3];
        for i in 0..cells.len() {
            let (slot, obs) = cells[(round + i) % cells.len()];
            let point = scheduler_point_with_observability(mode, handlers, calls_per_handler, obs);
            rps[slot] = point.requests_per_sec;
            best[slot] = best[slot].max(point.requests_per_sec);
        }
        off_over_baseline = off_over_baseline.max(rps[1] / rps[0].max(f64::MIN_POSITIVE));
        full_over_off = full_over_off.max(rps[2] / rps[1].max(f64::MIN_POSITIVE));
    }
    qs_obs::set_mode(Obs::Off);
    OverheadReport {
        handlers,
        calls_per_handler,
        rounds,
        baseline_req_per_sec: best[0],
        off_req_per_sec: best[1],
        full_req_per_sec: best[2],
        off_over_baseline,
        full_over_off,
    }
}

/// The `overhead` section of `BENCH_scheduler.json`.
fn overhead_to_json(o: &OverheadReport) -> String {
    format!(
        "  \"overhead\": {{\n    \"workload\": \"pooled fan-out/fan-in, {} interleaved \
         rounds, gates on best per-round paired ratio\",\n    \"handlers\": {}, \"calls_per_handler\": {},\n    \
         \"baseline_req_per_sec\": {:.1}, \"off_req_per_sec\": {:.1}, \
         \"full_req_per_sec\": {:.1},\n    \"off_over_baseline\": {:.4}, \
         \"full_over_off\": {:.4},\n    \"gates\": {{\"min_off_over_baseline\": \
         {OVERHEAD_OFF_MIN_RATIO}, \"min_full_over_off\": {OVERHEAD_FULL_MIN_RATIO}}}\n  }}\n",
        o.rounds,
        o.handlers,
        o.calls_per_handler,
        o.baseline_req_per_sec,
        o.off_req_per_sec,
        o.full_req_per_sec,
        o.off_over_baseline(),
        o.full_over_off(),
    )
}

/// Prints the overhead cells and asserts both gates (CI runs this in
/// release mode via the `scheduler` smoke and the `overhead` subcommand).
fn report_and_gate_overhead(overhead: &OverheadReport) {
    let rows: Vec<(String, Vec<String>)> = [
        ("baseline (Off)", overhead.baseline_req_per_sec),
        ("off (Off)", overhead.off_req_per_sec),
        ("full (Full)", overhead.full_req_per_sec),
    ]
    .iter()
    .map(|(label, rps)| (label.to_string(), vec![format!("{rps:.0}")]))
    .collect();
    print_table(
        &format!(
            "Observability overhead — {} handlers x {} calls, {} interleaved rounds, \
             best paired round: off/baseline = {:.3}, full/off = {:.3}",
            overhead.handlers,
            overhead.calls_per_handler,
            overhead.rounds,
            overhead.off_over_baseline(),
            overhead.full_over_off(),
        ),
        &["cell".to_string(), "req/s".to_string()],
        &rows,
    );
    assert!(
        overhead.off_over_baseline() >= OVERHEAD_OFF_MIN_RATIO,
        "observability regression: Off mode reached only {:.4}x the baseline cell \
         (minimum {OVERHEAD_OFF_MIN_RATIO}) — the disarmed instrumentation layer is \
         no longer free; see the overhead section of BENCH_scheduler.json",
        overhead.off_over_baseline(),
    );
    assert!(
        overhead.full_over_off() >= OVERHEAD_FULL_MIN_RATIO,
        "observability regression: Full mode reached only {:.4}x Off-mode throughput \
         (minimum {OVERHEAD_FULL_MIN_RATIO}); see the overhead section of \
         BENCH_scheduler.json",
        overhead.full_over_off(),
    );
}

/// The `overhead` mode: run the instrumentation cells alone and gate them,
/// without rewriting `BENCH_scheduler.json`.
fn run_overhead_gate(scale: &str) {
    let rounds = match scale {
        "smoke" | "quick" => 8,
        _ => 12,
    };
    let overhead = measure_overhead(1_000, OVERHEAD_CALLS_PER_HANDLER, rounds);
    report_and_gate_overhead(&overhead);
}

fn run_scheduler_sweep(scale: &str) {
    let (counts, dedicated_cap, bp_blocks, bp_rounds): (&[usize], usize, usize, usize) = match scale
    {
        "smoke" => (&[1_000], 1_000, 30, 3),
        "quick" => (&[1_000, 10_000], 10_000, 30, 3),
        // Full sweep.  Dedicated is capped at 10k on purpose: 50k
        // concurrent OS threads exhausts memory on ordinary boxes
        // (measured here: thread creation aborts with ENOMEM around 16k
        // threads) — that infeasibility is the motivation for the pooled
        // scheduler, and the cap is recorded in the JSON instead of
        // silently shrinking the sweep.
        _ => (&[1_000, 10_000, 50_000], 10_000, 60, 5),
    };
    let points = scheduler_sweep(counts, dedicated_cap);
    let header = vec![
        "mode x handlers".to_string(),
        "req/s".to_string(),
        "p50 µs".to_string(),
        "p99 µs".to_string(),
        "peak proc threads".to_string(),
        "peak sched threads".to_string(),
    ];
    let rows: Vec<(String, Vec<String>)> = points
        .iter()
        .map(|p| {
            (
                format!("{} x{}", p.mode, p.handlers),
                vec![
                    format!("{:.0}", p.requests_per_sec),
                    format!("{:.1}", p.latency.p50_ns as f64 / 1_000.0),
                    format!("{:.1}", p.latency.p99_ns as f64 / 1_000.0),
                    p.peak_process_threads.to_string(),
                    p.peak_scheduler_threads.to_string(),
                ],
            )
        })
        .collect();
    print_table(
        "Handler scheduling — dedicated threads vs M:N pool (fan-out/fan-in)",
        &header,
        &rows,
    );

    // Sustained backpressure: blocks ≫ mailbox capacity on an undersized
    // (1-worker) pool against dedicated consumer threads.
    let backpressure = backpressure_sweep(bp_blocks, bp_rounds);
    let (dedicated, pooled) = &backpressure;
    let ratio = pooled.requests_per_sec / dedicated.requests_per_sec.max(f64::MIN_POSITIVE);
    let bp_rows: Vec<(String, Vec<String>)> = [dedicated, pooled]
        .iter()
        .map(|p| {
            (
                format!("{} (workers {})", p.mode, p.workers),
                vec![
                    format!("{:.0}", p.requests_per_sec),
                    p.backpressure_stalls.to_string(),
                    p.pressure_wakes.to_string(),
                    p.budget_shrinks.to_string(),
                ],
            )
        })
        .collect();
    print_table(
        &format!(
            "Sustained backpressure — {BACKPRESSURE_PIPELINES} pipelines, capacity \
             {BACKPRESSURE_CAPACITY}, {BACKPRESSURE_CALLS_PER_BLOCK} calls/block \
             (pooled/dedicated = {ratio:.3})"
        ),
        &[
            "mode".to_string(),
            "req/s".to_string(),
            "stalls".to_string(),
            "pressure wakes".to_string(),
            "budget shrinks".to_string(),
        ],
        &bp_rows,
    );

    // The instrumentation-overhead cells ride along with every sweep so the
    // committed BENCH_scheduler.json always carries a fresh overhead section.
    let overhead = measure_overhead(
        1_000,
        OVERHEAD_CALLS_PER_HANDLER,
        if scale == "full" { 12 } else { 8 },
    );

    let json = scheduler_points_to_json(&points, dedicated_cap, &backpressure, &overhead);
    let path = "BENCH_scheduler.json";
    std::fs::write(path, json).expect("write BENCH_scheduler.json");
    println!("wrote {path}");

    // The regression gates CI runs in release mode: the backpressure collapse
    // must not silently return, and observability must stay near-free.
    report_and_gate_overhead(&overhead);
    assert!(
        ratio >= BACKPRESSURE_MIN_RATIO,
        "sustained-backpressure regression: pooled reached only {ratio:.3}x dedicated \
         throughput (minimum {BACKPRESSURE_MIN_RATIO}); see the backpressure section of \
         BENCH_scheduler.json"
    );
}

/// Ceiling on the parked waiter's median resume latency (state change
/// applied on the handler → waiter's body observes it).  The CI smoke run
/// fails above it: an event-driven waiter that resumes on 1ms-polling
/// timescales has regressed back into the retry loop.
const WAIT_RESUME_MEDIAN_MAX_MICROS: f64 = 100.0;

/// Minimum polling/parked ratio of `wait_condition_checks` in the
/// 100-waiter scaling experiment: parked evaluations are O(signals), the
/// polling baseline's are O(waiters × elapsed / 1ms).
const WAIT_CHECKS_MIN_RATIO: f64 = 10.0;

/// JSON for the guarded-wait experiments (hand-rolled — the workspace is
/// offline, no serde).
fn wait_points_to_json(
    latency: &[WaitLatencyPoint],
    scaling: &[WaitScalingPoint],
    checks_ratio: f64,
) -> String {
    let mut out = String::from("{\n  \"bench\": \"guarded_wait_sweep\",\n");
    out.push_str(&format!(
        "  \"resume_latency\": {{\n    \"producer_gap_micros\": {},\n    \"points\": [\n",
        WAIT_LATENCY_GAP.as_micros()
    ));
    for (i, p) in latency.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"mode\": \"{}\", \"strategy\": \"{}\", \"rounds\": {}, \
             \"median_resume_micros\": {:.2}, \"p95_resume_micros\": {:.2}, \
             \"wait_condition_checks\": {}, \"guard_wakeups\": {}}}{}\n",
            p.mode,
            p.strategy,
            p.rounds,
            p.median_resume_micros,
            p.p95_resume_micros,
            p.wait_condition_checks,
            p.guard_wakeups,
            if i + 1 == latency.len() { "" } else { "," },
        ));
    }
    out.push_str("    ]\n  },\n");
    out.push_str(&format!(
        "  \"scaling\": {{\n    \"waiters\": {WAIT_SCALING_WAITERS}, \
         \"steps\": {WAIT_SCALING_STEPS}, \"step_gap_ms\": {},\n    \"points\": [\n",
        WAIT_SCALING_STEP_GAP.as_millis()
    ));
    for (i, p) in scaling.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"mode\": \"{}\", \"strategy\": \"{}\", \"waiters\": {}, \
             \"elapsed_secs\": {:.6}, \"wait_condition_checks\": {}, \
             \"guard_signals\": {}, \"guard_wakeups\": {}}}{}\n",
            p.mode,
            p.strategy,
            p.waiters,
            p.elapsed.as_secs_f64(),
            p.wait_condition_checks,
            p.guard_signals,
            p.guard_wakeups,
            if i + 1 == scaling.len() { "" } else { "," },
        ));
    }
    out.push_str(&format!(
        "    ],\n    \"polling_over_parked_checks\": {checks_ratio:.2}\n  }},\n"
    ));
    out.push_str(&format!(
        "  \"gates\": {{\"max_parked_median_resume_micros\": \
         {WAIT_RESUME_MEDIAN_MAX_MICROS}, \"min_polling_over_parked_checks\": \
         {WAIT_CHECKS_MIN_RATIO}}}\n}}\n"
    ));
    out
}

/// The `waits` mode: measure parked versus polling wait conditions and
/// write `BENCH_waits.json`.
fn run_waits_sweep(scale: &str) {
    let latency_rounds = match scale {
        "smoke" => 300,
        "quick" => 1_000,
        _ => 3_000,
    };
    let pooled = SchedulerMode::Pooled { workers: 4 };
    let latency = vec![
        wait_latency_point(
            SchedulerMode::Dedicated,
            WaitStrategy::Parked,
            latency_rounds,
        ),
        wait_latency_point(pooled, WaitStrategy::Parked, latency_rounds),
        wait_latency_point(
            SchedulerMode::Dedicated,
            WaitStrategy::Polling,
            latency_rounds,
        ),
    ];
    let scaling = vec![
        wait_scaling_point(
            SchedulerMode::Dedicated,
            WaitStrategy::Parked,
            WAIT_SCALING_WAITERS,
        ),
        wait_scaling_point(pooled, WaitStrategy::Parked, WAIT_SCALING_WAITERS),
        wait_scaling_point(
            SchedulerMode::Dedicated,
            WaitStrategy::Polling,
            WAIT_SCALING_WAITERS,
        ),
    ];

    let rows: Vec<(String, Vec<String>)> = latency
        .iter()
        .map(|p| {
            (
                format!("{} / {}", p.mode, p.strategy),
                vec![
                    format!("{:.1}", p.median_resume_micros),
                    format!("{:.1}", p.p95_resume_micros),
                    p.wait_condition_checks.to_string(),
                    p.guard_wakeups.to_string(),
                ],
            )
        })
        .collect();
    print_table(
        &format!(
            "Guarded waits — resume latency over {latency_rounds} rounds \
             (producer gap {}µs)",
            WAIT_LATENCY_GAP.as_micros()
        ),
        &[
            "mode / strategy".to_string(),
            "median µs".to_string(),
            "p95 µs".to_string(),
            "checks".to_string(),
            "wakeups".to_string(),
        ],
        &rows,
    );

    let parked_checks = scaling
        .iter()
        .find(|p| p.strategy == "parked" && p.mode == "Dedicated")
        .map(|p| p.wait_condition_checks)
        .unwrap_or(0);
    let polling_checks = scaling
        .iter()
        .find(|p| p.strategy == "polling")
        .map(|p| p.wait_condition_checks)
        .unwrap_or(0);
    let checks_ratio = polling_checks as f64 / (parked_checks as f64).max(f64::MIN_POSITIVE);
    let rows: Vec<(String, Vec<String>)> = scaling
        .iter()
        .map(|p| {
            (
                format!("{} / {}", p.mode, p.strategy),
                vec![
                    p.wait_condition_checks.to_string(),
                    p.guard_signals.to_string(),
                    p.guard_wakeups.to_string(),
                    format!("{:.2}", p.elapsed.as_secs_f64()),
                ],
            )
        })
        .collect();
    print_table(
        &format!(
            "Guarded waits — {WAIT_SCALING_WAITERS} waiters, {WAIT_SCALING_STEPS} \
             spaced signals (polling/parked checks = {checks_ratio:.1})"
        ),
        &[
            "mode / strategy".to_string(),
            "checks".to_string(),
            "signals".to_string(),
            "wakeups".to_string(),
            "elapsed s".to_string(),
        ],
        &rows,
    );

    let json = wait_points_to_json(&latency, &scaling, checks_ratio);
    let path = "BENCH_waits.json";
    std::fs::write(path, json).expect("write BENCH_waits.json");
    println!("wrote {path}");

    // Regression gates, run in release by CI.
    for p in latency.iter().filter(|p| p.strategy == "parked") {
        assert!(
            p.median_resume_micros < WAIT_RESUME_MEDIAN_MAX_MICROS,
            "guarded-wait regression: {} parked median resume latency {:.1}µs \
             (ceiling {WAIT_RESUME_MEDIAN_MAX_MICROS}µs); see BENCH_waits.json",
            p.mode,
            p.median_resume_micros,
        );
    }
    assert!(
        checks_ratio >= WAIT_CHECKS_MIN_RATIO,
        "guarded-wait regression: polling made only {checks_ratio:.1}x the parked \
         path's condition evaluations (minimum {WAIT_CHECKS_MIN_RATIO}) — the parked \
         path is polling again; see BENCH_waits.json"
    );
}

/// Minimum shared-read/exclusive throughput ratio at the gate cell
/// (≥ [`READERS_GATE_MIN_READERS`] readers, ≤ 1% writes) for the CI smoke
/// run; the full sweep must clear [`READERS_FULL_MIN_SPEEDUP`].  Reads under
/// a shared-read reservation execute directly on the client threads, so on a
/// read-mostly hot handler anything close to 1× means the gate has stopped
/// admitting concurrent readers.
const READERS_SMOKE_MIN_SPEEDUP: f64 = 1.5;
/// The full sweep's floor at the same gate cells.
const READERS_FULL_MIN_SPEEDUP: f64 = 2.0;
/// Reader count from which the speed-up floor applies.
const READERS_GATE_MIN_READERS: usize = 4;

/// JSON for the read-reservation sweep (hand-rolled — the workspace is
/// offline, no serde).
fn readers_points_to_json(
    points: &[ReadersPoint],
    auto: &[AutoReadPoint],
    min_speedup: f64,
) -> String {
    let mut out = String::from("{\n  \"bench\": \"read_reservation_sweep\",\n");
    out.push_str("  \"unit\": \"ops_per_sec\",\n");
    out.push_str(
        "  \"workload\": \"one hot handler owning an invariant pair; N clients, \
         write_percent of each client's ops are synced exclusive writes, the rest \
         queries taken exclusively (baseline) or via shared-read reservations\",\n",
    );
    out.push_str(&format!(
        "  \"gate\": {{\"min_readers\": {READERS_GATE_MIN_READERS}, \
         \"max_write_percent\": 1, \"min_shared_over_exclusive\": {min_speedup}}},\n"
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"readers\": {}, \"write_percent\": {}, \"mode\": \"{}\", \
             \"ops_per_client\": {}, \"total_ops\": {}, \"elapsed_secs\": {:.6}, \
             \"ops_per_sec\": {:.1}, \"peak_concurrent_readers\": {}, \
             \"writer_waits\": {}}}{}\n",
            p.readers,
            p.write_percent,
            if p.shared { "shared-read" } else { "exclusive" },
            p.ops_per_client,
            p.total_ops,
            p.elapsed.as_secs_f64(),
            p.ops_per_sec,
            p.peak_concurrent_readers,
            p.writer_waits,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"speedups\": [\n");
    let pairs = readers_pairs(points);
    for (i, (exclusive, shared)) in pairs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"readers\": {}, \"write_percent\": {}, \
             \"shared_over_exclusive\": {:.3}}}{}\n",
            exclusive.readers,
            exclusive.write_percent,
            shared.ops_per_sec / exclusive.ops_per_sec.max(f64::MIN_POSITIVE),
            if i + 1 == pairs.len() { "" } else { "," },
        ));
    }
    // The `auto` column: the same read-mostly surface program with reads
    // taken exclusively, through a hand-written `separate read`, or through
    // a plain block the effect-inference pass downgraded automatically.
    out.push_str("  ],\n  \"auto\": [\n");
    for (i, p) in auto.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"readings\": {}, \"iterations\": {}, \
             \"elapsed_secs\": {:.6}, \"queries_per_sec\": {:.1}, \
             \"read_reservations\": {}}}{}\n",
            p.mode,
            p.readings,
            p.iterations,
            p.elapsed.as_secs_f64(),
            p.queries_per_sec,
            p.read_reservations,
            if i + 1 == auto.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pairs each exclusive cell with its shared-read twin.
fn readers_pairs(points: &[ReadersPoint]) -> Vec<(&ReadersPoint, &ReadersPoint)> {
    points
        .iter()
        .filter(|p| !p.shared)
        .filter_map(|exclusive| {
            points
                .iter()
                .find(|p| {
                    p.shared
                        && p.readers == exclusive.readers
                        && p.write_percent == exclusive.write_percent
                })
                .map(|shared| (exclusive, shared))
        })
        .collect()
}

/// The `readers` mode: sweep exclusive versus shared-read clients over a
/// readers × write-ratio grid and write `BENCH_readers.json`.
fn run_readers_sweep(scale: &str) {
    let (reader_counts, ops, min_speedup): (&[usize], usize, f64) = match scale {
        "smoke" => (&[1, 4], 10_000, READERS_SMOKE_MIN_SPEEDUP),
        "quick" => (&[1, 2, 4], 20_000, READERS_SMOKE_MIN_SPEEDUP),
        _ => (&[1, 2, 4, 8], 50_000, READERS_FULL_MIN_SPEEDUP),
    };
    let write_percents: &[u32] = &[0, 1, 10];
    let points = readers_sweep(reader_counts, write_percents, ops);
    let (auto_readings, auto_iterations) = match scale {
        "smoke" => (64, 50),
        "quick" => (128, 100),
        _ => (256, 200),
    };
    let auto = auto_read_sweep(auto_readings, auto_iterations);

    let rows: Vec<(String, Vec<String>)> = readers_pairs(&points)
        .iter()
        .map(|(exclusive, shared)| {
            (
                format!(
                    "{} readers, {}% writes",
                    exclusive.readers, exclusive.write_percent
                ),
                vec![
                    format!("{:.0}", exclusive.ops_per_sec),
                    format!("{:.0}", shared.ops_per_sec),
                    format!(
                        "{:.2}x",
                        shared.ops_per_sec / exclusive.ops_per_sec.max(f64::MIN_POSITIVE)
                    ),
                    shared.peak_concurrent_readers.to_string(),
                    shared.writer_waits.to_string(),
                ],
            )
        })
        .collect();
    print_table(
        "Shared-read reservations — exclusive vs read-mode clients on one hot handler",
        &[
            "cell".to_string(),
            "exclusive ops/s".to_string(),
            "shared ops/s".to_string(),
            "speed-up".to_string(),
            "peak readers".to_string(),
            "writer waits".to_string(),
        ],
        &rows,
    );

    let auto_rows: Vec<(String, Vec<String>)> = auto
        .iter()
        .map(|p| {
            (
                p.mode.to_string(),
                vec![
                    format!("{:.0}", p.queries_per_sec),
                    p.read_reservations.to_string(),
                ],
            )
        })
        .collect();
    print_table(
        &format!(
            "Auto-read downgrade — {auto_readings}-reading sensor, \
             {auto_iterations} iterations per mode"
        ),
        &[
            "mode".to_string(),
            "queries/s".to_string(),
            "read reservations".to_string(),
        ],
        &auto_rows,
    );

    let json = readers_points_to_json(&points, &auto, min_speedup);
    let path = "BENCH_readers.json";
    std::fs::write(path, json).expect("write BENCH_readers.json");
    println!("wrote {path}");

    // The regression gate CI runs in release mode: at read-mostly cells with
    // enough readers, shared-read reservations must actually buy concurrency.
    for (exclusive, shared) in readers_pairs(&points) {
        if exclusive.readers < READERS_GATE_MIN_READERS || exclusive.write_percent > 1 {
            continue;
        }
        let speedup = shared.ops_per_sec / exclusive.ops_per_sec.max(f64::MIN_POSITIVE);
        assert!(
            speedup >= min_speedup,
            "read-reservation regression: shared-read reached only {speedup:.2}x exclusive \
             throughput at {} readers / {}% writes (minimum {min_speedup}); see \
             BENCH_readers.json",
            exclusive.readers,
            exclusive.write_percent,
        );
        // Deterministic: every shared cell opens with all its clients
        // rendezvoused inside read blocks.
        assert!(
            shared.peak_concurrent_readers >= shared.readers as u64,
            "read-reservation regression: gate cell recorded only {} concurrent readers \
             of {} ({}% writes)",
            shared.peak_concurrent_readers,
            shared.readers,
            exclusive.write_percent,
        );
    }

    // The auto-read gate: the effect-inference downgrade must actually fire
    // (the inferred cell takes read reservations, the exclusive baseline
    // none), and an inferred `.read()` must not cost materially more than a
    // hand-written one.
    let auto_cell = |mode: &str| auto.iter().find(|p| p.mode == mode).expect("auto cell");
    assert_eq!(auto_cell("exclusive").read_reservations, 0);
    assert!(
        auto_cell("inferred").read_reservations > 0,
        "auto-read regression: the inferred cell took no read reservations; \
         the effect pass stopped emitting the downgrade"
    );
    let inferred_over_declared = auto_cell("inferred").queries_per_sec
        / auto_cell("declared").queries_per_sec.max(f64::MIN_POSITIVE);
    assert!(
        inferred_over_declared >= 0.5,
        "auto-read regression: inferred .read() reached only {inferred_over_declared:.2}x \
         the hand-written read block's throughput; see BENCH_readers.json"
    );
}

/// JSON for the distributed sweep (hand-rolled — the workspace is offline,
/// no serde).
fn remote_points_to_json(points: &[RemotePoint]) -> String {
    let mut out = String::from("{\n  \"bench\": \"remote_cluster_sweep\",\n");
    out.push_str("  \"unit\": \"requests_per_sec\",\n");
    out.push_str(
        "  \"workload\": \"bank: one handler per user, per-user separate block of \
         deposits + a verified balance query, sharded by consistent hashing\",\n",
    );
    out.push_str(&format!(
        "  \"calls_per_user\": {REMOTE_CALLS_PER_USER},\n  \
         \"queries_per_user\": {REMOTE_QUERIES_PER_USER},\n  \"points\": [\n"
    ));
    for (i, p) in points.iter().enumerate() {
        let handlers: Vec<String> = p.per_node_handlers.iter().map(i64::to_string).collect();
        out.push_str(&format!(
            "    {{\"transport\": \"{}\", \"nodes\": {}, \"users\": {}, \
             \"client_threads\": {}, \"blocks\": {}, \"calls\": {}, \"queries\": {}, \
             \"elapsed_secs\": {:.6}, \"requests_per_sec\": {:.1}, \
             \"per_node_handlers\": [{}], \"rtt_ns\": {}}}{}\n",
            p.transport,
            p.nodes,
            p.users,
            p.client_threads,
            p.blocks,
            p.calls,
            p.queries,
            p.elapsed.as_secs_f64(),
            p.requests_per_sec,
            handlers.join(", "),
            latency_to_json(&p.rtt),
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The `remote` mode: spawn real node processes, sweep users × nodes, write
/// `BENCH_remote.json`.
fn run_remote_sweep(scale: &str) {
    // (transport, nodes, users) cells per tier.  TCP carries the scaling
    // series; one Unix-socket cell per tier proves the second transport
    // end-to-end.
    let cells: &[(&'static str, usize, u64)] = match scale {
        "smoke" => &[("tcp", 2, 2_000), ("unix", 2, 500)],
        "quick" => &[("tcp", 1, 10_000), ("tcp", 2, 10_000), ("unix", 2, 2_000)],
        _ => &[
            ("tcp", 1, 20_000),
            ("tcp", 2, 100_000),
            ("tcp", 4, 100_000),
            ("unix", 2, 10_000),
        ],
    };
    let client_threads = qs_exec::default_parallelism().min(8);
    let mut points = Vec::with_capacity(cells.len());
    for &(transport, nodes, users) in cells {
        let point = remote_point("remote-node", nodes, users, client_threads, transport)
            .expect("remote sweep cell failed");
        println!(
            "remote: {transport} nodes={nodes} users={users} -> {:.0} req/s \
             ({} blocks in {:.2}s, rtt p50/p99 {:.0}/{:.0}µs, handlers per node {:?})",
            point.requests_per_sec,
            point.blocks,
            point.elapsed.as_secs_f64(),
            point.rtt.p50_ns as f64 / 1_000.0,
            point.rtt.p99_ns as f64 / 1_000.0,
            point.per_node_handlers,
        );
        points.push(point);
    }
    let rows: Vec<(String, Vec<String>)> = points
        .iter()
        .map(|p| {
            (
                format!("{} x{} nodes, {} users", p.transport, p.nodes, p.users),
                vec![
                    format!("{:.0}", p.requests_per_sec),
                    format!("{:.2}", p.elapsed.as_secs_f64()),
                    format!("{:?}", p.per_node_handlers),
                ],
            )
        })
        .collect();
    print_table(
        "Distributed SCOOP — users × nodes over real sockets (bank workload)",
        &[
            "cell".to_string(),
            "req/s".to_string(),
            "elapsed s".to_string(),
            "handlers/node".to_string(),
        ],
        &rows,
    );
    let json = remote_points_to_json(&points);
    let path = "BENCH_remote.json";
    std::fs::write(path, json).expect("write BENCH_remote.json");
    println!("wrote {path}");
}

/// The hidden `remote-node` mode: one cluster node process.  Prints
/// `READY <addr>` once the listener is bound, then serves until the driver
/// sends the `shutdown` control op.
fn run_remote_node(listen: &str) {
    use std::io::Write;
    let addr = qs_remote::NodeAddr::parse(listen).expect("node listen address");
    let server =
        qs_cluster::NodeServer::start(qs_cluster::bank_service(), qs_cluster::NodeConfig::at(addr))
            .expect("start cluster node");
    println!("READY {}", server.addr());
    std::io::stdout().flush().expect("flush READY line");
    server.wait();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let what = args.get(1).map(String::as_str).unwrap_or("all");
    if what == "scheduler" {
        run_scheduler_sweep(args.get(2).map(String::as_str).unwrap_or("full"));
        return;
    }
    if what == "waits" {
        run_waits_sweep(args.get(2).map(String::as_str).unwrap_or("full"));
        return;
    }
    if what == "readers" {
        run_readers_sweep(args.get(2).map(String::as_str).unwrap_or("full"));
        return;
    }
    if what == "remote" {
        run_remote_sweep(args.get(2).map(String::as_str).unwrap_or("full"));
        return;
    }
    if what == "overhead" {
        run_overhead_gate(args.get(2).map(String::as_str).unwrap_or("full"));
        return;
    }
    if what == "remote-node" {
        run_remote_node(args.get(2).expect("remote-node needs a listen address"));
        return;
    }
    let scale = Scale::parse(args.get(2).map(String::as_str).unwrap_or("quick"));
    let threads = qs_exec::default_parallelism().min(8);
    println!("experiments: {what}  scale: {scale:?}  threads: {threads}");

    match what {
        "table1" | "fig16" => {
            run_table1(scale, threads);
        }
        "table2" | "fig17" => {
            run_table2(scale);
        }
        "table4" | "fig18" => run_table4(scale, threads),
        "fig19" => run_fig19(scale),
        "table5" | "fig20" => run_table5(scale),
        "summary" => run_summary(scale, threads),
        _ => {
            run_table1(scale, threads);
            run_table2(scale);
            run_table4(scale, threads);
            run_fig19(scale);
            run_table5(scale);
            run_summary(scale, threads);
        }
    }
}
