//! The distributed sweep: users × nodes × req/s over real sockets.
//!
//! Spawns N genuine OS node processes (re-executing the current binary with
//! a node subcommand), shards one bank account handler per simulated user
//! across them by consistent hashing, and drives blocks from several client
//! threads.  `run_experiments remote [smoke|quick|full]` renders the points
//! and writes `BENCH_remote.json`; the example `bank_cluster` walks the
//! same flow narratively.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qs_cluster::ClusterClient;
use qs_remote::{NodeAddr, WireValue};

use crate::experiments::LatencySummary;

/// Calls logged per user block in the sweep workload.
pub const REMOTE_CALLS_PER_USER: u64 = 3;
/// Queries per user block (the closing balance check).
pub const REMOTE_QUERIES_PER_USER: u64 = 1;

/// One measured cell of the users × nodes sweep.
#[derive(Debug, Clone)]
pub struct RemotePoint {
    /// `"tcp"` (loopback) or `"unix"`.
    pub transport: &'static str,
    /// Number of node processes.
    pub nodes: usize,
    /// Number of simulated users (one handler each).
    pub users: u64,
    /// Concurrent driver threads.
    pub client_threads: usize,
    /// Asynchronous calls sent.
    pub calls: u64,
    /// Queries sent (each also a full round trip).
    pub queries: u64,
    /// Separate blocks opened.
    pub blocks: u64,
    /// Wall-clock time for the measured loop.
    pub elapsed: Duration,
    /// `(calls + queries) / elapsed`.
    pub requests_per_sec: f64,
    /// Handlers hosted per node at the end (placement balance evidence).
    pub per_node_handlers: Vec<i64>,
    /// Client-side round-trip latency distribution over the measured loop
    /// (`remote.call_rtt_ns`; the drivers run in this process).
    pub rtt: LatencySummary,
}

/// A spawned node process; killed (then reaped) on drop so a panicking
/// driver never leaks children.
pub struct NodeProcess {
    child: Child,
    addr: NodeAddr,
}

impl NodeProcess {
    /// The address the node reported with its `READY` line.
    pub fn addr(&self) -> &NodeAddr {
        &self.addr
    }

    /// Waits up to `timeout` for the process to exit, then kills it.
    /// Returns whether it exited by itself.
    pub fn wait_or_kill(mut self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return true,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                _ => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    return false;
                }
            }
        }
    }
}

impl Drop for NodeProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns one node process: re-executes the current binary as
/// `<exe> <subcommand> <listen>` and waits for its `READY <addr>` line.
/// The node protocol (for binaries providing such a subcommand): start a
/// `NodeServer`, print `READY <bound addr>` on stdout, serve until told to
/// shut down.
pub fn spawn_node(subcommand: &str, listen: &str) -> std::io::Result<NodeProcess> {
    let exe = std::env::current_exe()?;
    let mut child = Command::new(exe)
        .arg(subcommand)
        .arg(listen)
        .stdout(Stdio::piped())
        .spawn()?;
    let stdout = child.stdout.take().expect("piped child stdout");
    let mut lines = BufReader::new(stdout).lines();
    match lines.next() {
        Some(Ok(line)) if line.starts_with("READY ") => {
            let addr = NodeAddr::parse(line.trim_start_matches("READY ").trim())
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            Ok(NodeProcess { child, addr })
        }
        other => {
            let _ = child.kill();
            let _ = child.wait();
            Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("node process did not report READY (got {other:?})"),
            ))
        }
    }
}

/// Spawns `nodes` processes on the requested transport and configures every
/// ring.  TCP nodes listen on ephemeral loopback ports; Unix nodes get
/// per-process socket paths under the temp dir.
pub fn spawn_cluster(
    subcommand: &str,
    nodes: usize,
    transport: &str,
) -> std::io::Result<(Vec<NodeProcess>, Vec<NodeAddr>)> {
    let mut processes = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let listen = match transport {
            "unix" => format!(
                "unix:{}",
                std::env::temp_dir()
                    .join(format!("qs-remote-sweep-{}-{i}.sock", std::process::id()))
                    .display()
            ),
            _ => "tcp:127.0.0.1:0".to_string(),
        };
        processes.push(spawn_node(subcommand, &listen)?);
    }
    let addrs: Vec<NodeAddr> = processes.iter().map(|p| p.addr().clone()).collect();
    let bootstrap =
        ClusterClient::new("sweep-bootstrap", &[]).with_response_timeout(Duration::from_secs(30));
    bootstrap
        .set_ring(&addrs)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::ConnectionReset, e.to_string()))?;
    Ok((processes, addrs))
}

/// Drives `users` bank users against an already-configured cluster and
/// measures throughput.  Every user gets one separate block with
/// [`REMOTE_CALLS_PER_USER`] deposits and a closing balance query whose
/// value is asserted — correctness is checked on every block, not sampled.
pub fn drive_users(
    addrs: &[NodeAddr],
    users: u64,
    client_threads: usize,
    transport: &'static str,
) -> RemotePoint {
    let threads = client_threads.max(1);
    let addrs: Arc<Vec<NodeAddr>> = Arc::new(addrs.to_vec());
    // The drivers run in this process, so their query/sync round trips land
    // in the local `remote.call_rtt_ns` histogram; scope it to this point.
    qs_obs::raise_mode(qs_obs::ObservabilityMode::Counters);
    let rtt_hist = qs_obs::registry().histogram("remote.call_rtt_ns");
    rtt_hist.reset();
    let started = Instant::now();
    let mut joins = Vec::with_capacity(threads);
    for t in 0..threads {
        let addrs = Arc::clone(&addrs);
        joins.push(std::thread::spawn(move || {
            let client = ClusterClient::new(&format!("sweep-driver-{t}"), &addrs)
                .with_response_timeout(Duration::from_secs(60));
            let mut user = t as u64;
            let mut served = 0u64;
            while user < users {
                let balance = client
                    .separate(user, |s| {
                        for _ in 0..REMOTE_CALLS_PER_USER {
                            s.call("deposit", vec![WireValue::Int(1)]).unwrap();
                        }
                        s.query("balance", vec![]).unwrap()
                    })
                    .unwrap_or_else(|e| panic!("user {user}: {e}"));
                assert_eq!(
                    balance,
                    WireValue::Int(REMOTE_CALLS_PER_USER as i64),
                    "user {user} balance corrupted"
                );
                served += 1;
                user += threads as u64;
            }
            served
        }));
    }
    let blocks: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    let elapsed = started.elapsed();
    let rtt = LatencySummary::from_histogram(&rtt_hist.snapshot());
    assert_eq!(blocks, users, "every user must be served exactly once");

    let calls = blocks * REMOTE_CALLS_PER_USER;
    let queries = blocks * REMOTE_QUERIES_PER_USER;
    let control =
        ClusterClient::new("sweep-control", &addrs).with_response_timeout(Duration::from_secs(30));
    let per_node_handlers: Vec<i64> = addrs
        .iter()
        .map(|a| {
            control
                .control(&a.to_string(), "handlers", vec![])
                .ok()
                .and_then(|v| v.as_int().ok())
                .unwrap_or(-1)
        })
        .collect();

    RemotePoint {
        transport,
        nodes: addrs.len(),
        users,
        client_threads: threads,
        calls,
        queries,
        blocks,
        elapsed,
        requests_per_sec: (calls + queries) as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        per_node_handlers,
        rtt,
    }
}

/// Runs one full sweep cell: spawn, drive, shut down, reap.
pub fn remote_point(
    subcommand: &str,
    nodes: usize,
    users: u64,
    client_threads: usize,
    transport: &'static str,
) -> std::io::Result<RemotePoint> {
    let (processes, addrs) = spawn_cluster(subcommand, nodes, transport)?;
    let point = drive_users(&addrs, users, client_threads, transport);
    let shutdown =
        ClusterClient::new("sweep-shutdown", &addrs).with_response_timeout(Duration::from_secs(10));
    shutdown.shutdown_cluster();
    for process in processes {
        process.wait_or_kill(Duration::from_secs(10));
    }
    Ok(point)
}
