//! Table 5 / Fig. 20: coordination benchmarks across paradigms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qs_baselines::Paradigm;
use qs_workloads::concurrent::{run_concurrent, ConcurrentParams, ConcurrentTask};

fn lang_concurrent(c: &mut Criterion) {
    let params = ConcurrentParams::tiny();
    let mut group = c.benchmark_group("table5_lang_concurrent");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for task in ConcurrentTask::ALL {
        for paradigm in Paradigm::ALL {
            group.bench_with_input(
                BenchmarkId::new(task.name(), paradigm.label()),
                &(task, paradigm),
                |b, &(task, paradigm)| b.iter(|| run_concurrent(task, paradigm, &params)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, lang_concurrent);
criterion_main!(benches);
