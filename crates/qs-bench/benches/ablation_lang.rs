//! Frontend-level ablation of the §3.4 sync-removal techniques: the same
//! qs-lang copy-loop program (the Fig. 14 shape) executed under naive code
//! generation, the static sync-coalescing plan, and runtime-managed queries,
//! on runtime configurations with and without dynamic coalescing.
//!
//! This reproduces the mechanism behind Fig. 16 one level higher in the
//! stack than `ablation_query` (which drives the mini-IR directly): here the
//! programs come out of the parser and checker, exactly as a user would
//! write them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qs_lang::{compile, programs, run_compiled, Compiled, QueryStrategy};
use qs_runtime::{OptimizationLevel, Runtime};

fn run(compiled: &Compiled, level: OptimizationLevel, strategy: QueryStrategy) {
    let runtime = Runtime::new(level.config());
    let output = run_compiled(compiled, &runtime, strategy).expect("program runs");
    criterion::black_box(output.printed);
}

fn ablation_lang(c: &mut Criterion) {
    const ELEMENTS: usize = 1_000;
    let compiled = compile(&programs::copy_loop(ELEMENTS)).expect("copy loop compiles");

    let mut group = c.benchmark_group("ablation_lang_copy_loop");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));

    // QoQ configuration: the runtime gives no sync help, so the difference
    // between the columns is exactly what the code generator emits.
    for (name, strategy) in [
        ("naive", QueryStrategy::NaiveSync),
        ("static", compiled.static_strategy()),
        ("runtime", QueryStrategy::RuntimeManaged),
    ] {
        group.bench_with_input(
            BenchmarkId::new("qoq_config", name),
            &strategy,
            |b, strategy| b.iter(|| run(&compiled, OptimizationLevel::QoQ, strategy.clone())),
        );
    }
    // Dynamic configuration: the runtime coalesces at run time, so even naive
    // code generation recovers most of the benefit (§4.4's point that Dynamic
    // helps irregular code where Static cannot be applied).
    for (name, strategy) in [
        ("naive", QueryStrategy::NaiveSync),
        ("static", compiled.static_strategy()),
        ("runtime", QueryStrategy::RuntimeManaged),
    ] {
        group.bench_with_input(
            BenchmarkId::new("dynamic_config", name),
            &strategy,
            |b, strategy| b.iter(|| run(&compiled, OptimizationLevel::Dynamic, strategy.clone())),
        );
    }
    group.finish();

    // Compilation cost itself (lexing through the dataflow pass), to show the
    // pass is cheap relative to what it saves.
    let source = programs::copy_loop(ELEMENTS);
    let mut frontend = c.benchmark_group("lang_frontend");
    frontend.sample_size(20);
    frontend.warm_up_time(std::time::Duration::from_millis(200));
    frontend.measurement_time(std::time::Duration::from_millis(600));
    frontend.bench_function("compile_copy_loop", |b| {
        b.iter(|| compile(criterion::black_box(&source)).expect("compiles"))
    });
    frontend.finish();
}

criterion_group!(benches, ablation_lang);
criterion_main!(benches);
