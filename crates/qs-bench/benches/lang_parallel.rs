//! Table 4 / Figs. 18–19: Cowichan tasks across paradigms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qs_baselines::Paradigm;
use qs_workloads::run_parallel;
use qs_workloads::types::{CowichanParams, ParallelTask};

fn lang_parallel(c: &mut Criterion) {
    let params = CowichanParams::tiny();
    let mut group = c.benchmark_group("table4_lang_parallel");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for task in [
        ParallelTask::Randmat,
        ParallelTask::Outer,
        ParallelTask::Chain,
    ] {
        for paradigm in Paradigm::ALL {
            group.bench_with_input(
                BenchmarkId::new(task.name(), paradigm.label()),
                &(task, paradigm),
                |b, &(task, paradigm)| b.iter(|| run_parallel(task, paradigm, &params)),
            );
        }
    }
    group.finish();
}

fn scalability(c: &mut Criterion) {
    // Fig. 19: the same task at increasing thread counts (SCOOP/Qs only here;
    // the full sweep lives in `run_experiments fig19`).
    let mut group = c.benchmark_group("fig19_scalability_scoop");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for threads in [1usize, 2, 4] {
        let params = CowichanParams {
            threads,
            ..CowichanParams::tiny()
        };
        group.bench_with_input(BenchmarkId::new("chain", threads), &params, |b, params| {
            b.iter(|| run_parallel(ParallelTask::Chain, Paradigm::ScoopQs, params))
        });
    }
    group.finish();
}

criterion_group!(benches, lang_parallel, scalability);
criterion_main!(benches);
