//! §3.2 ablation: client-executed queries and sync-coalescing on a
//! query-heavy copy loop (the Fig. 14 scenario executed through the mini-IR).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qs_compiler::execute_copy_loop;
use qs_runtime::{reserve, OptimizationLevel, Runtime};

fn ablation_query(c: &mut Criterion) {
    const LEN: usize = 512;
    let mut group = c.benchmark_group("ablation_query_shift");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for level in OptimizationLevel::ALL {
        // Naive IR (a sync per element) under each runtime configuration.
        group.bench_with_input(
            BenchmarkId::new("naive_ir", level.label()),
            &level,
            |b, &level| b.iter(|| execute_copy_loop(level.config(), LEN, false)),
        );
        // Statically coalesced IR under the same configuration.
        group.bench_with_input(
            BenchmarkId::new("coalesced_ir", level.label()),
            &level,
            |b, &level| b.iter(|| execute_copy_loop(level.config(), LEN, true)),
        );
    }
    group.finish();
}

/// Pipelined (`query_async`) versus synchronous queries fanned out over
/// several handlers: the synchronous client serialises one round-trip per
/// handler, while the pipelined client logs all N queries before collecting
/// any result, overlapping the handlers' work.
fn query_pipelining(c: &mut Criterion) {
    const HANDLERS: usize = 4;
    const ELEMENTS: u64 = 64 * 1024;

    let mut group = c.benchmark_group("query_pipelining");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for level in [OptimizationLevel::All, OptimizationLevel::None] {
        let runtime = Runtime::with_level(level);
        let handlers: Vec<_> = (0..HANDLERS)
            .map(|i| {
                runtime.spawn_handler((0..ELEMENTS).map(|v| v + i as u64).collect::<Vec<u64>>())
            })
            .collect();

        group.bench_with_input(
            BenchmarkId::new("synchronous", level.label()),
            &handlers,
            |b, handlers| {
                b.iter(|| {
                    reserve(handlers).run(|guards| {
                        guards
                            .iter_mut()
                            .map(|g| g.query(|data| data.iter().sum::<u64>()))
                            .sum::<u64>()
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pipelined", level.label()),
            &handlers,
            |b, handlers| {
                b.iter(|| {
                    reserve(handlers).run(|guards| {
                        let tokens: Vec<_> = guards
                            .iter_mut()
                            .map(|g| g.query_async(|data| data.iter().sum::<u64>()))
                            .collect();
                        tokens.into_iter().map(|t| t.wait()).sum::<u64>()
                    })
                })
            },
        );

        // The runtime's counters distinguish the two query paths; surface
        // them so a bench run shows the pipelining actually happened.
        let snap = runtime.stats_snapshot();
        println!(
            "query_pipelining/{}: {} pipelined vs {} synchronous queries",
            level.label(),
            snap.queries_pipelined,
            snap.queries_client_executed + snap.queries_handler_executed,
        );
    }
    group.finish();
}

criterion_group!(benches, ablation_query, query_pipelining);
criterion_main!(benches);
