//! §3.2 ablation: client-executed queries and sync-coalescing on a
//! query-heavy copy loop (the Fig. 14 scenario executed through the mini-IR).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qs_compiler::execute_copy_loop;
use qs_runtime::OptimizationLevel;

fn ablation_query(c: &mut Criterion) {
    const LEN: usize = 512;
    let mut group = c.benchmark_group("ablation_query_shift");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for level in OptimizationLevel::ALL {
        // Naive IR (a sync per element) under each runtime configuration.
        group.bench_with_input(
            BenchmarkId::new("naive_ir", level.label()),
            &level,
            |b, &level| b.iter(|| execute_copy_loop(level.config(), LEN, false)),
        );
        // Statically coalesced IR under the same configuration.
        group.bench_with_input(
            BenchmarkId::new("coalesced_ir", level.label()),
            &level,
            |b, &level| b.iter(|| execute_copy_loop(level.config(), LEN, true)),
        );
    }
    group.finish();
}

criterion_group!(benches, ablation_query);
criterion_main!(benches);
