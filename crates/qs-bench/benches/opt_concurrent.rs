//! Table 2 / Fig. 17: coordination benchmarks per optimisation level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qs_runtime::OptimizationLevel;
use qs_workloads::concurrent::{run_concurrent_scoop, ConcurrentParams, ConcurrentTask};

fn opt_concurrent(c: &mut Criterion) {
    let params = ConcurrentParams::tiny();
    let mut group = c.benchmark_group("table2_opt_concurrent");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for task in ConcurrentTask::ALL {
        for level in OptimizationLevel::ALL {
            group.bench_with_input(
                BenchmarkId::new(task.name(), level.label()),
                &(task, level),
                |b, &(task, level)| b.iter(|| run_concurrent_scoop(task, level, &params)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, opt_concurrent);
criterion_main!(benches);
