//! Transport ablation for the §7 future-work direction: the same
//! counter workload against (a) an in-memory handler (shared-memory private
//! queues), (b) a remote node over byte channels with no latency (pure
//! serialisation overhead), and (c) a remote node with injected per-frame
//! latency (a stand-in for a network hop).
//!
//! The interesting shape: serialisation costs a constant factor on every
//! call, and latency multiplies with the number of *synchronous* operations —
//! which is exactly why the paper pushes sync-reduction so hard (§3.4).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qs_remote::{counter_registry, ChannelConfig, RemoteNode, RemoteObject, WireValue};
use qs_runtime::{Runtime, RuntimeConfig};

const CALLS_PER_BLOCK: i64 = 200;
const QUERIES_PER_BLOCK: i64 = 10;

fn in_memory(runtime: &Runtime) -> i64 {
    let counter = runtime.spawn_handler(0i64);
    let result = counter.separate(|s| {
        for _ in 0..CALLS_PER_BLOCK {
            s.call(|n| *n += 1);
        }
        let mut last = 0;
        for _ in 0..QUERIES_PER_BLOCK {
            last = s.query(|n| *n);
        }
        last
    });
    counter.stop();
    result
}

fn remote(config: ChannelConfig) -> i64 {
    let node = RemoteNode::spawn(
        "counter",
        RemoteObject::new(0i64, counter_registry()),
        config,
    );
    let proxy = node.proxy("bench");
    let result = proxy.separate(|s| {
        for _ in 0..CALLS_PER_BLOCK {
            s.call("add", vec![WireValue::Int(1)]).expect("call");
        }
        let mut last = 0;
        for _ in 0..QUERIES_PER_BLOCK {
            last = s
                .query("value", vec![])
                .expect("query")
                .as_int()
                .expect("int");
        }
        last
    });
    drop(node);
    result
}

fn ablation_remote(c: &mut Criterion) {
    let runtime = Runtime::new(RuntimeConfig::all_optimizations());

    let mut group = c.benchmark_group("ablation_remote_transport");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));

    group.bench_function(BenchmarkId::new("counter_block", "in_memory"), |b| {
        b.iter(|| in_memory(&runtime))
    });
    group.bench_function(
        BenchmarkId::new("counter_block", "remote_no_latency"),
        |b| b.iter(|| remote(ChannelConfig::fast())),
    );
    group.bench_function(
        BenchmarkId::new("counter_block", "remote_100us_latency"),
        |b| b.iter(|| remote(ChannelConfig::with_latency(Duration::from_micros(100)))),
    );
    group.finish();
}

criterion_group!(benches, ablation_remote);
criterion_main!(benches);
