//! §3.1 ablation: the specialised queue structures against the naive
//! mutex-protected queue that the unoptimised runtime uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qs_queues::{spsc_channel, Dequeue, MutexQueue, QueueOfQueues};

const ITEMS: usize = 20_000;
const PRODUCERS: usize = 4;

fn spsc_throughput() {
    let (tx, rx) = spsc_channel();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for i in 0..ITEMS {
                tx.enqueue(i);
            }
            tx.close();
        });
        let mut count = 0usize;
        while let Dequeue::Item(_) = rx.dequeue() {
            count += 1;
        }
        assert_eq!(count, ITEMS);
    });
}

fn mpsc_throughput() {
    let queue = QueueOfQueues::new();
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let queue = &queue;
            scope.spawn(move || {
                for i in 0..ITEMS / PRODUCERS {
                    queue.enqueue(p * ITEMS + i);
                }
            });
        }
        scope.spawn(|| {
            let mut count = 0usize;
            while count < (ITEMS / PRODUCERS) * PRODUCERS {
                if let Dequeue::Item(_) = queue.dequeue() {
                    count += 1;
                }
            }
            queue.close();
        });
    });
}

fn mutex_throughput() {
    let queue = MutexQueue::new();
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let queue = &queue;
            scope.spawn(move || {
                for i in 0..ITEMS / PRODUCERS {
                    queue.enqueue(p * ITEMS + i);
                }
            });
        }
        scope.spawn(|| {
            let mut count = 0usize;
            while count < (ITEMS / PRODUCERS) * PRODUCERS {
                if let Dequeue::Item(_) = queue.dequeue() {
                    count += 1;
                }
            }
            queue.close();
        });
    });
}

fn ablation_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_queue_structures");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    group.bench_function(BenchmarkId::new("spsc_private_queue", ITEMS), |b| {
        b.iter(spsc_throughput)
    });
    group.bench_function(BenchmarkId::new("mpsc_queue_of_queues", ITEMS), |b| {
        b.iter(mpsc_throughput)
    });
    group.bench_function(BenchmarkId::new("mutex_queue", ITEMS), |b| {
        b.iter(mutex_throughput)
    });
    group.finish();
}

criterion_group!(benches, ablation_queues);
criterion_main!(benches);
