//! Table 1 / Fig. 16: Cowichan communication time per optimisation level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qs_runtime::OptimizationLevel;
use qs_workloads::run_parallel_scoop;
use qs_workloads::types::{CowichanParams, ParallelTask};

fn opt_parallel(c: &mut Criterion) {
    let params = CowichanParams::tiny();
    let mut group = c.benchmark_group("table1_opt_parallel");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for task in [
        ParallelTask::Randmat,
        ParallelTask::Product,
        ParallelTask::Chain,
    ] {
        for level in OptimizationLevel::ALL {
            group.bench_with_input(
                BenchmarkId::new(task.name(), level.label()),
                &(task, level),
                |b, &(task, level)| b.iter(|| run_parallel_scoop(task, level, &params)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, opt_parallel);
criterion_main!(benches);
