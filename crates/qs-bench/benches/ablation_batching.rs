//! Batching/backpressure ablation: batch-drained, bounded mailboxes against
//! the seed's one-request-per-iteration handler loop.
//!
//! The scenario is the heavy fan-in shape the mailbox work targets: several
//! clients log bursts of asynchronous calls on one handler, ending each
//! burst with a query (so the measured time includes full drains, not just
//! enqueue throughput).  `max_batch = 1` reproduces the seed behaviour —
//! every request pays its own queue crossing; larger batches amortise that
//! cost.  The bounded variants additionally cap the handler's memory and
//! throttle the clients (backpressure) instead of letting the mailboxes
//! grow without limit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qs_runtime::{OptimizationLevel, Runtime, RuntimeConfig};

const CLIENTS: usize = 4;
const BURSTS_PER_CLIENT: usize = 20;
const CALLS_PER_BURST: usize = 64;

/// One complete fan-in round: spawn a handler, hammer it from `CLIENTS`
/// threads, drain, and return the final counter value.
fn fan_in(config: RuntimeConfig) -> u64 {
    let rt = Runtime::new(config);
    let handler = rt.spawn_handler(0u64);
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let handler = handler.clone();
            scope.spawn(move || {
                for _ in 0..BURSTS_PER_CLIENT {
                    handler.separate(|s| {
                        for _ in 0..CALLS_PER_BURST {
                            s.call(|n| *n += 1);
                        }
                        s.query(|n| *n);
                    });
                }
            });
        }
    });
    handler.shutdown_and_take().unwrap()
}

fn ablation_batching(c: &mut Criterion) {
    let expected = (CLIENTS * BURSTS_PER_CLIENT * CALLS_PER_BURST) as u64;
    let mut group = c.benchmark_group("ablation_batching");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));

    for level in [OptimizationLevel::All, OptimizationLevel::None] {
        // Seed behaviour: unbounded mailboxes, one request per iteration.
        group.bench_with_input(
            BenchmarkId::new("unbounded_batch1", level.label()),
            &level,
            |b, &level| {
                b.iter(|| {
                    let config = level.config().with_mailbox_capacity(None).with_max_batch(1);
                    assert_eq!(fan_in(config), expected);
                })
            },
        );
        // Batch draining alone (still unbounded).
        group.bench_with_input(
            BenchmarkId::new("unbounded_batch32", level.label()),
            &level,
            |b, &level| {
                b.iter(|| {
                    let config = level
                        .config()
                        .with_mailbox_capacity(None)
                        .with_max_batch(32);
                    assert_eq!(fan_in(config), expected);
                })
            },
        );
        // The full mailbox design: bounded + batch-drained (the default).
        group.bench_with_input(
            BenchmarkId::new("bounded1024_batch32", level.label()),
            &level,
            |b, &level| {
                b.iter(|| {
                    assert_eq!(fan_in(level.config()), expected);
                })
            },
        );
        // A deliberately tiny mailbox: worst-case backpressure pressure.
        group.bench_with_input(
            BenchmarkId::new("bounded16_batch32", level.label()),
            &level,
            |b, &level| {
                b.iter(|| {
                    let config = level.config().with_mailbox_capacity(Some(16));
                    assert_eq!(fan_in(config), expected);
                })
            },
        );
    }
    group.finish();

    // Evidence that the batching actually happened: run the fully optimised
    // configuration once more on an instrumented runtime and report the
    // batch statistics.  A regression to one-at-a-time draining would show
    // up here as batches_drained == 0 (or a mean batch size of exactly 1).
    let rt = Runtime::new(
        OptimizationLevel::All
            .config()
            .with_mailbox_capacity(Some(16)),
    );
    let handler = rt.spawn_handler(0u64);
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let handler = handler.clone();
            scope.spawn(move || {
                for _ in 0..BURSTS_PER_CLIENT {
                    handler.separate(|s| {
                        for _ in 0..CALLS_PER_BURST {
                            s.call(|n| *n += 1);
                        }
                        s.query(|n| *n);
                    });
                }
            });
        }
    });
    handler.stop();
    handler.wait_finished();
    let snap = rt.stats_snapshot();
    assert!(
        snap.batches_drained > 0,
        "the All configuration must drain batches"
    );
    println!(
        "ablation_batching/All(bounded16): {} batches drained, {:.2} requests per batch, \
         {} backpressure stalls, batch-size histogram {:?}",
        snap.batches_drained,
        snap.mean_batch_size(),
        snap.backpressure_stalls,
        snap.batch_size_buckets,
    );
}

criterion_group!(benches, ablation_batching);
criterion_main!(benches);
