//! `many_handlers` — the M:N scheduler's two load-bearing claims, measured:
//!
//! 1. **Scale**: ≥ 50,000 concurrently live, mostly-idle handlers under
//!    `SchedulerMode::Pooled` run on `workers + O(1)` OS threads (versus one
//!    thread per handler with dedicated scheduling), and every handler still
//!    responds when poked.
//! 2. **No low-count regression**: fan-out/fan-in throughput over 8 handlers
//!    (bursts sized within the mailbox bound — the fan-out shape) is within
//!    10% of dedicated threads, measured as aggregate throughput over
//!    interleaved rounds.  *Known trade-off, measured rather than hidden:*
//!    blocks several times the mailbox bound put the producers into
//!    sustained backpressure, and there an undersized pool (2 workers on
//!    the 1-CPU reference box) reaches ~0.4× dedicated — the pool's
//!    ring-sized service bursts replace the finer producer/consumer futex
//!    interleaving dedicated threads get from the OS (ROADMAP records the
//!    follow-up).
//!
//! Run with `cargo bench -p qs-bench --bench many_handlers`; it is a plain
//! `harness = false` binary, so failures are loud assertions.

use qs_bench::experiments::{process_threads, scheduler_point};
use qs_runtime::{OptimizationLevel, Runtime, SchedulerMode};

const IDLE_FLEET: usize = 50_000;

/// Claim 1: a 50k mostly-idle fleet costs pool-plus-epsilon threads.
fn idle_fleet_thread_bound() {
    let mode = SchedulerMode::Pooled { workers: 0 };
    let workers = mode.effective_workers().expect("pooled");
    let rt = Runtime::new(OptimizationLevel::All.config().with_scheduler(mode));
    let threads_before = process_threads();

    let fleet: Vec<_> = (0..IDLE_FLEET).map(|_| rt.spawn_handler(0u64)).collect();
    // Poke a scattered subset so the fleet is "mostly idle", not "never
    // scheduled": every poked handler must round-trip.
    for (i, handler) in fleet.iter().enumerate().step_by(997) {
        handler.call_detached(move |n| *n = i as u64);
    }
    for (i, handler) in fleet.iter().enumerate().step_by(997) {
        assert_eq!(
            handler.query_detached(|n| *n),
            i as u64,
            "handler {i} lost its poke"
        );
    }

    let peak_sched = rt.scheduler_peak_threads();
    let threads_now = process_threads();
    println!(
        "idle fleet: {IDLE_FLEET} live handlers | pool workers {workers} | \
         scheduler peak threads {peak_sched} | process threads {threads_before} -> {threads_now}"
    );
    // workers + O(1): core workers plus a small compensation allowance.
    assert!(
        peak_sched <= workers + 16,
        "50k idle handlers must not grow the pool: peak {peak_sched} vs {workers} workers"
    );
    assert_eq!(
        rt.handler_threads_created(),
        0,
        "pooled mode must not touch the dedicated thread cache"
    );
    drop(fleet);
}

/// Claim 2: at 8 handlers the pool keeps up with dedicated threads on the
/// fan-out/fan-in shape (blocks of ~2× the mailbox capacity, the pattern
/// the low-handler-count workloads produce).
///
/// Not measured here on purpose: *deep* backpressured pipelines (blocks
/// tens of times the mailbox bound) favour dedicated threads when the pool
/// is undersized relative to the active pipelines — the OS interleaves N
/// dedicated consumers more finely than a small pool rotates N tasks.
/// That trade-off is documented in the README's scheduling section.
///
/// Measurement discipline for a shared, possibly single-core CI box:
/// rounds are interleaved between the modes (machine-load drift hits both
/// alike), throughput is aggregated over all rounds rather than
/// cherry-picked, and a sub-threshold ratio is re-measured a bounded number
/// of times before failing — this is a regression gate, not a
/// microbenchmark of OS jitter.
fn low_count_throughput_parity() {
    const HANDLERS: usize = 8;
    // Fits the default mailbox bound (1024): the fan-out burst shape.
    // Measured on the reference box: ratio 0.90-0.95 here, degrading to
    // ~0.4 once blocks are several times the bound (see module doc).
    const CALLS: usize = 1_000;
    const ROUNDS: usize = 10;
    const ATTEMPTS: usize = 4;
    let measured_ratio = || -> (f64, f64, f64) {
        let mut dedicated_secs = 0.0f64;
        let mut pooled_secs = 0.0f64;
        let mut dedicated_requests = 0u64;
        let mut pooled_requests = 0u64;
        for _ in 0..ROUNDS {
            let point = scheduler_point(SchedulerMode::Dedicated, HANDLERS, CALLS);
            dedicated_secs += point.elapsed.as_secs_f64();
            dedicated_requests += point.requests;
            let point = scheduler_point(SchedulerMode::Pooled { workers: 0 }, HANDLERS, CALLS);
            pooled_secs += point.elapsed.as_secs_f64();
            pooled_requests += point.requests;
        }
        let dedicated = dedicated_requests as f64 / dedicated_secs.max(f64::MIN_POSITIVE);
        let pooled = pooled_requests as f64 / pooled_secs.max(f64::MIN_POSITIVE);
        (pooled / dedicated, dedicated, pooled)
    };
    let mut last = (0.0, 0.0, 0.0);
    for attempt in 1..=ATTEMPTS {
        last = measured_ratio();
        let (ratio, dedicated, pooled) = last;
        println!(
            "fan-out x{HANDLERS} (attempt {attempt}): dedicated {dedicated:.0} req/s | \
             pooled {pooled:.0} req/s | ratio {ratio:.3}"
        );
        if ratio >= 0.9 {
            return;
        }
    }
    let (ratio, dedicated, pooled) = last;
    panic!(
        "pooled fan-out at {HANDLERS} handlers stayed below 90% of dedicated across \
         {ATTEMPTS} attempts: {pooled:.0} vs {dedicated:.0} req/s (ratio {ratio:.3})"
    );
}

fn main() {
    idle_fleet_thread_bound();
    low_count_throughput_parity();
    println!("many_handlers: all claims hold");
}
