//! Scheduling-layer ablation: the shared-queue [`qs_exec::ThreadPool`] versus
//! the per-worker-deque [`qs_exec::StealPool`] on balanced and imbalanced
//! fork/join workloads (the §6 related-work comparison point: Cilk-style
//! work stealing versus a central queue), plus the *handler* scheduling
//! ablation — dedicated cached threads versus the M:N pool — on a fan-out /
//! fan-in workload over live handlers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qs_exec::{spawn_local, StealPool, ThreadPool};
use qs_runtime::{OptimizationLevel, Runtime, SchedulerMode};

const TASKS: usize = 512;
const WORK: u64 = 2_000;

fn busy_work(iterations: u64) -> u64 {
    let mut accumulator = 0u64;
    for i in 0..iterations {
        accumulator = accumulator
            .wrapping_mul(6364136223846793005)
            .wrapping_add(i);
    }
    accumulator
}

/// Balanced: every task is submitted externally and costs the same.
fn balanced_shared_pool(pool: &ThreadPool) -> u64 {
    let total = Arc::new(AtomicU64::new(0));
    for _ in 0..TASKS {
        let total = Arc::clone(&total);
        pool.spawn(move || {
            total.fetch_add(busy_work(WORK) & 1, Ordering::Relaxed);
        });
    }
    pool.wait_idle();
    total.load(Ordering::Relaxed)
}

fn balanced_steal_pool(pool: &StealPool) -> u64 {
    let total = Arc::new(AtomicU64::new(0));
    for _ in 0..TASKS {
        let total = Arc::clone(&total);
        pool.spawn(move || {
            total.fetch_add(busy_work(WORK) & 1, Ordering::Relaxed);
        });
    }
    pool.wait_idle();
    total.load(Ordering::Relaxed)
}

/// Imbalanced: one seed task fans out all the real work from inside the pool,
/// so without stealing it would all run on one worker.
fn imbalanced_steal_pool(pool: &Arc<StealPool>) -> u64 {
    let total = Arc::new(AtomicU64::new(0));
    {
        let total = Arc::clone(&total);
        let inner = Arc::clone(pool);
        pool.spawn(move || {
            for _ in 0..TASKS {
                let total = Arc::clone(&total);
                spawn_local(
                    move || {
                        total.fetch_add(busy_work(WORK) & 1, Ordering::Relaxed);
                    },
                    &inner,
                );
            }
        });
    }
    pool.wait_idle();
    total.load(Ordering::Relaxed)
}

fn imbalanced_shared_pool(pool: &Arc<ThreadPool>) -> u64 {
    let total = Arc::new(AtomicU64::new(0));
    {
        let total = Arc::clone(&total);
        let inner = Arc::clone(pool);
        pool.spawn(move || {
            for _ in 0..TASKS {
                let total = Arc::clone(&total);
                inner.spawn(move || {
                    total.fetch_add(busy_work(WORK) & 1, Ordering::Relaxed);
                });
            }
        });
    }
    pool.wait_idle();
    total.load(Ordering::Relaxed)
}

fn ablation_scheduler(c: &mut Criterion) {
    let threads = qs_exec::default_parallelism().min(8);
    let shared = Arc::new(ThreadPool::new(threads));
    let stealing = Arc::new(StealPool::new(threads));

    let mut group = c.benchmark_group("ablation_scheduler");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));

    group.bench_with_input(
        BenchmarkId::new("balanced", "shared_queue"),
        &shared,
        |b, pool| b.iter(|| balanced_shared_pool(pool)),
    );
    group.bench_with_input(
        BenchmarkId::new("balanced", "work_stealing"),
        &stealing,
        |b, pool| b.iter(|| balanced_steal_pool(pool)),
    );
    group.bench_with_input(
        BenchmarkId::new("imbalanced", "shared_queue"),
        &shared,
        |b, pool| b.iter(|| imbalanced_shared_pool(pool)),
    );
    group.bench_with_input(
        BenchmarkId::new("imbalanced", "work_stealing"),
        &stealing,
        |b, pool| b.iter(|| imbalanced_steal_pool(pool)),
    );
    group.finish();
}

/// Fan-out/fan-in over `handlers` live handlers: one separate block of
/// `calls` asynchronous calls per handler, then a query per handler.
fn handler_fan_out(rt: &Runtime, handlers: usize, calls: usize) -> u64 {
    let fleet: Vec<_> = (0..handlers).map(|_| rt.spawn_handler(0u64)).collect();
    for handler in &fleet {
        handler.separate(|s| {
            for _ in 0..calls {
                s.call(|n| *n += 1);
            }
        });
    }
    let total: u64 = fleet.iter().map(|h| h.query_detached(|n| *n)).sum();
    assert_eq!(total, (handlers * calls) as u64);
    total
}

fn ablation_handler_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_handler_scheduling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));

    for (label, mode) in [
        ("dedicated", SchedulerMode::Dedicated),
        ("pooled", SchedulerMode::Pooled { workers: 0 }),
    ] {
        let rt = Runtime::new(OptimizationLevel::All.config().with_scheduler(mode));
        group.bench_with_input(
            BenchmarkId::new("fan_out_8_handlers", label),
            &rt,
            |b, rt| b.iter(|| handler_fan_out(rt, 8, 200)),
        );
        group.bench_with_input(
            BenchmarkId::new("fan_out_256_handlers", label),
            &rt,
            |b, rt| b.iter(|| handler_fan_out(rt, 256, 8)),
        );
    }
    group.finish();
}

criterion_group!(benches, ablation_scheduler, ablation_handler_scheduling);
criterion_main!(benches);
