//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the property-test files
//! in this workspace run against this shim instead of the real `proptest`.
//! The shim keeps the same *surface* — the [`proptest!`] macro, [`Strategy`]
//! combinators, `any::<T>()`, ranges, tuples, string classes, and the
//! `prop_assert*` macros — but generates cases with a deterministic seeded
//! RNG and does **not** shrink failures: a failing case reports the RNG
//! state (the *case seed*) at the start of the case, which replays it
//! exactly (generation is a pure function of that state).
//!
//! Two reproducibility mechanisms mirror real proptest's workflow:
//!
//! * **Seed pinning** — the base RNG stream of every property is a pure
//!   function of the test name XOR the `PROPTEST_RNG_SEED` environment
//!   variable (default 0; CI pins it explicitly).  The same seed always
//!   replays the same cases.
//! * **Regression persistence** — before generating fresh cases, each
//!   property replays the case seeds recorded in
//!   `<crate>/proptest-regressions/<source file stem>.txt` (lines of the
//!   form `cc <test_name> <seed>`).  A failing case's panic message prints
//!   the exact `cc` line to commit, so the failure reproduces forever.

#![warn(missing_docs)]

use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic RNG used for case generation (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose stream is a pure function of `name` and of the
    /// `PROPTEST_RNG_SEED` environment variable (decimal or `0x`-prefixed
    /// hex; absent or unparsable means 0, so runs are deterministic either
    /// way — the variable exists so CI can pin the stream *explicitly* and
    /// a developer can explore alternative streams locally).
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0x9E37_79B9_7F4A_7C15u64 ^ env_seed();
        for byte in name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(byte as u64);
        }
        TestRng { state: seed }
    }

    /// Creates an RNG starting from an explicit state, as captured by
    /// [`state`](Self::state) — the replay mechanism behind regression
    /// persistence.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The current RNG state.  Captured at the start of a case, it replays
    /// that case exactly via [`from_seed`](Self::from_seed).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `usize` in the half-open range.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        let span = (range.end - range.start).max(1) as u64;
        range.start + self.below(span) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Parses `PROPTEST_RNG_SEED` (decimal or `0x`-hex); 0 when absent.
fn env_seed() -> u64 {
    match std::env::var("PROPTEST_RNG_SEED") {
        Ok(raw) => {
            let raw = raw.trim();
            let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => raw.parse(),
            };
            parsed.unwrap_or(0)
        }
        Err(_) => 0,
    }
}

// ---------------------------------------------------------------------------
// Regression persistence
// ---------------------------------------------------------------------------

/// Loading and addressing of `proptest-regressions` persistence files.
///
/// Mirrors real proptest's workflow: a shrunk failure is recorded as a `cc`
/// line in `<crate>/proptest-regressions/<source file stem>.txt` and replayed
/// before fresh generation on every subsequent run.  The shim's line format
/// is `cc <test_name> <case seed>` (`#` starts a comment); the seed is the
/// RNG state captured at the start of the failing case.
pub mod persistence {
    use std::path::Path;

    /// The persistence file for a test source file: `manifest_dir`
    /// (`env!("CARGO_MANIFEST_DIR")` at the macro call site) joined with
    /// `proptest-regressions/<stem of source_file>.txt`.
    pub fn file_for(manifest_dir: &str, source_file: &str) -> String {
        let stem = Path::new(source_file)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("unknown");
        format!("{manifest_dir}/proptest-regressions/{stem}.txt")
    }

    /// The persisted case seeds for `test_name`, in file order.  A missing
    /// or unreadable file is simply an empty set.
    pub fn load(manifest_dir: &str, source_file: &str, test_name: &str) -> Vec<u64> {
        let path = file_for(manifest_dir, source_file);
        let Ok(contents) = std::fs::read_to_string(&path) else {
            return Vec::new();
        };
        let mut seeds = Vec::new();
        for line in contents.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            if fields.next() != Some("cc") {
                continue;
            }
            let (Some(name), Some(seed)) = (fields.next(), fields.next()) else {
                continue;
            };
            if name != test_name {
                continue;
            }
            let parsed = match seed.strip_prefix("0x").or_else(|| seed.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => seed.parse(),
            };
            if let Ok(seed) = parsed {
                seeds.push(seed);
            }
        }
        seeds
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: at each of `depth` levels the generator
    /// picks either a leaf (this strategy) or a branch produced by `f` from
    /// the strategy one level down.  `_desired_size` and `_expected_branch`
    /// are accepted for API compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> ArcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(ArcStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = ArcStrategy::new(self);
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = ArcStrategy::new(f(current));
            current = ArcStrategy::new(Union {
                options: vec![(3, leaf.clone()), (1, branch)],
            });
        }
        current
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> ArcStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        ArcStrategy::new(self)
    }
}

/// A cloneable, type-erased strategy.
pub struct ArcStrategy<V> {
    inner: Rc<dyn Strategy<Value = V>>,
}

impl<V> Clone for ArcStrategy<V> {
    fn clone(&self) -> Self {
        ArcStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<V> ArcStrategy<V> {
    /// Erases `strategy`.
    pub fn new(strategy: impl Strategy<Value = V> + 'static) -> Self {
        ArcStrategy {
            inner: Rc::new(strategy),
        }
    }
}

impl<V> Strategy for ArcStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between strategies (backs [`prop_oneof!`]).
pub struct Union<V> {
    /// `(weight, strategy)` pairs.
    pub options: Vec<(u32, ArcStrategy<V>)>,
}

impl<V> Union<V> {
    /// Uniform union of `options`.
    pub fn uniform(options: Vec<ArcStrategy<V>>) -> Self {
        Union {
            options: options.into_iter().map(|s| (1, s)).collect(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total.max(1));
        for (weight, strategy) in &self.options {
            if pick < *weight as u64 {
                return strategy.generate(rng);
            }
            pick -= *weight as u64;
        }
        self.options[0].1.generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-range generation strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only; good enough for round-trip properties.
        (rng.unit_f64() - 0.5) * 2.0e12
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Ranges, tuples, strings
// ---------------------------------------------------------------------------

/// Numeric types usable as half-open range strategies.
pub trait RangeValue: Copy {
    /// Uniform sample from `[start, end)`.
    fn sample(rng: &mut TestRng, start: Self, end: Self) -> Self;
}

macro_rules! range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample(rng: &mut TestRng, start: $t, end: $t) -> $t {
                let span = (end as i128 - start as i128).max(1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeValue for f64 {
    fn sample(rng: &mut TestRng, start: f64, end: f64) -> f64 {
        start + rng.unit_f64() * (end - start)
    }
}

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng, self.start, self.end)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// `&str` patterns act as string strategies, like in real proptest.
///
/// Supported pattern shape: a single character class with a bounded repeat,
/// `[class]{m,n}` — the only shape this workspace uses.  Inside the class,
/// `a-z` ranges and literal characters (including a trailing `-`) work.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!("unsupported string pattern for the proptest shim: {self:?}")
        });
        let len = rng.usize_in(min..max + 1);
        (0..len)
            .map(|_| alphabet[rng.usize_in(0..alphabet.len())])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let repeat = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match repeat.split_once(',') {
        Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
        None => {
            let n = repeat.parse().ok()?;
            (n, n)
        }
    };
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            for c in lo..=hi {
                if let Some(c) = char::from_u32(c) {
                    alphabet.push(c);
                }
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        alphabet.push('a');
    }
    Some((alphabet, min, max))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Config and macros
// ---------------------------------------------------------------------------

/// Test-runner configuration (only `cases` is meaningful in the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
    /// Accepted for compatibility; ignored (the shim does not shrink).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let persistence_file =
                    $crate::persistence::file_for(env!("CARGO_MANIFEST_DIR"), file!());
                // Replay committed regressions first, then fresh cases from
                // the deterministic stream.
                let persisted =
                    $crate::persistence::load(env!("CARGO_MANIFEST_DIR"), file!(), stringify!($name));
                // Committed regressions replay first, each from its recorded
                // case seed.
                for &seed in &persisted {
                    let mut rng = $crate::TestRng::from_seed(seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "persisted regression {} {:#018x} failed again: {}",
                            stringify!($name), seed, message,
                        );
                    }
                }
                // Fresh cases from the (seed-pinned) deterministic stream; a
                // case is a pure function of the RNG state at its start.
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let seed = rng.state();
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property failed at case {} (seed {:#018x}): {}\n\
                             to pin this case, add the line\n    cc {} {:#018x}\n\
                             to {}",
                            case, seed, message, stringify!($name), seed, persistence_file,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {:?} != {:?}", left, right));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "{}: {:?} != {:?}", ::std::format!($($fmt)+), left, right));
        }
    }};
}

/// Weighted / uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::uniform(::std::vec![$($crate::ArcStrategy::new($strategy)),+])
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, ArcStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
            let u = Strategy::generate(&(1usize..96), &mut rng);
            assert!((1..96).contains(&u));
        }
    }

    #[test]
    fn string_patterns_generate_members_of_the_class() {
        let mut rng = TestRng::deterministic("strings");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z_]{1,16}", &mut rng);
            assert!((1..=16).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strategy = crate::collection::vec(any::<u8>().prop_map(|b| b as u32 + 1), 2..5);
        for _ in 0..100 {
            let v = Strategy::generate(&strategy, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x >= 1));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(x in 0u32..10, flag in any::<bool>()) {
            prop_assert!(x < 10, "x was {}", x);
            let doubled = x * 2;
            prop_assert_eq!(doubled % 2, 0);
            let _ = flag;
        }
    }

    #[test]
    fn from_seed_replays_a_case_exactly() {
        let mut rng = TestRng::deterministic("replay");
        // Skip a few cases' worth of draws, then capture a case seed.
        for _ in 0..17 {
            rng.next_u64();
        }
        let seed = rng.state();
        let original: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let mut replay = TestRng::from_seed(seed);
        let replayed: Vec<u64> = (0..8).map(|_| replay.next_u64()).collect();
        assert_eq!(original, replayed);
    }

    #[test]
    fn persistence_files_are_addressed_per_source_stem() {
        let path = crate::persistence::file_for("/work/crate-a", "tests/proptest_queues.rs");
        assert_eq!(
            path,
            "/work/crate-a/proptest-regressions/proptest_queues.txt"
        );
    }

    #[test]
    fn persistence_load_filters_by_test_name_and_skips_comments() {
        let dir = std::env::temp_dir().join(format!(
            "proptest-shim-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        std::fs::create_dir_all(dir.join("proptest-regressions")).unwrap();
        std::fs::write(
            dir.join("proptest-regressions/sample.txt"),
            "# comment line\n\
             cc wanted 0x10\n\
             cc other 0x20\n\
             cc wanted 48\n\
             malformed line\n\
             cc wanted\n",
        )
        .unwrap();
        let manifest = dir.to_str().unwrap();
        assert_eq!(
            crate::persistence::load(manifest, "tests/sample.rs", "wanted"),
            vec![0x10, 48]
        );
        assert_eq!(
            crate::persistence::load(manifest, "tests/sample.rs", "absent"),
            Vec::<u64>::new()
        );
        assert_eq!(
            crate::persistence::load(manifest, "tests/missing_file.rs", "wanted"),
            Vec::<u64>::new()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
