//! A minimal, dependency-free stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no network access, so the
//! handful of `parking_lot` APIs the workspace uses are provided here on top
//! of `std::sync`.  Semantics match `parking_lot` where it matters for this
//! code base: `lock()`/`read()`/`write()` return guards directly (poisoning
//! is swallowed, as `parking_lot` has no poisoning), `Mutex::new` is `const`,
//! and `Condvar::wait` takes the guard by `&mut`.

#![warn(missing_docs)]

use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock with the `parking_lot::Mutex` API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex (usable in `static` initialisers).
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                Some(MutexGuard(Some(poisoned.into_inner())))
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during Condvar::wait")
    }
}

/// Outcome of a bounded condition-variable wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Returns `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with the `parking_lot::Condvar` API.
#[derive(Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable (usable in `static` initialisers).
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and reacquiring the guard.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Like [`Condvar::wait`] but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already taken");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((inner, result)) => (inner, result),
            Err(poisoned) => {
                let (inner, result) = poisoned.into_inner();
                (inner, result)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes up one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes up all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_guard_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waker = std::thread::spawn(move || {
            *pair2.0.lock() = true;
            pair2.1.notify_all();
        });
        let mut guard = pair.0.lock();
        while !*guard {
            pair.1.wait(&mut guard);
        }
        waker.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
