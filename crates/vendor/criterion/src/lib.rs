//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the benchmark files in
//! this workspace run against this shim.  It keeps the `criterion` surface
//! the benches use — groups, [`BenchmarkId`], `bench_function` /
//! `bench_with_input`, [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — and implements a
//! simple mean-of-samples timer instead of criterion's statistics.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from eliding a value computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id, `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id consisting only of a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Types accepted where criterion accepts `impl Into<BenchmarkId>`-style ids.
pub trait IntoLabel {
    /// The printable benchmark label.
    fn into_label(self) -> String;
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// The benchmark driver.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        run_benchmark(
            &label,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            &mut routine,
        );
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Benchmarks `routine`.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_benchmark(
            &label,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            &mut routine,
        );
    }

    /// Benchmarks `routine` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl IntoLabel, input: &I, mut routine: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_benchmark(
            &label,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            &mut |bencher: &mut Bencher| routine(bencher, input),
        );
    }

    /// Ends the group (printing is per-benchmark; nothing extra to do).
    pub fn finish(self) {}
}

/// Passed to benchmark routines; runs and times the measured closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it repeatedly for the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.iterations += 1;
        self.elapsed += start.elapsed();
    }
}

fn run_benchmark<F>(
    label: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    routine: &mut F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run the routine until the warm-up budget is exhausted.
    let warm_up_start = Instant::now();
    while warm_up_start.elapsed() < warm_up {
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        if bencher.iterations == 0 {
            break;
        }
    }
    // Measurement: keep sampling until the budget or the sample count is hit.
    let mut total = Duration::ZERO;
    let mut iterations = 0u64;
    let measure_start = Instant::now();
    for _ in 0..sample_size.max(1) {
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        total += bencher.elapsed;
        iterations += bencher.iterations;
        if measure_start.elapsed() >= measurement {
            break;
        }
    }
    if iterations == 0 {
        println!("{label:<60} (no iterations)");
        return;
    }
    let nanos_per_iter = total.as_nanos() as f64 / iterations as f64;
    println!(
        "{label:<60} {:>12.1} ns/iter ({iterations} iters)",
        nanos_per_iter
    );
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.bench_function(BenchmarkId::new("sum", 8), |b| {
            b.iter(|| (0..8u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sum", "input"), &16u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
