//! Work-stealing deques (shim over `std::sync`).
//!
//! Provides the `crossbeam_deque` types used by the executor crate:
//! [`Worker`] (owner side), [`Stealer`] (thief side) and the shared
//! [`Injector`] queue.  The shim serialises each deque behind a mutex — the
//! *scheduling discipline* (LIFO owner, FIFO thieves) is preserved, which is
//! what the workloads exercise.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Outcome of a steal attempt.
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// The operation lost a race and should be retried.
    Retry,
}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Inner<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The owner side of a work-stealing deque.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    lifo: bool,
}

impl<T> Worker<T> {
    /// Creates a deque whose owner pops in LIFO order.
    pub fn new_lifo() -> Self {
        Worker {
            inner: Arc::new(Inner {
                queue: Mutex::new(VecDeque::new()),
            }),
            lifo: true,
        }
    }

    /// Creates a deque whose owner pops in FIFO order.
    pub fn new_fifo() -> Self {
        Worker {
            inner: Arc::new(Inner {
                queue: Mutex::new(VecDeque::new()),
            }),
            lifo: false,
        }
    }

    /// Pushes a task onto the owner's end.
    pub fn push(&self, task: T) {
        self.inner.lock().push_back(task);
    }

    /// Pops a task from the owner's end.
    pub fn pop(&self) -> Option<T> {
        let mut queue = self.inner.lock();
        if self.lifo {
            queue.pop_back()
        } else {
            queue.pop_front()
        }
    }

    /// Returns `true` if the deque is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Creates a [`Stealer`] for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// The thief side of a work-stealing deque.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals one task from the opposite (FIFO) end.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().pop_front() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Returns `true` if the deque is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// A shared FIFO injector queue feeding external submissions into a pool.
pub struct Injector<T> {
    inner: Inner<T>,
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector {
            inner: Inner {
                queue: Mutex::new(VecDeque::new()),
            },
        }
    }

    /// Pushes a task.
    pub fn push(&self, task: T) {
        self.inner.lock().push_back(task);
    }

    /// Steals one task.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().pop_front() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Steals a batch of tasks into `worker` and pops one of them.
    pub fn steal_batch_and_pop(&self, worker: &Worker<T>) -> Steal<T> {
        let mut queue = self.inner.lock();
        match queue.pop_front() {
            Some(first) => {
                // Move up to half of the remaining tasks over to the worker.
                let batch = queue.len() / 2;
                let mut destination = worker.inner.lock();
                for _ in 0..batch {
                    if let Some(task) = queue.pop_front() {
                        destination.push_back(task);
                    }
                }
                Steal::Success(first)
            }
            None => Steal::Empty,
        }
    }

    /// Returns `true` if the injector is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let worker = Worker::new_lifo();
        let stealer = worker.stealer();
        worker.push(1);
        worker.push(2);
        worker.push(3);
        assert_eq!(worker.pop(), Some(3));
        match stealer.steal() {
            Steal::Success(v) => assert_eq!(v, 1),
            _ => panic!("expected a stolen task"),
        }
        assert_eq!(worker.pop(), Some(2));
        assert!(worker.is_empty());
    }

    #[test]
    fn injector_is_fifo() {
        let injector = Injector::new();
        injector.push('a');
        injector.push('b');
        assert_eq!(injector.len(), 2);
        match injector.steal() {
            Steal::Success(v) => assert_eq!(v, 'a'),
            _ => panic!("expected a stolen task"),
        }
        assert!(!injector.is_empty());
    }
}
