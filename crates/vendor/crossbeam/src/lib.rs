//! A minimal, dependency-free stand-in for the `crossbeam` facade crate.
//!
//! The build environment has no network access, so the subset of the
//! `crossbeam` API used by this workspace (multi-producer/multi-consumer
//! channels and work-stealing deques) is implemented here with `std::sync`
//! primitives.  It is a functional shim, not a performance-equivalent one:
//! the baselines built on it remain valid *paradigm* baselines, but absolute
//! numbers should not be read as crossbeam numbers.

#![warn(missing_docs)]

pub mod channel;
pub mod deque;
