//! Multi-producer, multi-consumer channels (shim over `std::sync`).
//!
//! Supports the `crossbeam_channel` operations the workspace uses:
//! [`unbounded`], [`bounded`] (a capacity of zero is treated as a one-slot
//! rendezvous: `send` returns only after a receiver has taken the value),
//! cloneable [`Sender`]s and [`Receiver`]s, blocking `send`/`recv`, and the
//! draining [`Receiver::iter`] iterator.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    /// Total number of items ever popped (used for rendezvous sends).
    popped: u64,
    /// Total number of items ever pushed.
    pushed: u64,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Capacity; `None` = unbounded, `Some(0)` = rendezvous.
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when all receivers are gone.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            popped: 0,
            pushed: 0,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Creates a channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a channel buffering at most `capacity` messages.
///
/// A capacity of zero gives rendezvous-like behaviour: `send` returns only
/// once a receiver has taken the message.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(capacity))
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while the channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut state = shared.lock();
        if let Some(cap) = shared.capacity {
            let slots = cap.max(1);
            while state.queue.len() >= slots {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                state = shared
                    .not_full
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        state.pushed += 1;
        let my_seq = state.pushed;
        shared.not_empty.notify_one();
        if shared.capacity == Some(0) {
            // Rendezvous: wait until this message has been taken.
            while state.popped < my_seq {
                if state.receivers == 0 {
                    // Nobody will ever take it; reclaim the value if it is
                    // still queued, otherwise report success.
                    return match state.queue.pop_back() {
                        Some(value) => Err(SendError(value)),
                        None => Ok(()),
                    };
                }
                state = shared
                    .not_full
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking while the channel is empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut state = shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                state.popped += 1;
                shared.not_full.notify_all();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = shared
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receives a message if one is immediately available.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        let mut state = shared.lock();
        match state.queue.pop_front() {
            Some(value) => {
                state.popped += 1;
                shared.not_full.notify_all();
                Ok(value)
            }
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// A blocking iterator over received messages; ends when the channel is
    /// empty and all senders are gone.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        if state.senders == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_blocks_and_unblocks() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || tx.send(3).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn rendezvous_send_waits_for_receiver() {
        let (tx, rx) = bounded(0);
        let t = std::thread::spawn(move || {
            tx.send(7).unwrap();
            // By the time send returns, the receiver must have the value.
        });
        assert_eq!(rx.recv(), Ok(7));
        t.join().unwrap();
    }

    #[test]
    fn disconnection_is_reported() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cloned_receivers_share_the_stream() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        assert_eq!(a + b, 3);
    }
}
