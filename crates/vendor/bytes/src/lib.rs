//! A minimal, dependency-free stand-in for the `bytes` crate.
//!
//! Implements the subset used by the `qs-remote` wire format: [`Bytes`] /
//! [`BytesMut`] buffers and the [`Buf`] / [`BufMut`] cursor traits with the
//! little-endian accessors the codec needs.

#![warn(missing_docs)]

use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes(Arc::from(data))
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Appends `data`.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::from(self.0))
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte buffer.
///
/// Implemented for `&[u8]`: every `get_*` advances the slice.
pub trait Buf {
    /// Number of bytes left.
    fn remaining(&self) -> usize;

    /// Returns `true` if any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, value: i64) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, value: f64) {
        self.put_u64_le(value.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buffer = BytesMut::with_capacity(32);
        buffer.put_u8(7);
        buffer.put_u32_le(0xDEAD_BEEF);
        buffer.put_i64_le(-5);
        buffer.put_f64_le(1.5);
        buffer.put_slice(b"xyz");
        let frozen = buffer.freeze();
        let mut cursor = &frozen[..];
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_i64_le(), -5);
        assert_eq!(cursor.get_f64_le(), 1.5);
        assert_eq!(cursor.remaining(), 3);
        let mut tail = [0u8; 3];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!cursor.has_remaining());
    }
}
