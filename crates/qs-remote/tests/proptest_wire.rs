//! Property-based tests for the qs-remote wire format and transport.

use bytes::Buf;
use proptest::prelude::*;

use qs_remote::{byte_channel, decode_frame, encode_frame, ChannelConfig, Frame, WireValue};

fn arb_wire_value(depth: u32) -> impl Strategy<Value = WireValue> {
    let leaf = prop_oneof![
        Just(WireValue::Unit),
        any::<i64>().prop_map(WireValue::Int),
        any::<bool>().prop_map(WireValue::Bool),
        // NaN breaks PartialEq-based round-trip comparison; finite floats only.
        (-1.0e12f64..1.0e12).prop_map(WireValue::Float),
        "[a-zA-Z0-9 _αβγ-]{0,24}".prop_map(WireValue::Str),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(WireValue::Bytes),
    ];
    leaf.prop_recursive(depth, 64, 8, |inner| {
        proptest::collection::vec(inner, 0..8).prop_map(WireValue::List)
    })
}

fn arb_args() -> impl Strategy<Value = Vec<WireValue>> {
    proptest::collection::vec(arb_wire_value(3), 0..6)
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        ("[a-z_]{1,16}", arb_args()).prop_map(|(method, args)| Frame::Call { method, args }),
        ("[a-z_]{1,16}", arb_args()).prop_map(|(method, args)| Frame::Query { method, args }),
        Just(Frame::Sync),
        Just(Frame::SyncAck),
        Just(Frame::End),
        "[a-z0-9-]{0,16}".prop_map(|client| Frame::Hello { version: 1, client }),
        arb_wire_value(2).prop_map(|v| Frame::QueryResult { result: Ok(v) }),
        "[ -~]{0,32}".prop_map(|e| Frame::QueryResult { result: Err(e) }),
        // Wire v2: the cluster-protocol frames.
        any::<u64>().prop_map(|handler| Frame::Open { handler }),
        "[ -~]{0,48}".prop_map(|message| Frame::Nack { message }),
        ("[a-z_]{1,16}", arb_args()).prop_map(|(op, args)| Frame::Control { op, args }),
        arb_wire_value(2).prop_map(|v| Frame::ControlResult { result: Ok(v) }),
        "[ -~]{0,32}".prop_map(|e| Frame::ControlResult { result: Err(e) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn every_frame_round_trips(frame in arb_frame()) {
        let encoded = encode_frame(&frame);
        let mut cursor = &encoded[..];
        let len = cursor.get_u32_le() as usize;
        prop_assert_eq!(cursor.len(), len);
        let decoded = decode_frame(cursor).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn decoder_never_panics_on_garbage(body in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode_frame(&body);
    }

    #[test]
    fn frame_sequences_survive_the_channel(frames in proptest::collection::vec(arb_frame(), 1..24)) {
        let (sender, receiver) = byte_channel(ChannelConfig::fast());
        for frame in &frames {
            sender.send_frame(frame).unwrap();
        }
        for frame in &frames {
            prop_assert_eq!(&receiver.recv_frame().unwrap(), frame);
        }
    }

    /// Truncation at every prefix length: a partially received frame (a peer
    /// dying mid-send) must yield an error, never a panic — and never a
    /// bogus success, since a strict prefix of a valid frame body cannot be
    /// a complete frame of the self-delimiting format.
    #[test]
    fn truncated_frames_error_instead_of_panicking(frame in arb_frame()) {
        let encoded = encode_frame(&frame);
        let body = &encoded[4..]; // strip the length prefix
        for cut in 0..body.len() {
            prop_assert!(decode_frame(&body[..cut]).is_err(), "prefix of {cut} bytes decoded");
        }
    }

    /// Single-bit corruption anywhere in a valid frame body: decoding must
    /// not panic, and whatever it returns must be a clean verdict (an error
    /// or a different-but-valid frame), exactly what an untrusted socket
    /// peer can feed the node.
    #[test]
    fn bit_flipped_frames_never_panic(
        frame in arb_frame(),
        index_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let encoded = encode_frame(&frame);
        let mut body = encoded[4..].to_vec();
        if body.is_empty() {
            return Ok(());
        }
        let index = (index_seed % body.len() as u64) as usize;
        body[index] ^= 1 << bit;
        let _ = decode_frame(&body);
    }
}
