//! The byte-stream substrate private queues are serialized over.
//!
//! The paper's §7 proposes sockets as the carrier for private queues.  Two
//! substrates implement the same [`ByteSender`]/[`ByteReceiver`] surface, so
//! the node/proxy machinery in [`crate::node`] works unchanged over either:
//!
//! * **in-process byte channels** ([`byte_channel`]) — ordered bytes,
//!   blocking reads, half-close, and (optionally) injected per-flush latency
//!   and bounded send buffers so wide-area behaviour can be studied on one
//!   machine without a network;
//! * **real sockets** ([`crate::transport`]) — TCP and Unix-domain streams,
//!   for genuinely multi-process deployments (`qs-cluster`).
//!
//! On top of the raw byte stream, [`ByteSender::send_frame`] /
//! [`ByteReceiver::recv_frame`] speak the length-prefixed format of
//! [`crate::wire`].
//!
//! Both halves are cheaply cloneable handles: the underlying stream closes
//! when the *last* clone of a half is dropped (or eagerly via
//! [`ByteSender::close`]).  This is what lets a persistent cluster
//! connection lend its halves to one separate block after another.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::transport::{StreamRx, StreamTx};
use crate::wire::{decode_frame, encode_frame, DecodeError, Frame};

/// Configuration of an in-process byte channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelConfig {
    /// Latency added to every frame flush (simulated network delay).
    pub latency: Option<Duration>,
    /// Maximum number of buffered bytes before senders block (simulated
    /// socket send-buffer); `None` means unbounded.
    pub capacity: Option<usize>,
    /// How long a client waits for a query/sync/control response before
    /// surfacing a timeout instead of blocking forever (`None` = wait
    /// forever, the historical behaviour).  Applies to both substrates; on
    /// sockets this is what turns a silently dead peer into a
    /// [`crate::RemoteError::Timeout`].
    pub response_timeout: Option<Duration>,
}

impl ChannelConfig {
    /// An unbounded channel with no injected latency (the default).
    pub fn fast() -> Self {
        ChannelConfig::default()
    }

    /// A channel that delays every frame by `latency`.
    pub fn with_latency(latency: Duration) -> Self {
        ChannelConfig {
            latency: Some(latency),
            ..Default::default()
        }
    }

    /// Sets the response timeout (builder form).
    pub fn with_response_timeout(mut self, timeout: Duration) -> Self {
        self.response_timeout = Some(timeout);
        self
    }
}

#[derive(Default)]
struct Stream {
    buffer: VecDeque<u8>,
    closed: bool,
}

struct Shared {
    stream: Mutex<Stream>,
    readable: Condvar,
    writable: Condvar,
    config: ChannelConfig,
}

/// The channel-backed sending half; closes the stream when dropped.
struct ChannelTx {
    shared: Arc<Shared>,
}

/// The channel-backed receiving half; closes the stream when dropped (which
/// unblocks a sender waiting on capacity, mirroring a socket reset).
struct ChannelRx {
    shared: Arc<Shared>,
}

#[derive(Clone)]
enum SenderInner {
    Channel(Arc<ChannelTx>),
    Stream(Arc<StreamTx>),
}

#[derive(Clone)]
enum ReceiverInner {
    Channel(Arc<ChannelRx>),
    Stream(Arc<StreamRx>),
}

/// The sending half of a byte stream (in-process channel or socket).
#[derive(Clone)]
pub struct ByteSender {
    inner: SenderInner,
}

/// The receiving half of a byte stream (in-process channel or socket).
#[derive(Clone)]
pub struct ByteReceiver {
    inner: ReceiverInner,
}

/// Creates a connected in-process sender/receiver pair.
pub fn byte_channel(config: ChannelConfig) -> (ByteSender, ByteReceiver) {
    let shared = Arc::new(Shared {
        stream: Mutex::new(Stream::default()),
        readable: Condvar::new(),
        writable: Condvar::new(),
        config,
    });
    (
        ByteSender {
            inner: SenderInner::Channel(Arc::new(ChannelTx {
                shared: Arc::clone(&shared),
            })),
        },
        ByteReceiver {
            inner: ReceiverInner::Channel(Arc::new(ChannelRx { shared })),
        },
    )
}

/// Wraps the halves of an already-connected socket (used by
/// [`crate::transport`]).
pub(crate) fn stream_halves(tx: StreamTx, rx: StreamRx) -> (ByteSender, ByteReceiver) {
    (
        ByteSender {
            inner: SenderInner::Stream(Arc::new(tx)),
        },
        ByteReceiver {
            inner: ReceiverInner::Stream(Arc::new(rx)),
        },
    )
}

/// Error returned when the peer has closed the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelClosed;

impl std::fmt::Display for ChannelClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("byte channel closed by peer")
    }
}

impl std::error::Error for ChannelClosed {}

/// Errors surfaced by [`ByteReceiver::recv_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// The peer closed the channel (clean end of stream), or the underlying
    /// socket reported a connection error.
    Closed,
    /// The stream carried bytes that do not decode as a frame.
    Malformed(DecodeError),
    /// No complete frame arrived within the caller's deadline
    /// ([`ByteReceiver::recv_frame_timeout`]).  On a socket the stream may
    /// have desynchronised (a partially read frame stays consumed), so the
    /// connection should be abandoned after a timeout.
    TimedOut,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => f.write_str("byte channel closed"),
            RecvError::Malformed(e) => write!(f, "{e}"),
            RecvError::TimedOut => f.write_str("timed out waiting for a frame"),
        }
    }
}

impl std::error::Error for RecvError {}

impl ChannelTx {
    fn send_bytes(&self, bytes: &[u8]) -> Result<(), ChannelClosed> {
        if let Some(latency) = self.shared.config.latency {
            std::thread::sleep(latency);
        }
        let mut stream = self.shared.stream.lock();
        loop {
            if stream.closed {
                return Err(ChannelClosed);
            }
            let within_capacity = self
                .shared
                .config
                .capacity
                .map(|cap| stream.buffer.len() + bytes.len() <= cap.max(bytes.len()))
                .unwrap_or(true);
            if within_capacity {
                break;
            }
            self.shared.writable.wait(&mut stream);
        }
        stream.buffer.extend(bytes.iter().copied());
        drop(stream);
        self.shared.readable.notify_one();
        Ok(())
    }

    fn close(&self) {
        let mut stream = self.shared.stream.lock();
        stream.closed = true;
        drop(stream);
        self.shared.readable.notify_all();
        self.shared.writable.notify_all();
    }
}

impl Drop for ChannelTx {
    fn drop(&mut self) {
        self.close();
    }
}

impl ByteSender {
    /// Appends raw bytes to the stream, blocking while the peer's buffer is
    /// full (in-process channels with a configured capacity) or while the
    /// socket's send buffer is full (sockets — the kernel's backpressure).
    pub fn send_bytes(&self, bytes: &[u8]) -> Result<(), ChannelClosed> {
        match &self.inner {
            SenderInner::Channel(tx) => tx.send_bytes(bytes),
            SenderInner::Stream(tx) => tx.write_bytes(bytes),
        }
    }

    /// Encodes and sends one frame.
    pub fn send_frame(&self, frame: &Frame) -> Result<(), ChannelClosed> {
        let encoded: Bytes = encode_frame(frame);
        qs_obs::trace(qs_obs::TraceKind::FrameSend, encoded.len() as u64, 0);
        self.send_bytes(&encoded)
    }

    /// Closes the sending direction; the receiver sees end-of-stream after
    /// draining.  Also happens automatically when the last clone of this
    /// half is dropped.
    pub fn close(&self) {
        match &self.inner {
            SenderInner::Channel(tx) => tx.close(),
            SenderInner::Stream(tx) => tx.shutdown(),
        }
    }

    /// Human-readable description of the peer (socket address, or
    /// `"in-process"` for byte channels) — diagnostics only.
    pub fn peer(&self) -> String {
        match &self.inner {
            SenderInner::Channel(_) => "in-process".to_string(),
            SenderInner::Stream(tx) => tx.peer(),
        }
    }
}

impl ChannelRx {
    /// Blocks until exactly `n` bytes are available and returns them;
    /// reports closure if the stream ends first, `None` on deadline expiry.
    fn recv_exact_deadline(
        &self,
        n: usize,
        deadline: Option<Instant>,
    ) -> Result<Vec<u8>, RecvError> {
        let mut stream = self.shared.stream.lock();
        loop {
            if stream.buffer.len() >= n {
                let bytes: Vec<u8> = stream.buffer.drain(..n).collect();
                drop(stream);
                self.shared.writable.notify_one();
                return Ok(bytes);
            }
            if stream.closed {
                return Err(RecvError::Closed);
            }
            match deadline {
                None => self.shared.readable.wait(&mut stream),
                Some(deadline) => {
                    let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                        return Err(RecvError::TimedOut);
                    };
                    if self
                        .shared
                        .readable
                        .wait_for(&mut stream, remaining)
                        .timed_out()
                        && stream.buffer.len() < n
                        && !stream.closed
                    {
                        return Err(RecvError::TimedOut);
                    }
                }
            }
        }
    }

    fn close(&self) {
        let mut stream = self.shared.stream.lock();
        stream.closed = true;
        drop(stream);
        self.shared.writable.notify_all();
        self.shared.readable.notify_all();
    }
}

impl Drop for ChannelRx {
    fn drop(&mut self) {
        // Closing from the receiving side unblocks a sender waiting on
        // capacity, mirroring a socket reset.
        self.close();
    }
}

impl ByteReceiver {
    /// Blocks until exactly `n` bytes are available and returns them, or
    /// reports closure if the stream ends first.
    pub fn recv_exact(&self, n: usize) -> Result<Vec<u8>, ChannelClosed> {
        match &self.inner {
            ReceiverInner::Channel(rx) => {
                rx.recv_exact_deadline(n, None).map_err(|_| ChannelClosed)
            }
            ReceiverInner::Stream(rx) => {
                let mut buffer = vec![0u8; n];
                rx.read_exact(&mut buffer, None)
                    .map_err(|_| ChannelClosed)?;
                Ok(buffer)
            }
        }
    }

    /// Receives one length-prefixed frame, blocking until it is complete.
    pub fn recv_frame(&self) -> Result<Frame, RecvError> {
        self.recv_frame_timeout(None)
    }

    /// Receives one length-prefixed frame, giving up after `timeout`
    /// (`None` = block forever).
    ///
    /// After [`RecvError::TimedOut`] on a *socket*, the stream may be
    /// desynchronised (partial frames stay consumed by the kernel): abandon
    /// the connection rather than reading further.
    pub fn recv_frame_timeout(&self, timeout: Option<Duration>) -> Result<Frame, RecvError> {
        let body = match &self.inner {
            ReceiverInner::Channel(rx) => {
                let deadline = timeout.map(|t| Instant::now() + t);
                let header = rx.recv_exact_deadline(4, deadline)?;
                let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
                rx.recv_exact_deadline(len, deadline)?
            }
            ReceiverInner::Stream(rx) => {
                let mut header = [0u8; 4];
                rx.read_exact(&mut header, timeout)?;
                let len = u32::from_le_bytes(header) as usize;
                if len > crate::wire::MAX_FRAME_LEN {
                    return Err(RecvError::Malformed(DecodeError {
                        message: format!("frame length {len} exceeds the wire limit"),
                    }));
                }
                let mut body = vec![0u8; len];
                rx.read_exact(&mut body, timeout)?;
                body
            }
        };
        // 4 header bytes + body = the peer's FrameSend payload size.
        qs_obs::trace(qs_obs::TraceKind::FrameRecv, body.len() as u64 + 4, 0);
        decode_frame(&body).map_err(RecvError::Malformed)
    }

    /// Returns `true` when the sender has closed the channel and no buffered
    /// bytes remain.  Socket receivers cannot observe this without reading
    /// and always return `false`.
    pub fn is_drained(&self) -> bool {
        match &self.inner {
            ReceiverInner::Channel(rx) => {
                let stream = rx.shared.stream.lock();
                stream.closed && stream.buffer.is_empty()
            }
            ReceiverInner::Stream(_) => false,
        }
    }

    /// Number of bytes currently buffered in-process (diagnostics; socket
    /// receivers report 0 — their backlog lives in the kernel).
    pub fn buffered_bytes(&self) -> usize {
        match &self.inner {
            ReceiverInner::Channel(rx) => rx.shared.stream.lock().buffer.len(),
            ReceiverInner::Stream(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireValue;

    #[test]
    fn frames_cross_the_channel_in_order() {
        let (sender, receiver) = byte_channel(ChannelConfig::fast());
        let frames = vec![
            Frame::Hello {
                version: 1,
                client: "c".into(),
            },
            Frame::Call {
                method: "m".into(),
                args: vec![WireValue::Int(1)],
            },
            Frame::Sync,
            Frame::End,
        ];
        for frame in &frames {
            sender.send_frame(frame).unwrap();
        }
        for frame in &frames {
            assert_eq!(&receiver.recv_frame().unwrap(), frame);
        }
    }

    #[test]
    fn receiver_blocks_until_data_arrives() {
        let (sender, receiver) = byte_channel(ChannelConfig::fast());
        let reader = std::thread::spawn(move || receiver.recv_frame().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        sender.send_frame(&Frame::SyncAck).unwrap();
        assert_eq!(reader.join().unwrap(), Frame::SyncAck);
    }

    #[test]
    fn close_is_seen_as_end_of_stream() {
        let (sender, receiver) = byte_channel(ChannelConfig::fast());
        sender.send_frame(&Frame::End).unwrap();
        sender.close();
        assert_eq!(receiver.recv_frame().unwrap(), Frame::End);
        assert_eq!(receiver.recv_frame(), Err(RecvError::Closed));
        assert!(receiver.is_drained());
        assert!(sender.send_frame(&Frame::Sync).is_err());
    }

    #[test]
    fn dropping_sender_closes_the_stream() {
        let (sender, receiver) = byte_channel(ChannelConfig::fast());
        drop(sender);
        assert_eq!(receiver.recv_frame(), Err(RecvError::Closed));
    }

    #[test]
    fn cloned_halves_keep_the_stream_open_until_the_last_drop() {
        let (sender, receiver) = byte_channel(ChannelConfig::fast());
        let extra = sender.clone();
        drop(sender);
        // One clone still alive: the stream stays open.
        extra.send_frame(&Frame::Sync).unwrap();
        assert_eq!(receiver.recv_frame().unwrap(), Frame::Sync);
        drop(extra);
        assert_eq!(receiver.recv_frame(), Err(RecvError::Closed));
    }

    #[test]
    fn recv_frame_timeout_expires_and_then_recovers() {
        let (sender, receiver) = byte_channel(ChannelConfig::fast());
        let start = Instant::now();
        assert_eq!(
            receiver.recv_frame_timeout(Some(Duration::from_millis(30))),
            Err(RecvError::TimedOut)
        );
        assert!(start.elapsed() >= Duration::from_millis(30));
        // In-process channels consume nothing on timeout: a later frame is
        // still received intact.
        sender.send_frame(&Frame::SyncAck).unwrap();
        assert_eq!(
            receiver.recv_frame_timeout(Some(Duration::from_secs(5))),
            Ok(Frame::SyncAck)
        );
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (sender, receiver) = byte_channel(ChannelConfig {
            capacity: Some(64),
            ..ChannelConfig::default()
        });
        // Fill beyond the capacity from another thread; the sender must not
        // lose data and must finish once the receiver drains.
        let writer = std::thread::spawn(move || {
            for i in 0..100u32 {
                sender
                    .send_frame(&Frame::Call {
                        method: format!("m{i}"),
                        args: vec![WireValue::Int(i as i64)],
                    })
                    .unwrap();
            }
        });
        let mut received = 0;
        while received < 100 {
            match receiver.recv_frame().unwrap() {
                Frame::Call { args, .. } => {
                    assert_eq!(args[0], WireValue::Int(received));
                    received += 1;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        writer.join().unwrap();
    }

    #[test]
    fn latency_injection_delays_delivery() {
        let (sender, receiver) =
            byte_channel(ChannelConfig::with_latency(Duration::from_millis(5)));
        let start = std::time::Instant::now();
        for _ in 0..4 {
            sender.send_frame(&Frame::Sync).unwrap();
        }
        for _ in 0..4 {
            receiver.recv_frame().unwrap();
        }
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn buffered_bytes_reports_backlog() {
        let (sender, receiver) = byte_channel(ChannelConfig::fast());
        assert_eq!(receiver.buffered_bytes(), 0);
        sender.send_frame(&Frame::Sync).unwrap();
        assert!(receiver.buffered_bytes() > 0);
        receiver.recv_frame().unwrap();
        assert_eq!(receiver.buffered_bytes(), 0);
        assert_eq!(sender.peer(), "in-process");
    }
}
