//! The byte-channel substrate standing in for a socket pair.
//!
//! The paper's §7 proposes sockets as the carrier for private queues; this
//! repository has no network, so the carrier is an in-process byte stream
//! with the same interface a socket would give the runtime: ordered bytes,
//! blocking reads, half-close, and (optionally) injected per-flush latency so
//! wide-area behaviour can be studied on one machine.
//!
//! On top of the raw byte stream, [`ByteSender::send_frame`] /
//! [`ByteReceiver::recv_frame`] speak the length-prefixed format of
//! [`crate::wire`].

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::wire::{decode_frame, encode_frame, DecodeError, Frame};

/// Configuration of a byte channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelConfig {
    /// Latency added to every frame flush (simulated network delay).
    pub latency: Option<Duration>,
    /// Maximum number of buffered bytes before senders block (simulated
    /// socket send-buffer); `None` means unbounded.
    pub capacity: Option<usize>,
}

impl ChannelConfig {
    /// An unbounded channel with no injected latency (the default).
    pub fn fast() -> Self {
        ChannelConfig::default()
    }

    /// A channel that delays every frame by `latency`.
    pub fn with_latency(latency: Duration) -> Self {
        ChannelConfig {
            latency: Some(latency),
            ..Default::default()
        }
    }
}

#[derive(Default)]
struct Stream {
    buffer: VecDeque<u8>,
    closed: bool,
}

struct Shared {
    stream: Mutex<Stream>,
    readable: Condvar,
    writable: Condvar,
    config: ChannelConfig,
}

/// The sending half of a byte channel.
pub struct ByteSender {
    shared: Arc<Shared>,
}

/// The receiving half of a byte channel.
pub struct ByteReceiver {
    shared: Arc<Shared>,
}

/// Creates a connected sender/receiver pair.
pub fn byte_channel(config: ChannelConfig) -> (ByteSender, ByteReceiver) {
    let shared = Arc::new(Shared {
        stream: Mutex::new(Stream::default()),
        readable: Condvar::new(),
        writable: Condvar::new(),
        config,
    });
    (
        ByteSender {
            shared: Arc::clone(&shared),
        },
        ByteReceiver { shared },
    )
}

/// Error returned when the peer has closed the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelClosed;

impl std::fmt::Display for ChannelClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("byte channel closed by peer")
    }
}

impl std::error::Error for ChannelClosed {}

/// Errors surfaced by [`ByteReceiver::recv_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// The peer closed the channel (clean end of stream).
    Closed,
    /// The stream carried bytes that do not decode as a frame.
    Malformed(DecodeError),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => f.write_str("byte channel closed"),
            RecvError::Malformed(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RecvError {}

impl ByteSender {
    /// Appends raw bytes to the stream, blocking while the peer's buffer is
    /// full (when a capacity was configured).
    pub fn send_bytes(&self, bytes: &[u8]) -> Result<(), ChannelClosed> {
        if let Some(latency) = self.shared.config.latency {
            std::thread::sleep(latency);
        }
        let mut stream = self.shared.stream.lock();
        loop {
            if stream.closed {
                return Err(ChannelClosed);
            }
            let within_capacity = self
                .shared
                .config
                .capacity
                .map(|cap| stream.buffer.len() + bytes.len() <= cap.max(bytes.len()))
                .unwrap_or(true);
            if within_capacity {
                break;
            }
            self.shared.writable.wait(&mut stream);
        }
        stream.buffer.extend(bytes.iter().copied());
        drop(stream);
        self.shared.readable.notify_one();
        Ok(())
    }

    /// Encodes and sends one frame.
    pub fn send_frame(&self, frame: &Frame) -> Result<(), ChannelClosed> {
        let encoded: Bytes = encode_frame(frame);
        self.send_bytes(&encoded)
    }

    /// Closes the channel; the receiver sees end-of-stream after draining.
    pub fn close(&self) {
        let mut stream = self.shared.stream.lock();
        stream.closed = true;
        drop(stream);
        self.shared.readable.notify_all();
        self.shared.writable.notify_all();
    }
}

impl Drop for ByteSender {
    fn drop(&mut self) {
        self.close();
    }
}

impl ByteReceiver {
    /// Blocks until exactly `n` bytes are available and returns them, or
    /// reports closure if the stream ends first.
    pub fn recv_exact(&self, n: usize) -> Result<Vec<u8>, ChannelClosed> {
        let mut stream = self.shared.stream.lock();
        loop {
            if stream.buffer.len() >= n {
                let bytes: Vec<u8> = stream.buffer.drain(..n).collect();
                drop(stream);
                self.shared.writable.notify_one();
                return Ok(bytes);
            }
            if stream.closed {
                return Err(ChannelClosed);
            }
            self.shared.readable.wait(&mut stream);
        }
    }

    /// Receives one length-prefixed frame, blocking until it is complete.
    pub fn recv_frame(&self) -> Result<Frame, RecvError> {
        let header = self.recv_exact(4).map_err(|_| RecvError::Closed)?;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let body = self.recv_exact(len).map_err(|_| RecvError::Closed)?;
        decode_frame(&body).map_err(RecvError::Malformed)
    }

    /// Returns `true` when the sender has closed the channel and no buffered
    /// bytes remain.
    pub fn is_drained(&self) -> bool {
        let stream = self.shared.stream.lock();
        stream.closed && stream.buffer.is_empty()
    }

    /// Number of bytes currently buffered (diagnostics).
    pub fn buffered_bytes(&self) -> usize {
        self.shared.stream.lock().buffer.len()
    }
}

impl Drop for ByteReceiver {
    fn drop(&mut self) {
        // Closing from the receiving side unblocks a sender waiting on
        // capacity, mirroring a socket reset.
        let mut stream = self.shared.stream.lock();
        stream.closed = true;
        drop(stream);
        self.shared.writable.notify_all();
        self.shared.readable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireValue;

    #[test]
    fn frames_cross_the_channel_in_order() {
        let (sender, receiver) = byte_channel(ChannelConfig::fast());
        let frames = vec![
            Frame::Hello {
                version: 1,
                client: "c".into(),
            },
            Frame::Call {
                method: "m".into(),
                args: vec![WireValue::Int(1)],
            },
            Frame::Sync,
            Frame::End,
        ];
        for frame in &frames {
            sender.send_frame(frame).unwrap();
        }
        for frame in &frames {
            assert_eq!(&receiver.recv_frame().unwrap(), frame);
        }
    }

    #[test]
    fn receiver_blocks_until_data_arrives() {
        let (sender, receiver) = byte_channel(ChannelConfig::fast());
        let reader = std::thread::spawn(move || receiver.recv_frame().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        sender.send_frame(&Frame::SyncAck).unwrap();
        assert_eq!(reader.join().unwrap(), Frame::SyncAck);
    }

    #[test]
    fn close_is_seen_as_end_of_stream() {
        let (sender, receiver) = byte_channel(ChannelConfig::fast());
        sender.send_frame(&Frame::End).unwrap();
        sender.close();
        assert_eq!(receiver.recv_frame().unwrap(), Frame::End);
        assert_eq!(receiver.recv_frame(), Err(RecvError::Closed));
        assert!(receiver.is_drained());
        assert!(sender.send_frame(&Frame::Sync).is_err());
    }

    #[test]
    fn dropping_sender_closes_the_stream() {
        let (sender, receiver) = byte_channel(ChannelConfig::fast());
        drop(sender);
        assert_eq!(receiver.recv_frame(), Err(RecvError::Closed));
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (sender, receiver) = byte_channel(ChannelConfig {
            capacity: Some(64),
            latency: None,
        });
        // Fill beyond the capacity from another thread; the sender must not
        // lose data and must finish once the receiver drains.
        let writer = std::thread::spawn(move || {
            for i in 0..100u32 {
                sender
                    .send_frame(&Frame::Call {
                        method: format!("m{i}"),
                        args: vec![WireValue::Int(i as i64)],
                    })
                    .unwrap();
            }
        });
        let mut received = 0;
        while received < 100 {
            match receiver.recv_frame().unwrap() {
                Frame::Call { args, .. } => {
                    assert_eq!(args[0], WireValue::Int(received));
                    received += 1;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        writer.join().unwrap();
    }

    #[test]
    fn latency_injection_delays_delivery() {
        let (sender, receiver) =
            byte_channel(ChannelConfig::with_latency(Duration::from_millis(5)));
        let start = std::time::Instant::now();
        for _ in 0..4 {
            sender.send_frame(&Frame::Sync).unwrap();
        }
        for _ in 0..4 {
            receiver.recv_frame().unwrap();
        }
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn buffered_bytes_reports_backlog() {
        let (sender, receiver) = byte_channel(ChannelConfig::fast());
        assert_eq!(receiver.buffered_bytes(), 0);
        sender.send_frame(&Frame::Sync).unwrap();
        assert!(receiver.buffered_bytes() > 0);
        receiver.recv_frame().unwrap();
        assert_eq!(receiver.buffered_bytes(), 0);
    }
}
