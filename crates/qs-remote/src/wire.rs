//! The wire format: length-prefixed, binary-encoded call frames.
//!
//! A memory-resident private queue can carry a boxed closure; a byte stream
//! cannot.  Remote requests therefore name a registered method and carry
//! self-describing argument values ([`WireValue`]), mirroring how the paper's
//! in-memory runtime packages asynchronous calls with libffi (§3.2) — the
//! packaging cost simply becomes serialisation cost.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! +------------+----------------------------+
//! | u32 length | length bytes of frame body |
//! +------------+----------------------------+
//! ```
//!
//! The body starts with a one-byte frame tag followed by tag-specific fields.
//! Values are encoded with a one-byte type tag.  The format is deliberately
//! simple and versioned by [`WIRE_VERSION`].

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Version byte embedded in every `Hello` frame.
///
/// Version 2 added the cluster frames ([`Frame::Open`], [`Frame::Nack`],
/// [`Frame::Control`], [`Frame::ControlResult`]) that multiplex many
/// handler-addressed blocks over one persistent connection.
pub const WIRE_VERSION: u8 = 2;

/// Upper bound on a frame body accepted from an *untrusted* byte stream
/// (sockets).  A corrupt or hostile length prefix must not make the reader
/// allocate gigabytes; in-process channels skip the check (both ends are the
/// same trusted program).
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// A self-describing value carried in call frames.
#[derive(Debug, Clone, PartialEq)]
pub enum WireValue {
    /// Absence of a value.
    Unit,
    /// A signed 64-bit integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A 64-bit float.
    Float(f64),
    /// A UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// A list of values.
    List(Vec<WireValue>),
}

impl WireValue {
    /// Extracts an integer, or an error message describing the mismatch.
    pub fn as_int(&self) -> Result<i64, String> {
        match self {
            WireValue::Int(n) => Ok(*n),
            other => Err(format!("expected Int, found {other:?}")),
        }
    }

    /// Extracts a boolean.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            WireValue::Bool(b) => Ok(*b),
            other => Err(format!("expected Bool, found {other:?}")),
        }
    }

    /// Extracts a string slice.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            WireValue::Str(s) => Ok(s),
            other => Err(format!("expected Str, found {other:?}")),
        }
    }

    /// Extracts a list slice.
    pub fn as_list(&self) -> Result<&[WireValue], String> {
        match self {
            WireValue::List(items) => Ok(items),
            other => Err(format!("expected List, found {other:?}")),
        }
    }
}

/// One frame of the client↔handler protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Sent once when a private queue is registered; carries the protocol
    /// version and the client's name (diagnostics only).
    Hello {
        /// Protocol version ([`WIRE_VERSION`]).
        version: u8,
        /// Free-form client name.
        client: String,
    },
    /// An asynchronous command (the `call` rule): apply `method` to the
    /// handler-owned object.
    Call {
        /// Registered method name.
        method: String,
        /// Arguments.
        args: Vec<WireValue>,
    },
    /// A synchronous query (the `query` rule): apply `method` and send the
    /// result back on the response stream.
    Query {
        /// Registered method name.
        method: String,
        /// Arguments.
        args: Vec<WireValue>,
    },
    /// A sync token: the handler replies with [`Frame::SyncAck`] once every
    /// earlier frame of this private queue has been applied (§3.2).
    Sync,
    /// Handler → client: acknowledges a [`Frame::Sync`].
    SyncAck,
    /// Handler → client: the result of a [`Frame::Query`].
    QueryResult {
        /// The outcome: the value, or an application-level error message.
        result: Result<WireValue, String>,
    },
    /// The END marker closing the client's private queue (the `end` rule).
    End,
    /// Opens a separate block against one handler of a multi-handler node —
    /// the cluster analogue of [`Frame::Hello`].  On a persistent connection
    /// each block is `Open … (Call|Query|Sync)* … End`; the node registers a
    /// fresh private queue for `handler` when it sees the `Open`.
    Open {
        /// The target handler's cluster-wide identifier (what the placement
        /// ring hashes).
        handler: u64,
    },
    /// Node → client: the preceding [`Frame::Open`] (or [`Frame::Hello`])
    /// was rejected; the connection is about to close.
    Nack {
        /// Why the node refused (version mismatch, unknown shard, …).
        message: String,
    },
    /// A node-level control operation outside any handler: `"ping"`,
    /// `"stats"`, `"shutdown"`, … (the small management surface a real
    /// service needs; see `qs-cluster` for the registered operations).
    Control {
        /// Operation name.
        op: String,
        /// Arguments.
        args: Vec<WireValue>,
    },
    /// Node → client: the outcome of a [`Frame::Control`] operation.
    ControlResult {
        /// The value, or an error message.
        result: Result<WireValue, String>,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_CALL: u8 = 2;
const TAG_QUERY: u8 = 3;
const TAG_SYNC: u8 = 4;
const TAG_SYNC_ACK: u8 = 5;
const TAG_QUERY_RESULT: u8 = 6;
const TAG_END: u8 = 7;
const TAG_OPEN: u8 = 8;
const TAG_NACK: u8 = 9;
const TAG_CONTROL: u8 = 10;
const TAG_CONTROL_RESULT: u8 = 11;

const VTAG_UNIT: u8 = 0;
const VTAG_INT: u8 = 1;
const VTAG_BOOL: u8 = 2;
const VTAG_FLOAT: u8 = 3;
const VTAG_STR: u8 = 4;
const VTAG_BYTES: u8 = 5;
const VTAG_LIST: u8 = 6;

/// Errors produced while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

fn decode_err<T>(message: impl Into<String>) -> Result<T, DecodeError> {
    Err(DecodeError {
        message: message.into(),
    })
}

/// Encodes a frame as a length-prefixed byte buffer ready to be written to a
/// byte channel.
pub fn encode_frame(frame: &Frame) -> Bytes {
    let mut body = BytesMut::with_capacity(64);
    match frame {
        Frame::Hello { version, client } => {
            body.put_u8(TAG_HELLO);
            body.put_u8(*version);
            put_string(&mut body, client);
        }
        Frame::Call { method, args } => {
            body.put_u8(TAG_CALL);
            put_string(&mut body, method);
            put_values(&mut body, args);
        }
        Frame::Query { method, args } => {
            body.put_u8(TAG_QUERY);
            put_string(&mut body, method);
            put_values(&mut body, args);
        }
        Frame::Sync => body.put_u8(TAG_SYNC),
        Frame::SyncAck => body.put_u8(TAG_SYNC_ACK),
        Frame::QueryResult { result } => {
            body.put_u8(TAG_QUERY_RESULT);
            match result {
                Ok(value) => {
                    body.put_u8(1);
                    put_value(&mut body, value);
                }
                Err(message) => {
                    body.put_u8(0);
                    put_string(&mut body, message);
                }
            }
        }
        Frame::End => body.put_u8(TAG_END),
        Frame::Open { handler } => {
            body.put_u8(TAG_OPEN);
            body.put_u64_le(*handler);
        }
        Frame::Nack { message } => {
            body.put_u8(TAG_NACK);
            put_string(&mut body, message);
        }
        Frame::Control { op, args } => {
            body.put_u8(TAG_CONTROL);
            put_string(&mut body, op);
            put_values(&mut body, args);
        }
        Frame::ControlResult { result } => {
            body.put_u8(TAG_CONTROL_RESULT);
            match result {
                Ok(value) => {
                    body.put_u8(1);
                    put_value(&mut body, value);
                }
                Err(message) => {
                    body.put_u8(0);
                    put_string(&mut body, message);
                }
            }
        }
    }
    let mut framed = BytesMut::with_capacity(4 + body.len());
    framed.put_u32_le(body.len() as u32);
    framed.extend_from_slice(&body);
    framed.freeze()
}

/// Decodes one frame from a body buffer (the length prefix must already have
/// been consumed by the transport layer).
pub fn decode_frame(mut body: &[u8]) -> Result<Frame, DecodeError> {
    if body.is_empty() {
        return decode_err("empty frame body");
    }
    let tag = body.get_u8();
    let frame = match tag {
        TAG_HELLO => {
            if body.remaining() < 1 {
                return decode_err("hello frame missing version");
            }
            let version = body.get_u8();
            let client = get_string(&mut body)?;
            Frame::Hello { version, client }
        }
        TAG_CALL => Frame::Call {
            method: get_string(&mut body)?,
            args: get_values(&mut body)?,
        },
        TAG_QUERY => Frame::Query {
            method: get_string(&mut body)?,
            args: get_values(&mut body)?,
        },
        TAG_SYNC => Frame::Sync,
        TAG_SYNC_ACK => Frame::SyncAck,
        TAG_QUERY_RESULT => {
            if body.remaining() < 1 {
                return decode_err("query result frame missing status");
            }
            let ok = body.get_u8() == 1;
            if ok {
                Frame::QueryResult {
                    result: Ok(get_value(&mut body)?),
                }
            } else {
                Frame::QueryResult {
                    result: Err(get_string(&mut body)?),
                }
            }
        }
        TAG_END => Frame::End,
        TAG_OPEN => {
            if body.remaining() < 8 {
                return decode_err("truncated Open handler id");
            }
            Frame::Open {
                handler: body.get_u64_le(),
            }
        }
        TAG_NACK => Frame::Nack {
            message: get_string(&mut body)?,
        },
        TAG_CONTROL => Frame::Control {
            op: get_string(&mut body)?,
            args: get_values(&mut body)?,
        },
        TAG_CONTROL_RESULT => {
            if body.remaining() < 1 {
                return decode_err("control result frame missing status");
            }
            let ok = body.get_u8() == 1;
            if ok {
                Frame::ControlResult {
                    result: Ok(get_value(&mut body)?),
                }
            } else {
                Frame::ControlResult {
                    result: Err(get_string(&mut body)?),
                }
            }
        }
        other => return decode_err(format!("unknown frame tag {other}")),
    };
    if body.has_remaining() {
        return decode_err(format!("{} trailing byte(s) after frame", body.remaining()));
    }
    Ok(frame)
}

fn put_string(buffer: &mut BytesMut, value: &str) {
    buffer.put_u32_le(value.len() as u32);
    buffer.put_slice(value.as_bytes());
}

fn get_string(body: &mut &[u8]) -> Result<String, DecodeError> {
    if body.remaining() < 4 {
        return decode_err("truncated string length");
    }
    let len = body.get_u32_le() as usize;
    if body.remaining() < len {
        return decode_err("truncated string payload");
    }
    let (head, rest) = body.split_at(len);
    let value = std::str::from_utf8(head)
        .map_err(|_| DecodeError {
            message: "string payload is not UTF-8".to_string(),
        })?
        .to_string();
    *body = rest;
    Ok(value)
}

fn put_values(buffer: &mut BytesMut, values: &[WireValue]) {
    buffer.put_u32_le(values.len() as u32);
    for value in values {
        put_value(buffer, value);
    }
}

fn get_values(body: &mut &[u8]) -> Result<Vec<WireValue>, DecodeError> {
    if body.remaining() < 4 {
        return decode_err("truncated value-list length");
    }
    let count = body.get_u32_le() as usize;
    if count > 1 << 24 {
        return decode_err(format!("value list of length {count} exceeds limits"));
    }
    let mut values = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        values.push(get_value(body)?);
    }
    Ok(values)
}

fn put_value(buffer: &mut BytesMut, value: &WireValue) {
    match value {
        WireValue::Unit => buffer.put_u8(VTAG_UNIT),
        WireValue::Int(n) => {
            buffer.put_u8(VTAG_INT);
            buffer.put_i64_le(*n);
        }
        WireValue::Bool(b) => {
            buffer.put_u8(VTAG_BOOL);
            buffer.put_u8(u8::from(*b));
        }
        WireValue::Float(x) => {
            buffer.put_u8(VTAG_FLOAT);
            buffer.put_f64_le(*x);
        }
        WireValue::Str(s) => {
            buffer.put_u8(VTAG_STR);
            put_string(buffer, s);
        }
        WireValue::Bytes(bytes) => {
            buffer.put_u8(VTAG_BYTES);
            buffer.put_u32_le(bytes.len() as u32);
            buffer.put_slice(bytes);
        }
        WireValue::List(items) => {
            buffer.put_u8(VTAG_LIST);
            put_values(buffer, items);
        }
    }
}

fn get_value(body: &mut &[u8]) -> Result<WireValue, DecodeError> {
    if body.remaining() < 1 {
        return decode_err("truncated value tag");
    }
    let tag = body.get_u8();
    let value = match tag {
        VTAG_UNIT => WireValue::Unit,
        VTAG_INT => {
            if body.remaining() < 8 {
                return decode_err("truncated Int");
            }
            WireValue::Int(body.get_i64_le())
        }
        VTAG_BOOL => {
            if body.remaining() < 1 {
                return decode_err("truncated Bool");
            }
            WireValue::Bool(body.get_u8() != 0)
        }
        VTAG_FLOAT => {
            if body.remaining() < 8 {
                return decode_err("truncated Float");
            }
            WireValue::Float(body.get_f64_le())
        }
        VTAG_STR => WireValue::Str(get_string(body)?),
        VTAG_BYTES => {
            if body.remaining() < 4 {
                return decode_err("truncated Bytes length");
            }
            let len = body.get_u32_le() as usize;
            if body.remaining() < len {
                return decode_err("truncated Bytes payload");
            }
            let (head, rest) = body.split_at(len);
            let bytes = head.to_vec();
            *body = rest;
            WireValue::Bytes(bytes)
        }
        VTAG_LIST => WireValue::List(get_values(body)?),
        other => return decode_err(format!("unknown value tag {other}")),
    };
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let encoded = encode_frame(&frame);
        // Strip the length prefix the way the transport does.
        let mut cursor = &encoded[..];
        let len = cursor.get_u32_le() as usize;
        assert_eq!(cursor.len(), len);
        let decoded = decode_frame(cursor).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn all_frame_kinds_roundtrip() {
        roundtrip(Frame::Hello {
            version: WIRE_VERSION,
            client: "client-1".to_string(),
        });
        roundtrip(Frame::Call {
            method: "deposit".to_string(),
            args: vec![WireValue::Int(25), WireValue::Bool(true)],
        });
        roundtrip(Frame::Query {
            method: "balance".to_string(),
            args: vec![],
        });
        roundtrip(Frame::Sync);
        roundtrip(Frame::SyncAck);
        roundtrip(Frame::QueryResult {
            result: Ok(WireValue::List(vec![
                WireValue::Int(-3),
                WireValue::Str("αβγ".to_string()),
                WireValue::Bytes(vec![0, 255, 128]),
                WireValue::Float(1.5),
                WireValue::Unit,
            ])),
        });
        roundtrip(Frame::QueryResult {
            result: Err("no such method".to_string()),
        });
        roundtrip(Frame::End);
        roundtrip(Frame::Open {
            handler: u64::MAX - 7,
        });
        roundtrip(Frame::Nack {
            message: "wrong shard".to_string(),
        });
        roundtrip(Frame::Control {
            op: "stats".to_string(),
            args: vec![WireValue::Str("detail".to_string())],
        });
        roundtrip(Frame::ControlResult {
            result: Ok(WireValue::Int(3)),
        });
        roundtrip(Frame::ControlResult {
            result: Err("unknown op".to_string()),
        });
    }

    #[test]
    fn nested_lists_roundtrip() {
        roundtrip(Frame::Call {
            method: "matrix_row".to_string(),
            args: vec![WireValue::List(vec![
                WireValue::List(vec![WireValue::Int(1), WireValue::Int(2)]),
                WireValue::List(vec![]),
            ])],
        });
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_frame(&[]).is_err());
        assert!(decode_frame(&[99]).is_err());
        // Truncated string length.
        assert!(decode_frame(&[TAG_CALL, 3, 0]).is_err());
        // Trailing bytes.
        assert!(decode_frame(&[TAG_SYNC, 0]).is_err());
        // Non-UTF-8 method name.
        let mut body = BytesMut::new();
        body.put_u8(TAG_CALL);
        body.put_u32_le(2);
        body.put_slice(&[0xFF, 0xFE]);
        body.put_u32_le(0);
        assert!(decode_frame(&body).is_err());
    }

    #[test]
    fn value_accessors_report_mismatches() {
        assert_eq!(WireValue::Int(7).as_int().unwrap(), 7);
        assert!(WireValue::Bool(true).as_int().is_err());
        assert!(WireValue::Int(0).as_bool().is_err());
        assert_eq!(WireValue::Str("x".into()).as_str().unwrap(), "x");
        assert!(WireValue::Unit.as_str().is_err());
        assert_eq!(
            WireValue::List(vec![WireValue::Unit])
                .as_list()
                .unwrap()
                .len(),
            1
        );
        assert!(WireValue::Int(1).as_list().is_err());
    }

    #[test]
    fn decode_error_displays() {
        let error = decode_frame(&[42]).unwrap_err();
        assert!(error.to_string().contains("unknown frame tag"));
    }
}
