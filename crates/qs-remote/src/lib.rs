//! # qs-remote — serialized private queues over byte channels
//!
//! §7 of the paper lists "the usage of sockets as the underlying
//! implementation" of private queues as future work: instead of sharing a
//! memory-resident SPSC queue, a client and a handler exchange encoded call
//! frames over a byte stream — the stepping stone towards distributed SCOOP.
//!
//! This crate builds that design against an in-process byte-channel substrate
//! (so it runs on one machine without a network), keeping the SCOOP/Qs
//! structure intact:
//!
//! * [`wire`] — the frame format: length-prefixed, binary-encoded call frames
//!   (`Hello`, `Call`, `Query`, `Sync`/`SyncAck`, `QueryResult`, `End`);
//! * [`channel`] — the byte-channel substrate standing in for a socket pair,
//!   with optional per-frame latency and bounded send buffers so wide-area
//!   behaviour can be studied locally;
//! * [`registry`] — method registries: a byte stream cannot carry a closure,
//!   so remote calls name registered methods and carry serialised arguments;
//! * [`node`] — remote handler nodes and client proxies: a
//!   [`node::RemoteNode`] owns an object and drains a queue-of-queues whose
//!   private queues are byte channels (the Fig. 7 loop over frames); a
//!   [`node::RemoteProxy`] opens separate blocks, logs calls, performs
//!   queries and syncs, preserving the per-block ordering guarantee of §2.2.
//!
//! ## Example
//!
//! ```
//! use qs_remote::{ChannelConfig, RemoteNode, RemoteObject, WireValue};
//! use qs_remote::registry::counter_registry;
//!
//! let node = RemoteNode::spawn(
//!     "counter",
//!     RemoteObject::new(0i64, counter_registry()),
//!     ChannelConfig::fast(),
//! );
//! let proxy = node.proxy("quickstart");
//! let value = proxy.separate(|s| {
//!     s.call("add", vec![WireValue::Int(40)]).unwrap();
//!     s.call("add", vec![WireValue::Int(2)]).unwrap();
//!     s.query("value", vec![]).unwrap()
//! });
//! assert_eq!(value, WireValue::Int(42));
//! assert_eq!(node.shutdown_and_take(), Some(42));
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod node;
pub mod registry;
pub mod transport;
pub mod wire;

pub use channel::{
    byte_channel, ByteReceiver, ByteSender, ChannelClosed, ChannelConfig, RecvError,
};
pub use node::{NodeStats, RemoteError, RemoteNode, RemoteProxy, RemoteSeparate};
pub use registry::{counter_registry, MethodRegistry, RemoteObject};
pub use transport::{NodeAddr, NodeListener};
pub use wire::{decode_frame, encode_frame, DecodeError, Frame, WireValue, WIRE_VERSION};
