//! Method registries: how a byte stream names behaviour.
//!
//! A memory-resident private queue carries closures; a remote one carries
//! method names plus arguments.  A [`MethodRegistry`] maps those names to
//! functions over the handler-owned state, and a [`RemoteObject`] bundles the
//! state with its registry so a [`crate::node::RemoteNode`] can host it.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::wire::WireValue;

/// The signature of a registered method: it receives the handler-owned state
/// and the decoded arguments, and returns a value (commands return
/// [`WireValue::Unit`]) or an application-level error message.
pub type Method<T> = dyn Fn(&mut T, &[WireValue]) -> Result<WireValue, String> + Send + Sync;

/// A named set of methods over a state type `T`.
pub struct MethodRegistry<T> {
    methods: BTreeMap<String, Arc<Method<T>>>,
}

impl<T> Default for MethodRegistry<T> {
    fn default() -> Self {
        MethodRegistry {
            methods: BTreeMap::new(),
        }
    }
}

impl<T> MethodRegistry<T> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `method` under `name`, replacing any previous registration.
    /// Returns `self` so registrations chain.
    pub fn with(
        mut self,
        name: &str,
        method: impl Fn(&mut T, &[WireValue]) -> Result<WireValue, String> + Send + Sync + 'static,
    ) -> Self {
        self.register(name, method);
        self
    }

    /// Registers `method` under `name`.
    pub fn register(
        &mut self,
        name: &str,
        method: impl Fn(&mut T, &[WireValue]) -> Result<WireValue, String> + Send + Sync + 'static,
    ) {
        self.methods.insert(name.to_string(), Arc::new(method));
    }

    /// The registered method names, sorted.
    pub fn method_names(&self) -> Vec<String> {
        self.methods.keys().cloned().collect()
    }

    /// Applies the method registered under `name`.
    pub fn dispatch(
        &self,
        state: &mut T,
        name: &str,
        args: &[WireValue],
    ) -> Result<WireValue, String> {
        match self.methods.get(name) {
            Some(method) => method(state, args),
            None => Err(format!("no method `{name}` registered")),
        }
    }
}

impl<T> std::fmt::Debug for MethodRegistry<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MethodRegistry")
            .field("methods", &self.method_names())
            .finish()
    }
}

/// Handler-owned state paired with the registry that gives it behaviour;
/// this is what a [`crate::node::RemoteNode`] hosts.
pub struct RemoteObject<T> {
    /// The state owned by the hosting node's handler.
    pub state: T,
    /// The methods clients may invoke on it.
    pub registry: Arc<MethodRegistry<T>>,
}

impl<T> RemoteObject<T> {
    /// Bundles state with its registry.
    pub fn new(state: T, registry: MethodRegistry<T>) -> Self {
        RemoteObject {
            state,
            registry: Arc::new(registry),
        }
    }

    /// Dispatches a named method against the state.
    pub fn apply(&mut self, name: &str, args: &[WireValue]) -> Result<WireValue, String> {
        let registry = Arc::clone(&self.registry);
        registry.dispatch(&mut self.state, name, args)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RemoteObject<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteObject")
            .field("state", &self.state)
            .field("methods", &self.registry.method_names())
            .finish()
    }
}

/// A ready-made registry for an integer counter — used by tests, examples and
/// benchmarks as the remote analogue of the quickstart counter.
pub fn counter_registry() -> MethodRegistry<i64> {
    MethodRegistry::new()
        .with("add", |count, args| {
            let amount = args.first().ok_or("add requires one argument")?.as_int()?;
            *count += amount;
            Ok(WireValue::Unit)
        })
        .with("reset", |count, _| {
            *count = 0;
            Ok(WireValue::Unit)
        })
        .with("value", |count, _| Ok(WireValue::Int(*count)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_routes_to_registered_methods() {
        let registry = counter_registry();
        let mut state = 0i64;
        registry
            .dispatch(&mut state, "add", &[WireValue::Int(4)])
            .unwrap();
        registry
            .dispatch(&mut state, "add", &[WireValue::Int(-1)])
            .unwrap();
        assert_eq!(
            registry.dispatch(&mut state, "value", &[]).unwrap(),
            WireValue::Int(3)
        );
        registry.dispatch(&mut state, "reset", &[]).unwrap();
        assert_eq!(state, 0);
    }

    #[test]
    fn unknown_methods_and_bad_arguments_are_errors() {
        let registry = counter_registry();
        let mut state = 0i64;
        assert!(registry.dispatch(&mut state, "missing", &[]).is_err());
        assert!(registry.dispatch(&mut state, "add", &[]).is_err());
        assert!(registry
            .dispatch(&mut state, "add", &[WireValue::Bool(true)])
            .is_err());
    }

    #[test]
    fn registration_order_does_not_matter_and_names_are_sorted() {
        let registry = MethodRegistry::<u8>::new()
            .with("zeta", |_, _| Ok(WireValue::Unit))
            .with("alpha", |_, _| Ok(WireValue::Unit));
        assert_eq!(registry.method_names(), vec!["alpha", "zeta"]);
        assert!(format!("{registry:?}").contains("alpha"));
    }

    #[test]
    fn remote_object_applies_methods_to_its_state() {
        let mut object = RemoteObject::new(10i64, counter_registry());
        object.apply("add", &[WireValue::Int(5)]).unwrap();
        assert_eq!(object.apply("value", &[]).unwrap(), WireValue::Int(15));
        assert!(format!("{object:?}").contains("15"));
    }
}
