//! Real-socket substrate: TCP and Unix-domain streams under the same
//! [`ByteSender`]/[`ByteReceiver`] surface as the in-process byte channels.
//!
//! This is the "usage of sockets as the underlying implementation" the
//! paper's §7 names as future work.  Everything above this module — frames,
//! method registries, [`crate::RemoteNode`], [`crate::RemoteSeparate`] — is
//! substrate-agnostic; this module only turns a connected socket into the
//! two half-duplex byte-stream handles the rest of the crate speaks.
//!
//! Design notes:
//!
//! * **std-only, blocking I/O.**  No async runtime: each direction of a
//!   socket is guarded by its own mutex, so one thread can block reading
//!   while another writes (exactly how [`crate::RemoteSeparate`] uses a
//!   channel pair).
//! * **Half-close maps to `shutdown`.**  Dropping the last clone of a
//!   [`ByteSender`] shuts down the write direction (the peer reads
//!   end-of-stream after draining); dropping the last [`ByteReceiver`]
//!   clone shuts down reads.
//! * **Timeouts are connection-fatal.**  A read deadline is implemented
//!   with `SO_RCVTIMEO`; if it fires mid-frame the stream position is
//!   unknown, so callers must abandon the connection after
//!   [`crate::RecvError::TimedOut`] — which is what the peer-death
//!   hardening in [`crate::node`] and `qs-cluster` does.
//! * **Untrusted peers.**  Socket readers enforce
//!   [`crate::wire::MAX_FRAME_LEN`] so a corrupt length prefix cannot force
//!   a huge allocation.  No authentication or encryption is provided; bind
//!   to loopback/Unix sockets or trusted networks only (see the README's
//!   "Distributed mode" caveats).

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::channel::{stream_halves, ByteReceiver, ByteSender, ChannelClosed, RecvError};

/// The address of a cluster node: a TCP endpoint or a Unix-domain socket
/// path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeAddr {
    /// A TCP endpoint, e.g. `127.0.0.1:7101`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl NodeAddr {
    /// Parses the textual form used on command lines and in `READY` lines:
    /// `tcp:HOST:PORT` or `unix:PATH` (a bare `HOST:PORT` is accepted as
    /// TCP).
    pub fn parse(spec: &str) -> Result<NodeAddr, String> {
        if let Some(rest) = spec.strip_prefix("tcp:") {
            Ok(NodeAddr::Tcp(rest.to_string()))
        } else if let Some(rest) = spec.strip_prefix("unix:") {
            Ok(NodeAddr::Unix(PathBuf::from(rest)))
        } else if spec.contains(':') {
            Ok(NodeAddr::Tcp(spec.to_string()))
        } else {
            Err(format!(
                "node address `{spec}` is neither tcp:HOST:PORT nor unix:PATH"
            ))
        }
    }

    /// Connects to this address and returns the connected byte-stream pair.
    pub fn connect(&self) -> io::Result<(ByteSender, ByteReceiver)> {
        match self {
            NodeAddr::Tcp(addr) => socket_pair(Socket::Tcp(TcpStream::connect(addr)?)),
            NodeAddr::Unix(path) => socket_pair(Socket::Unix(UnixStream::connect(path)?)),
        }
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
            NodeAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A listening endpoint accepting node connections.
pub enum NodeListener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener; the socket file is removed on drop.
    Unix(UnixListener, PathBuf),
}

impl NodeListener {
    /// Binds a listener.  For TCP, port 0 requests an ephemeral port —
    /// read the actual one back with [`NodeListener::local_addr`].  For
    /// Unix sockets, a stale socket file from a previous run is removed
    /// first.
    pub fn bind(addr: &NodeAddr) -> io::Result<NodeListener> {
        match addr {
            NodeAddr::Tcp(spec) => Ok(NodeListener::Tcp(TcpListener::bind(spec)?)),
            NodeAddr::Unix(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                Ok(NodeListener::Unix(UnixListener::bind(path)?, path.clone()))
            }
        }
    }

    /// The bound address, with any ephemeral TCP port resolved.
    pub fn local_addr(&self) -> io::Result<NodeAddr> {
        match self {
            NodeListener::Tcp(listener) => Ok(NodeAddr::Tcp(listener.local_addr()?.to_string())),
            NodeListener::Unix(_, path) => Ok(NodeAddr::Unix(path.clone())),
        }
    }

    /// Blocks until a peer connects and returns the connected pair.
    pub fn accept(&self) -> io::Result<(ByteSender, ByteReceiver)> {
        match self {
            NodeListener::Tcp(listener) => {
                let (stream, _) = listener.accept()?;
                socket_pair(Socket::Tcp(stream))
            }
            NodeListener::Unix(listener, _) => {
                let (stream, _) = listener.accept()?;
                socket_pair(Socket::Unix(stream))
            }
        }
    }
}

impl Drop for NodeListener {
    fn drop(&mut self) {
        if let NodeListener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

enum Socket {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Socket {
    /// `&TcpStream`/`&UnixStream` implement `Read`/`Write`, so both
    /// directions work through a shared reference; the per-direction
    /// mutexes in [`StreamConn`] serialise concurrent users of one
    /// direction.
    fn read(&self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Socket::Tcp(s) => (&*s).read(buf),
            Socket::Unix(s) => (&*s).read(buf),
        }
    }

    fn write_all(&self, buf: &[u8]) -> io::Result<()> {
        match self {
            Socket::Tcp(s) => (&*s).write_all(buf),
            Socket::Unix(s) => (&*s).write_all(buf),
        }
    }

    fn shutdown(&self, how: Shutdown) {
        let _ = match self {
            Socket::Tcp(s) => s.shutdown(how),
            Socket::Unix(s) => s.shutdown(how),
        };
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Socket::Tcp(s) => s.set_read_timeout(timeout),
            Socket::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    fn peer(&self) -> String {
        match self {
            Socket::Tcp(s) => s
                .peer_addr()
                .map(|a| format!("tcp:{a}"))
                .unwrap_or_else(|_| "tcp:<disconnected>".to_string()),
            Socket::Unix(_) => "unix".to_string(),
        }
    }
}

struct ReadState {
    /// The `SO_RCVTIMEO` currently programmed on the socket; cached so
    /// back-to-back reads with the same deadline skip the setsockopt call.
    timeout: Option<Duration>,
}

/// One connected socket shared by its sender and receiver halves.
struct StreamConn {
    socket: Socket,
    read: Mutex<ReadState>,
    write: Mutex<()>,
}

impl StreamConn {
    fn write_bytes(&self, bytes: &[u8]) -> Result<(), ChannelClosed> {
        let _guard = self.write.lock();
        self.socket.write_all(bytes).map_err(|_| ChannelClosed)
    }

    fn read_exact(&self, buf: &mut [u8], timeout: Option<Duration>) -> Result<(), RecvError> {
        let mut state = self.read.lock();
        if state.timeout != timeout {
            self.socket
                .set_read_timeout(timeout)
                .map_err(|_| RecvError::Closed)?;
            state.timeout = timeout;
        }
        let mut filled = 0;
        while filled < buf.len() {
            match self.socket.read(&mut buf[filled..]) {
                Ok(0) => return Err(RecvError::Closed),
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Err(RecvError::TimedOut);
                }
                Err(_) => return Err(RecvError::Closed),
            }
        }
        Ok(())
    }
}

/// The socket-backed sending half; shuts down the write direction when
/// dropped.
pub(crate) struct StreamTx {
    conn: Arc<StreamConn>,
}

impl StreamTx {
    pub(crate) fn write_bytes(&self, bytes: &[u8]) -> Result<(), ChannelClosed> {
        self.conn.write_bytes(bytes)
    }

    pub(crate) fn shutdown(&self) {
        self.conn.socket.shutdown(Shutdown::Write);
    }

    pub(crate) fn peer(&self) -> String {
        self.conn.socket.peer()
    }
}

impl Drop for StreamTx {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The socket-backed receiving half; shuts down the read direction when
/// dropped.
pub(crate) struct StreamRx {
    conn: Arc<StreamConn>,
}

impl StreamRx {
    pub(crate) fn read_exact(
        &self,
        buf: &mut [u8],
        timeout: Option<Duration>,
    ) -> Result<(), RecvError> {
        self.conn.read_exact(buf, timeout)
    }
}

impl Drop for StreamRx {
    fn drop(&mut self) {
        self.conn.socket.shutdown(Shutdown::Read);
    }
}

fn socket_pair(socket: Socket) -> io::Result<(ByteSender, ByteReceiver)> {
    // Frames are small and written whole; disabling Nagle keeps query
    // round-trips from stalling on delayed ACKs.
    if let Socket::Tcp(stream) = &socket {
        let _ = stream.set_nodelay(true);
    }
    let conn = Arc::new(StreamConn {
        socket,
        read: Mutex::new(ReadState { timeout: None }),
        write: Mutex::new(()),
    });
    Ok(stream_halves(
        StreamTx {
            conn: Arc::clone(&conn),
        },
        StreamRx { conn },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Frame, WireValue};

    fn loopback_pair() -> ((ByteSender, ByteReceiver), (ByteSender, ByteReceiver)) {
        let listener = NodeListener::bind(&NodeAddr::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = listener.local_addr().unwrap();
        let accepted = std::thread::spawn(move || listener.accept().unwrap());
        let client = addr.connect().unwrap();
        (client, accepted.join().unwrap())
    }

    #[test]
    fn frames_cross_loopback_tcp_in_order() {
        let ((client_tx, client_rx), (server_tx, server_rx)) = loopback_pair();
        client_tx
            .send_frame(&Frame::Call {
                method: "deposit".into(),
                args: vec![WireValue::Int(25)],
            })
            .unwrap();
        match server_rx.recv_frame().unwrap() {
            Frame::Call { method, args } => {
                assert_eq!(method, "deposit");
                assert_eq!(args, vec![WireValue::Int(25)]);
            }
            other => panic!("unexpected frame {other:?}"),
        }
        server_tx
            .send_frame(&Frame::QueryResult {
                result: Ok(WireValue::Int(25)),
            })
            .unwrap();
        assert!(matches!(
            client_rx.recv_frame().unwrap(),
            Frame::QueryResult { .. }
        ));
    }

    #[test]
    fn frames_cross_unix_sockets() {
        let path =
            std::env::temp_dir().join(format!("qs-transport-test-{}.sock", std::process::id()));
        let listener = NodeListener::bind(&NodeAddr::Unix(path.clone())).unwrap();
        let accepted = std::thread::spawn(move || listener.accept().unwrap());
        let (client_tx, _client_rx) = NodeAddr::Unix(path.clone()).connect().unwrap();
        let (_server_tx, server_rx) = accepted.join().unwrap();
        client_tx.send_frame(&Frame::Sync).unwrap();
        assert_eq!(server_rx.recv_frame().unwrap(), Frame::Sync);
    }

    #[test]
    fn peer_drop_is_end_of_stream_not_a_hang() {
        let ((client_tx, client_rx), (server_tx, server_rx)) = loopback_pair();
        drop(server_tx);
        drop(server_rx);
        assert_eq!(client_rx.recv_frame(), Err(RecvError::Closed));
        // Writing into a closed peer eventually errors too (the first write
        // may be buffered by the kernel before the RST arrives).
        let mut closed = false;
        for _ in 0..100 {
            if client_tx.send_frame(&Frame::Sync).is_err() {
                closed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(closed, "send kept succeeding against a closed peer");
    }

    #[test]
    fn read_timeout_surfaces_timed_out() {
        let ((_client_tx, client_rx), _server) = loopback_pair();
        let start = std::time::Instant::now();
        assert_eq!(
            client_rx.recv_frame_timeout(Some(Duration::from_millis(40))),
            Err(RecvError::TimedOut)
        );
        assert!(start.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_not_allocated() {
        let ((client_tx, _client_rx), (_server_tx, server_rx)) = loopback_pair();
        client_tx.send_bytes(&u32::MAX.to_le_bytes()).unwrap();
        match server_rx.recv_frame() {
            Err(RecvError::Malformed(e)) => {
                assert!(e.message.contains("wire limit"), "{}", e.message)
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn node_addr_parses_and_displays() {
        assert_eq!(
            NodeAddr::parse("tcp:127.0.0.1:7101").unwrap(),
            NodeAddr::Tcp("127.0.0.1:7101".into())
        );
        assert_eq!(
            NodeAddr::parse("127.0.0.1:7101").unwrap(),
            NodeAddr::Tcp("127.0.0.1:7101".into())
        );
        assert_eq!(
            NodeAddr::parse("unix:/tmp/qs.sock").unwrap(),
            NodeAddr::Unix(PathBuf::from("/tmp/qs.sock"))
        );
        assert!(NodeAddr::parse("nonsense").is_err());
        let spec = NodeAddr::Tcp("127.0.0.1:7101".into()).to_string();
        assert_eq!(
            NodeAddr::parse(&spec).unwrap(),
            NodeAddr::parse("tcp:127.0.0.1:7101").unwrap()
        );
    }

    #[test]
    fn unix_listener_cleans_up_its_socket_file() {
        let path =
            std::env::temp_dir().join(format!("qs-transport-cleanup-{}.sock", std::process::id()));
        let listener = NodeListener::bind(&NodeAddr::Unix(path.clone())).unwrap();
        assert!(path.exists());
        drop(listener);
        assert!(!path.exists());
    }
}
