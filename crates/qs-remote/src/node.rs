//! Remote handler nodes and client proxies.
//!
//! A [`RemoteNode`] plays the role of a SCOOP handler whose private queues
//! are byte streams instead of shared-memory SPSC queues: clients register a
//! channel pair (requests out, responses back) on the node's queue-of-queues,
//! and the node drains one private queue at a time — exactly the Fig. 7 loop,
//! with `recv_frame` in place of `dequeue`.  The §2.2 reasoning guarantees
//! carry over unchanged: frames of one block are applied in order and blocks
//! are never interleaved, because the node finishes a private queue before
//! taking the next.
//!
//! Differences from the in-memory runtime, all forced by the byte stream:
//!
//! * queries are handler-executed (the client cannot touch remote memory),
//!   so the §3.2 client-executed-query optimisation does not apply — its
//!   remote analogue is *sync coalescing*, which is implemented: a query
//!   implies synchronisation, so an immediately following `sync` is elided;
//! * calls carry method names and serialised arguments ([`crate::registry`])
//!   rather than closures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use qs_queues::{Dequeue, QueueOfQueues};

use crate::channel::{byte_channel, ByteReceiver, ByteSender, ChannelConfig, RecvError};
use crate::registry::RemoteObject;
use crate::transport::{NodeAddr, NodeListener};
use crate::wire::{Frame, WireValue, WIRE_VERSION};

/// Counters describing one node's activity (the remote analogue of
/// `qs_runtime::RuntimeStats`).
#[derive(Debug, Default)]
struct NodeCounters {
    blocks_served: AtomicU64,
    calls_applied: AtomicU64,
    queries_applied: AtomicU64,
    syncs_acked: AtomicU64,
    application_errors: AtomicU64,
    protocol_errors: AtomicU64,
}

/// A point-in-time copy of a node's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Private queues (separate blocks) fully served.
    pub blocks_served: u64,
    /// Asynchronous calls applied.
    pub calls_applied: u64,
    /// Queries applied (and answered).
    pub queries_applied: u64,
    /// Sync tokens acknowledged.
    pub syncs_acked: u64,
    /// Application-level method errors (reported to clients for queries,
    /// counted for calls).
    pub application_errors: u64,
    /// Malformed or unexpected frames.
    pub protocol_errors: u64,
}

struct NodeShared {
    name: String,
    qoq: QueueOfQueues<(ByteReceiver, ByteSender)>,
    channel_config: ChannelConfig,
    counters: NodeCounters,
    /// Addresses of socket listeners feeding this node's queue-of-queues;
    /// [`RemoteNode::stop`] dials each once to unblock its accept loop.
    listeners: Mutex<Vec<NodeAddr>>,
}

/// A handler node owning one remote object and serving clients over byte
/// channels.
pub struct RemoteNode<T> {
    shared: Arc<NodeShared>,
    final_state: Arc<Mutex<Option<T>>>,
    thread: Option<JoinHandle<()>>,
}

/// A client-side handle used to open separate blocks against a node.
#[derive(Clone)]
pub struct RemoteProxy {
    shared: Arc<NodeShared>,
    client: String,
}

/// Errors surfaced to remote clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteError {
    /// The node shut down or the channel closed.
    Disconnected,
    /// The node did not answer within the configured
    /// [`ChannelConfig::response_timeout`] — a dead or wedged peer.  The
    /// block's connection must be abandoned (socket streams may be
    /// desynchronised after a timeout).
    Timeout,
    /// The node answered with something unexpected (protocol violation).
    Protocol(String),
    /// The invoked method reported an error.
    Application(String),
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Disconnected => f.write_str("remote handler disconnected"),
            RemoteError::Timeout => f.write_str("remote handler did not answer in time"),
            RemoteError::Protocol(m) => write!(f, "protocol error: {m}"),
            RemoteError::Application(m) => write!(f, "application error: {m}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl<T: Send + 'static> RemoteNode<T> {
    /// Spawns a node thread hosting `object`; private queues created by
    /// proxies use `channel_config` (latency / capacity injection).
    pub fn spawn(name: &str, object: RemoteObject<T>, channel_config: ChannelConfig) -> Self {
        let shared = Arc::new(NodeShared {
            name: name.to_string(),
            qoq: QueueOfQueues::new(),
            channel_config,
            counters: NodeCounters::default(),
            listeners: Mutex::new(Vec::new()),
        });
        let final_state = Arc::new(Mutex::new(None));
        let thread_shared = Arc::clone(&shared);
        let thread_final = Arc::clone(&final_state);
        let thread = std::thread::Builder::new()
            .name(format!("remote-node-{name}"))
            .spawn(move || {
                let mut object = object;
                serve(&thread_shared, &mut object);
                *thread_final.lock() = Some(object.state);
            })
            .expect("spawn remote node thread");
        RemoteNode {
            shared,
            final_state,
            thread: Some(thread),
        }
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Creates a client proxy for this node.
    pub fn proxy(&self, client: &str) -> RemoteProxy {
        RemoteProxy {
            shared: Arc::clone(&self.shared),
            client: client.to_string(),
        }
    }

    /// A snapshot of the node's counters.
    pub fn stats(&self) -> NodeStats {
        let c = &self.shared.counters;
        NodeStats {
            blocks_served: c.blocks_served.load(Ordering::Relaxed),
            calls_applied: c.calls_applied.load(Ordering::Relaxed),
            queries_applied: c.queries_applied.load(Ordering::Relaxed),
            syncs_acked: c.syncs_acked.load(Ordering::Relaxed),
            application_errors: c.application_errors.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// Serves socket connections on `listener`: each accepted connection is
    /// one separate block — its frames form a private queue registered on
    /// the node's queue-of-queues, so remote clients interleave with
    /// in-process proxies under the same Fig. 7 loop.  Returns the bound
    /// address (with any ephemeral TCP port resolved) for clients to dial
    /// with [`SocketProxy::connect`].
    pub fn listen(&self, listener: NodeListener) -> std::io::Result<NodeAddr> {
        let addr = listener.local_addr()?;
        self.shared.listeners.lock().push(addr.clone());
        let shared = Arc::clone(&self.shared);
        std::thread::Builder::new()
            .name(format!("remote-accept-{}", self.shared.name))
            .spawn(move || loop {
                match listener.accept() {
                    Ok((responses, requests)) => {
                        if shared.qoq.is_closed() {
                            // Also covers the wake-up connection stop() makes.
                            return;
                        }
                        shared.qoq.enqueue((requests, responses));
                    }
                    Err(_) => return,
                }
            })
            .expect("spawn remote accept thread");
        Ok(addr)
    }

    /// Stops accepting new private queues; already-registered blocks are
    /// still drained.
    pub fn stop(&self) {
        self.shared.qoq.close();
        // Unblock any socket accept loops so their threads exit.
        for addr in self.shared.listeners.lock().drain(..) {
            let _ = addr.connect();
        }
    }

    /// Stops the node, waits for the serving thread and returns the final
    /// object state.
    pub fn shutdown_and_take(mut self) -> Option<T> {
        self.stop();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        self.final_state.lock().take()
    }
}

impl<T> Drop for RemoteNode<T> {
    fn drop(&mut self) {
        self.shared.qoq.close();
        for addr in self.shared.listeners.lock().drain(..) {
            let _ = addr.connect();
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl<T: Send + 'static> std::fmt::Debug for RemoteNode<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteNode")
            .field("name", &self.shared.name)
            .field("stats", &self.stats())
            .finish()
    }
}

/// The node's serving loop: Fig. 7 over byte channels.
fn serve<T>(shared: &Arc<NodeShared>, object: &mut RemoteObject<T>) {
    while let Dequeue::Item((requests, responses)) = shared.qoq.dequeue() {
        serve_private_queue(shared, object, &requests, &responses);
        shared
            .counters
            .blocks_served
            .fetch_add(1, Ordering::Relaxed);
    }
}

fn serve_private_queue<T>(
    shared: &Arc<NodeShared>,
    object: &mut RemoteObject<T>,
    requests: &ByteReceiver,
    responses: &ByteSender,
) {
    loop {
        match requests.recv_frame() {
            Ok(Frame::Hello { version, .. }) => {
                if version != WIRE_VERSION {
                    shared
                        .counters
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            Ok(Frame::Call { method, args }) => {
                shared
                    .counters
                    .calls_applied
                    .fetch_add(1, Ordering::Relaxed);
                if object.apply(&method, &args).is_err() {
                    // An asynchronous call has nobody to report to; count it,
                    // matching the in-memory runtime's `call_panics` counter.
                    shared
                        .counters
                        .application_errors
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(Frame::Query { method, args }) => {
                shared
                    .counters
                    .queries_applied
                    .fetch_add(1, Ordering::Relaxed);
                let result = object.apply(&method, &args);
                if result.is_err() {
                    shared
                        .counters
                        .application_errors
                        .fetch_add(1, Ordering::Relaxed);
                }
                if responses
                    .send_frame(&Frame::QueryResult { result })
                    .is_err()
                {
                    return;
                }
            }
            Ok(Frame::Sync) => {
                shared.counters.syncs_acked.fetch_add(1, Ordering::Relaxed);
                if responses.send_frame(&Frame::SyncAck).is_err() {
                    return;
                }
            }
            Ok(Frame::End) => return,
            Ok(unexpected) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = unexpected;
                return;
            }
            Err(RecvError::Closed) => return,
            // The node reads without a deadline, but the arm keeps the match
            // exhaustive (and correct if that ever changes): a timeout means
            // the stream is unusable.
            Err(RecvError::TimedOut) => return,
            Err(RecvError::Malformed(_)) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

impl RemoteProxy {
    /// Opens a separate block against the node: registers a fresh byte-channel
    /// private queue on the node's queue-of-queues, runs `body`, then logs the
    /// END marker (Fig. 8 over the wire).
    pub fn separate<R>(&self, body: impl FnOnce(&mut RemoteSeparate) -> R) -> R {
        let (request_tx, request_rx) = byte_channel(self.shared.channel_config);
        let (response_tx, response_rx) = byte_channel(self.shared.channel_config);
        if self.shared.qoq.is_closed() {
            // The node has shut down: dropping the response sender here makes
            // every query/sync in the body observe `Disconnected` instead of
            // blocking on a reply that will never come.
            drop(response_tx);
            drop(request_rx);
        } else {
            self.shared.qoq.enqueue((request_rx, response_tx));
        }
        let _ = request_tx.send_frame(&Frame::Hello {
            version: WIRE_VERSION,
            client: self.client.clone(),
        });
        let mut guard = RemoteSeparate::over(
            request_tx,
            response_rx,
            self.shared.channel_config.response_timeout,
        );
        let result = body(&mut guard);
        guard.end();
        result
    }

    /// Fire-and-forget convenience: a single asynchronous call in its own
    /// block.
    pub fn call_detached(&self, method: &str, args: Vec<WireValue>) -> Result<(), RemoteError> {
        self.separate(|s| s.call(method, args))
    }

    /// Convenience: a single query in its own block.
    pub fn query_detached(
        &self,
        method: &str,
        args: Vec<WireValue>,
    ) -> Result<WireValue, RemoteError> {
        self.separate(|s| s.query(method, args))
    }

    /// The client name this proxy registers under.
    pub fn client_name(&self) -> &str {
        &self.client
    }
}

impl std::fmt::Debug for RemoteProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteProxy")
            .field("node", &self.shared.name)
            .field("client", &self.client)
            .finish()
    }
}

/// A client-side handle opening separate blocks against a node that serves
/// sockets ([`RemoteNode::listen`]); the out-of-process counterpart of
/// [`RemoteProxy`].
///
/// Each block dials a fresh connection — connection = block, exactly
/// mirroring the in-process design where each block registers a fresh byte
/// channel.  (The `qs-cluster` crate layers pooled, multiplexed connections
/// on top for high block rates.)
#[derive(Debug, Clone)]
pub struct SocketProxy {
    addr: NodeAddr,
    client: String,
    response_timeout: Option<Duration>,
}

impl SocketProxy {
    /// Creates a proxy dialling `addr` for every block.
    pub fn new(addr: NodeAddr, client: &str) -> SocketProxy {
        SocketProxy {
            addr,
            client: client.to_string(),
            response_timeout: None,
        }
    }

    /// Bounds every query/sync wait, so a node process that dies mid-block
    /// surfaces [`RemoteError::Timeout`] instead of hanging.
    pub fn with_response_timeout(mut self, timeout: Duration) -> SocketProxy {
        self.response_timeout = Some(timeout);
        self
    }

    /// Opens a separate block over a fresh connection.  Fails with
    /// [`RemoteError::Disconnected`] if the node cannot be reached.
    pub fn separate<R>(
        &self,
        body: impl FnOnce(&mut RemoteSeparate) -> R,
    ) -> Result<R, RemoteError> {
        let (requests, responses) = self.addr.connect().map_err(|_| RemoteError::Disconnected)?;
        let _ = requests.send_frame(&Frame::Hello {
            version: WIRE_VERSION,
            client: self.client.clone(),
        });
        let mut guard = RemoteSeparate::over(requests, responses, self.response_timeout);
        let result = body(&mut guard);
        guard.end();
        Ok(result)
    }

    /// The address this proxy dials.
    pub fn addr(&self) -> &NodeAddr {
        &self.addr
    }
}

/// One client's reservation of a remote node for the duration of a block.
pub struct RemoteSeparate {
    requests: ByteSender,
    responses: ByteReceiver,
    response_timeout: Option<Duration>,
    synced: bool,
    ended: bool,
    failed: bool,
}

impl RemoteSeparate {
    /// Builds a block guard over an already-connected request/response
    /// stream pair, sending no prologue — the caller is responsible for any
    /// handshake ([`RemoteProxy::separate`] sends `Hello`, a cluster client
    /// sends `Open`).  The halves are clones, so a pooled connection
    /// survives the guard: the block ends with an explicit `End` frame, not
    /// by closing the stream.
    pub fn over(
        requests: ByteSender,
        responses: ByteReceiver,
        response_timeout: Option<Duration>,
    ) -> RemoteSeparate {
        RemoteSeparate {
            requests,
            responses,
            response_timeout,
            synced: false,
            ended: false,
            failed: false,
        }
    }

    /// Logs an asynchronous command (the `call` rule).
    pub fn call(&mut self, method: &str, args: Vec<WireValue>) -> Result<(), RemoteError> {
        assert!(!self.ended, "call after the separate block ended");
        self.synced = false;
        self.requests
            .send_frame(&Frame::Call {
                method: method.to_string(),
                args,
            })
            .map_err(|_| self.fail(RemoteError::Disconnected))
    }

    /// Waits for one response frame, converting transport failures and
    /// recording whether the underlying connection is still trustworthy.
    fn recv_response(&mut self) -> Result<Frame, RemoteError> {
        match self.responses.recv_frame_timeout(self.response_timeout) {
            Ok(Frame::Nack { message }) => {
                // The serving side refused this block (e.g. the handler does
                // not live on that cluster node).
                Err(self.fail(RemoteError::Protocol(format!("block refused: {message}"))))
            }
            Ok(frame) => Ok(frame),
            Err(RecvError::TimedOut) => Err(self.fail(RemoteError::Timeout)),
            Err(RecvError::Closed) => Err(self.fail(RemoteError::Disconnected)),
            Err(RecvError::Malformed(e)) => {
                Err(self.fail(RemoteError::Protocol(format!("malformed response: {e}"))))
            }
        }
    }

    fn fail(&mut self, error: RemoteError) -> RemoteError {
        self.failed = true;
        error
    }

    /// Performs a synchronous query and returns its value (the `query` rule).
    pub fn query(&mut self, method: &str, args: Vec<WireValue>) -> Result<WireValue, RemoteError> {
        assert!(!self.ended, "query after the separate block ended");
        let round_trip = qs_obs::timer();
        self.requests
            .send_frame(&Frame::Query {
                method: method.to_string(),
                args,
            })
            .map_err(|_| self.fail(RemoteError::Disconnected))?;
        let response = self.recv_response()?;
        round_trip.record(qs_obs::obs_histogram!("remote.call_rtt_ns"));
        match response {
            Frame::QueryResult { result } => {
                // Receiving the result implies the node drained everything we
                // logged before the query: the block is synchronised (§3.4).
                self.synced = true;
                result.map_err(RemoteError::Application)
            }
            other => Err(self.fail(RemoteError::Protocol(format!(
                "expected QueryResult, received {other:?}"
            )))),
        }
    }

    /// Performs an explicit synchronisation; elided if the block is already
    /// known to be synchronised (dynamic sync coalescing, §3.4.1).
    pub fn sync(&mut self) -> Result<(), RemoteError> {
        assert!(!self.ended, "sync after the separate block ended");
        if self.synced {
            return Ok(());
        }
        let round_trip = qs_obs::timer();
        self.requests
            .send_frame(&Frame::Sync)
            .map_err(|_| self.fail(RemoteError::Disconnected))?;
        let response = self.recv_response()?;
        round_trip.record(qs_obs::obs_histogram!("remote.call_rtt_ns"));
        match response {
            Frame::SyncAck => {
                self.synced = true;
                Ok(())
            }
            other => Err(self.fail(RemoteError::Protocol(format!(
                "expected SyncAck, received {other:?}"
            )))),
        }
    }

    /// Whether the node is known to have applied everything logged so far.
    pub fn is_synced(&self) -> bool {
        self.synced
    }

    /// Whether the block's connection suffered a transport or protocol
    /// failure (timeout, disconnect, malformed or refused response).  A
    /// pooling layer must discard such a connection instead of reusing it —
    /// a timed-out socket stream may be desynchronised.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Ends the block (logged automatically when the guard is dropped).
    pub fn end(&mut self) {
        if self.ended {
            return;
        }
        self.ended = true;
        let _ = self.requests.send_frame(&Frame::End);
    }
}

impl Drop for RemoteSeparate {
    fn drop(&mut self) {
        self.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{counter_registry, MethodRegistry};

    fn counter_node(name: &str) -> RemoteNode<i64> {
        RemoteNode::spawn(
            name,
            RemoteObject::new(0i64, counter_registry()),
            ChannelConfig::fast(),
        )
    }

    #[test]
    fn calls_and_queries_work_over_the_wire() {
        let node = counter_node("counter");
        let proxy = node.proxy("client-a");
        let value = proxy.separate(|s| {
            for i in 1..=10 {
                s.call("add", vec![WireValue::Int(i)]).unwrap();
            }
            s.query("value", vec![]).unwrap()
        });
        assert_eq!(value, WireValue::Int(55));
        let stats = node.stats();
        assert_eq!(stats.calls_applied, 10);
        assert_eq!(stats.queries_applied, 1);
        assert_eq!(node.shutdown_and_take(), Some(55));
    }

    #[test]
    fn blocks_from_concurrent_clients_never_interleave() {
        // The node's object records (client, seq) pairs; afterwards each
        // client's block must form a contiguous, ordered run.
        let registry = MethodRegistry::<Vec<(i64, i64)>>::new().with("record", |log, args| {
            let client = args[0].as_int()?;
            let seq = args[1].as_int()?;
            log.push((client, seq));
            Ok(WireValue::Unit)
        });
        let node = RemoteNode::spawn(
            "log",
            RemoteObject::new(Vec::new(), registry),
            ChannelConfig::fast(),
        );
        let mut threads = Vec::new();
        for client in 0..4i64 {
            let proxy = node.proxy(&format!("client-{client}"));
            threads.push(std::thread::spawn(move || {
                for _block in 0..5 {
                    proxy.separate(|s| {
                        for seq in 0..20i64 {
                            s.call("record", vec![WireValue::Int(client), WireValue::Int(seq)])
                                .unwrap();
                        }
                    });
                }
            }));
        }
        for thread in threads {
            thread.join().unwrap();
        }
        let log = node.shutdown_and_take().unwrap();
        assert_eq!(log.len(), 4 * 5 * 20);
        // Split into runs of 20 and check each is one client's 0..20 sequence.
        for chunk in log.chunks(20) {
            let client = chunk[0].0;
            for (i, &(c, seq)) in chunk.iter().enumerate() {
                assert_eq!(c, client, "block interleaved with another client");
                assert_eq!(seq, i as i64, "calls reordered within a block");
            }
        }
    }

    #[test]
    fn sync_coalescing_elides_redundant_syncs() {
        let node = counter_node("counter");
        let proxy = node.proxy("client");
        proxy.separate(|s| {
            s.call("add", vec![WireValue::Int(1)]).unwrap();
            s.sync().unwrap();
            assert!(s.is_synced());
            // Already synced: these must not produce extra round-trips.
            s.sync().unwrap();
            s.sync().unwrap();
            // A query also leaves the block synced.
            s.query("value", vec![]).unwrap();
            s.sync().unwrap();
            // A new call invalidates the synced state.
            s.call("add", vec![WireValue::Int(1)]).unwrap();
            assert!(!s.is_synced());
            s.sync().unwrap();
        });
        let stats = node.stats();
        assert_eq!(
            stats.syncs_acked, 2,
            "only two sync round-trips should reach the node"
        );
    }

    #[test]
    fn application_errors_are_reported_to_queries_and_counted_for_calls() {
        let node = counter_node("counter");
        let proxy = node.proxy("client");
        let err = proxy.query_detached("missing", vec![]).unwrap_err();
        assert!(matches!(err, RemoteError::Application(_)));
        proxy.call_detached("missing", vec![]).unwrap();
        // Wait until the node has drained the block, then check the counter.
        proxy.query_detached("value", vec![]).unwrap();
        let stats = node.stats();
        assert_eq!(stats.application_errors, 2);
        assert!(err.to_string().contains("no method"));
    }

    #[test]
    fn latency_injection_still_preserves_order() {
        let node = RemoteNode::spawn(
            "slow",
            RemoteObject::new(0i64, counter_registry()),
            ChannelConfig::with_latency(std::time::Duration::from_millis(1)),
        );
        let proxy = node.proxy("client");
        let value = proxy.separate(|s| {
            for _ in 0..5 {
                s.call("add", vec![WireValue::Int(2)]).unwrap();
            }
            s.query("value", vec![]).unwrap()
        });
        assert_eq!(value, WireValue::Int(10));
    }

    #[test]
    fn node_shutdown_disconnects_new_blocks() {
        let node = counter_node("counter");
        let proxy = node.proxy("client");
        node.stop();
        // The queue-of-queues is closed: new registrations are dropped and
        // queries observe the disconnect rather than hanging.
        let result = proxy.separate(|s| s.query("value", vec![]));
        assert_eq!(result, Err(RemoteError::Disconnected));
    }

    #[test]
    fn socket_proxy_round_trips_over_loopback_tcp() {
        let node = counter_node("sock");
        let addr = node
            .listen(NodeListener::bind(&NodeAddr::Tcp("127.0.0.1:0".into())).unwrap())
            .unwrap();
        let proxy = SocketProxy::new(addr, "tcp-client");
        let value = proxy
            .separate(|s| {
                s.call("add", vec![WireValue::Int(40)]).unwrap();
                s.call("add", vec![WireValue::Int(2)]).unwrap();
                s.query("value", vec![]).unwrap()
            })
            .unwrap();
        assert_eq!(value, WireValue::Int(42));
        assert_eq!(node.shutdown_and_take(), Some(42));
    }

    #[test]
    fn socket_blocks_from_many_clients_keep_block_atomicity() {
        let node = counter_node("sock-many");
        let addr = node
            .listen(NodeListener::bind(&NodeAddr::Tcp("127.0.0.1:0".into())).unwrap())
            .unwrap();
        let mut threads = Vec::new();
        for c in 0..4 {
            let proxy = SocketProxy::new(addr.clone(), &format!("client-{c}"));
            threads.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    proxy
                        .separate(|s| {
                            s.call("add", vec![WireValue::Int(1)]).unwrap();
                            s.sync().unwrap();
                        })
                        .unwrap();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(node.shutdown_and_take(), Some(20));
    }

    #[test]
    fn silent_peer_surfaces_timeout_not_a_hang() {
        // A "node" that accepts the connection and then goes silent: the
        // client's bounded query wait must report Timeout, and the guard
        // must mark its connection unusable.
        let listener = NodeListener::bind(&NodeAddr::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = listener.local_addr().unwrap();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let silent = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let _ = done_rx.recv();
            drop(conn);
        });
        let proxy =
            SocketProxy::new(addr, "victim").with_response_timeout(Duration::from_millis(100));
        let (err, failed) = proxy
            .separate(|s| (s.query("value", vec![]).unwrap_err(), s.is_failed()))
            .unwrap();
        assert_eq!(err, RemoteError::Timeout);
        assert!(failed, "a timed-out block must be marked failed");
        done_tx.send(()).unwrap();
        silent.join().unwrap();
    }

    #[test]
    fn dead_peer_surfaces_disconnected() {
        // A "node" that dies (closes the connection) mid-block.
        let listener = NodeListener::bind(&NodeAddr::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = listener.local_addr().unwrap();
        let killer = std::thread::spawn(move || drop(listener.accept().unwrap()));
        let proxy = SocketProxy::new(addr, "victim");
        let err = proxy
            .separate(|s| s.query("value", vec![]).unwrap_err())
            .unwrap();
        assert_eq!(err, RemoteError::Disconnected);
        killer.join().unwrap();
    }

    #[test]
    fn unreachable_node_fails_fast() {
        // Nobody is listening on this address (bind then drop releases it).
        let listener = NodeListener::bind(&NodeAddr::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let proxy = SocketProxy::new(addr, "nobody-home");
        assert_eq!(
            proxy.separate(|_| ()).unwrap_err(),
            RemoteError::Disconnected
        );
    }

    #[test]
    fn debug_and_stats_are_exposed() {
        let node = counter_node("counter");
        let proxy = node.proxy("debug-client");
        assert!(format!("{node:?}").contains("counter"));
        assert!(format!("{proxy:?}").contains("debug-client"));
        assert_eq!(proxy.client_name(), "debug-client");
        assert_eq!(node.stats(), NodeStats::default());
    }
}
