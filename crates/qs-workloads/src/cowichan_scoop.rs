//! SCOOP/Qs implementations of the Cowichan kernels.
//!
//! The idiom follows §3.4/§4.2 of the paper: the data lives with worker
//! handlers (one per thread), the client issues asynchronous calls to start
//! the computation, and results are *pulled* back synchronously with queries
//! — "the idiomatic way to transfer data in SCOOP/Qs is to have the client
//! pull data from the handler".  The pull loops are exactly the query-heavy
//! tight loops the sync-coalescing optimisations target, so the measured
//! communication time reproduces the None ≫ {Dynamic, Static} gap of
//! Table 1 / Fig. 16.
//!
//! Under a configuration with `assume_static_sync` the pull loops run in the
//! shape the static pass produces (one hoisted [`qs_runtime::Separate::sync`]
//! followed by unsynced reads); under every other configuration they run the
//! naive shape (a full query per element).

use std::time::{Duration, Instant};

use qs_runtime::{Handler, OptimizationLevel, Runtime, Separate};

use crate::seq;
use crate::types::{
    assert_close, rand_cell, CowichanParams, IntMatrix, Matrix, ParallelTask, Point, TimedRun,
};

/// Splits `0..total` into `parts` contiguous ranges.
pub fn split_ranges(total: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    let chunk = total.div_ceil(parts).max(1);
    let mut ranges = Vec::new();
    let mut start = 0;
    while start < total {
        let end = (start + chunk).min(total);
        ranges.push(start..end);
        start = end;
    }
    if ranges.is_empty() {
        ranges.push(0..0);
    }
    ranges
}

/// State owned by one worker handler: the rows it is responsible for.
#[derive(Default)]
struct Worker {
    /// Start row of this worker's range.
    first_row: usize,
    /// Integer rows (randmat/thresh/winnow stages).
    int_rows: Vec<Vec<u32>>,
    /// Boolean mask rows.
    mask_rows: Vec<Vec<bool>>,
    /// Float rows (outer matrix).
    float_rows: Vec<Vec<f64>>,
    /// Sorted (value, row, col) candidates (winnow).
    candidates: Vec<(u32, usize, usize)>,
    /// Histogram of values (thresh).
    histogram: Vec<usize>,
    /// Partial result vector (product / outer vector).
    partial: Vec<f64>,
}

/// Pulls `len` values out of a worker with the access shape dictated by the
/// optimisation level: naive (query per element) or statically coalesced
/// (one sync, then unsynced reads).
fn pull_values<T: Send + 'static, R: Send + Copy + 'static>(
    guard: &mut Separate<'_, Worker>,
    statically_coalesced: bool,
    len: usize,
    read: impl Fn(&mut Worker, usize) -> R + Send + Copy + 'static,
    mut sink: impl FnMut(usize, R),
    _marker: std::marker::PhantomData<T>,
) {
    if statically_coalesced {
        guard.sync();
        for i in 0..len {
            let value = guard.query_unsynced(|w| read(w, i));
            sink(i, value);
        }
    } else {
        for i in 0..len {
            let value = guard.query(move |w| read(w, i));
            sink(i, value);
        }
    }
}

struct Cluster {
    runtime: Runtime,
    workers: Vec<Handler<Worker>>,
    ranges: Vec<std::ops::Range<usize>>,
    statically_coalesced: bool,
}

impl Cluster {
    fn new(level: OptimizationLevel, params: &CowichanParams, total_rows: usize) -> Self {
        let config = level.config();
        let runtime = Runtime::new(config);
        let ranges = split_ranges(total_rows, params.threads);
        let workers = ranges
            .iter()
            .map(|range| {
                runtime.spawn_handler(Worker {
                    first_row: range.start,
                    ..Worker::default()
                })
            })
            .collect();
        Cluster {
            runtime,
            workers,
            ranges,
            statically_coalesced: config.assume_static_sync,
        }
    }

    /// Issues an asynchronous call on every worker (fire and forget).
    fn broadcast(&self, f: impl Fn(&mut Worker) + Send + Clone + 'static) {
        for worker in &self.workers {
            let f = f.clone();
            worker.separate(|s| s.call(move |w| f(w)));
        }
    }

    /// Waits until every worker has drained its queue (end of compute phase).
    fn join(&self) {
        for worker in &self.workers {
            worker.separate(|s| s.query(|_| ()));
        }
    }

    fn stop(self) {
        for worker in &self.workers {
            worker.stop();
        }
        drop(self.runtime);
    }
}

/// Generates the worker-local slice of the random matrix (compute phase of
/// randmat, and the input-generation step of the other kernels: the matrix is
/// regenerated locally instead of being shipped, as the seed is shared).
fn generate_rows(cluster: &Cluster, params: &CowichanParams) {
    let seed = params.seed;
    let nr = params.nr;
    for (worker, range) in cluster.workers.iter().zip(&cluster.ranges) {
        let range = range.clone();
        worker.separate(|s| {
            s.call(move |w: &mut Worker| {
                w.int_rows = range
                    .clone()
                    .map(|row| (0..nr).map(|col| rand_cell(seed, row, col)).collect())
                    .collect();
            });
        });
    }
}

/// randmat: workers generate rows; the client pulls every element back.
fn randmat(cluster: &Cluster, params: &CowichanParams) -> (IntMatrix, TimedRun) {
    let nr = params.nr;
    let compute_start = Instant::now();
    generate_rows(cluster, params);
    cluster.join();
    let compute = compute_start.elapsed();

    let communicate_start = Instant::now();
    let mut matrix = Matrix::<u32>::zeroed(nr, nr);
    for (worker, range) in cluster.workers.iter().zip(&cluster.ranges) {
        let rows = range.len();
        let base_row = range.start;
        worker.separate(|s| {
            pull_values::<u32, u32>(
                s,
                cluster.statically_coalesced,
                rows * nr,
                move |w, i| w.int_rows[i / nr][i % nr],
                |i, value| matrix.set(base_row + i / nr, i % nr, value),
                std::marker::PhantomData,
            );
        });
    }
    let communicate = communicate_start.elapsed();
    (
        matrix,
        TimedRun {
            compute,
            communicate,
        },
    )
}

/// thresh: per-worker histograms, a global threshold, per-worker masks, and a
/// pull of the mask back to the client.
fn thresh(cluster: &Cluster, params: &CowichanParams) -> (Matrix<bool>, TimedRun) {
    let nr = params.nr;
    let compute_start = Instant::now();
    generate_rows(cluster, params);
    cluster.broadcast(|w| {
        let mut histogram = vec![0usize; crate::types::RAND_MAX as usize + 1];
        for row in &w.int_rows {
            for &value in row {
                histogram[value as usize] += 1;
            }
        }
        w.histogram = histogram;
    });
    cluster.join();
    let mut compute = compute_start.elapsed();

    // Small communication: merge the histograms on the client.
    let communicate_start = Instant::now();
    let mut histogram = vec![0usize; crate::types::RAND_MAX as usize + 1];
    for worker in &cluster.workers {
        let partial = worker.separate(|s| s.query(|w| w.histogram.clone()));
        for (total, part) in histogram.iter_mut().zip(partial) {
            *total += part;
        }
    }
    let mut communicate = communicate_start.elapsed();

    // Threshold selection happens on the client (cheap, sequential).
    let target = (nr * nr * params.p_percent as usize).div_ceil(100);
    let mut kept = 0usize;
    let mut threshold = 0u32;
    for value in (0..histogram.len()).rev() {
        kept += histogram[value];
        if kept >= target {
            threshold = value as u32;
            break;
        }
    }

    // Second compute phase: build the mask rows.
    let compute_start = Instant::now();
    cluster.broadcast(move |w| {
        w.mask_rows = w
            .int_rows
            .iter()
            .map(|row| row.iter().map(|&v| v >= threshold).collect())
            .collect();
    });
    cluster.join();
    compute += compute_start.elapsed();

    // Pull the mask back, element by element.
    let communicate_start = Instant::now();
    let mut mask = Matrix::<bool>::zeroed(nr, nr);
    for (worker, range) in cluster.workers.iter().zip(&cluster.ranges) {
        let rows = range.len();
        let base_row = range.start;
        worker.separate(|s| {
            pull_values::<bool, bool>(
                s,
                cluster.statically_coalesced,
                rows * nr,
                move |w, i| w.mask_rows[i / nr][i % nr],
                |i, value| mask.set(base_row + i / nr, i % nr, value),
                std::marker::PhantomData,
            );
        });
    }
    communicate += communicate_start.elapsed();
    (
        mask,
        TimedRun {
            compute,
            communicate,
        },
    )
}

/// winnow: workers sort their local masked candidates; the client pulls and
/// merges them and selects `nw` evenly spaced points.
fn winnow(cluster: &Cluster, params: &CowichanParams) -> (Vec<Point>, TimedRun) {
    let (_, thresh_time) = thresh(cluster, params);
    let compute_start = Instant::now();
    cluster.broadcast(|w| {
        let mut candidates = Vec::new();
        for (local_row, (values, mask)) in w.int_rows.iter().zip(&w.mask_rows).enumerate() {
            let row = w.first_row + local_row;
            for (col, (&value, &keep)) in values.iter().zip(mask).enumerate() {
                if keep {
                    candidates.push((value, row, col));
                }
            }
        }
        candidates.sort_unstable();
        w.candidates = candidates;
    });
    cluster.join();
    let compute = thresh_time.compute + compute_start.elapsed();

    let communicate_start = Instant::now();
    let mut all: Vec<(u32, usize, usize)> = Vec::new();
    for worker in &cluster.workers {
        let count = worker.separate(|s| s.query(|w| w.candidates.len()));
        worker.separate(|s| {
            pull_values::<(u32, usize, usize), (u32, usize, usize)>(
                s,
                cluster.statically_coalesced,
                count,
                |w, i| w.candidates[i],
                |_, value| all.push(value),
                std::marker::PhantomData,
            );
        });
    }
    all.sort_unstable();
    let points = seq::select_evenly(&all, params.nw);
    let communicate = thresh_time.communicate + communicate_start.elapsed();
    (
        points,
        TimedRun {
            compute,
            communicate,
        },
    )
}

/// outer: the client pushes the point list to every worker (communication),
/// workers compute their rows of the distance matrix plus the origin-distance
/// vector (compute), the client pulls the rows back (communication).
fn outer_from_points(cluster: &Cluster, points: &[Point]) -> (Matrix<f64>, Vec<f64>, TimedRun) {
    let n = points.len();
    let ranges = split_ranges(n, cluster.workers.len());
    let mut communicate = Duration::ZERO;

    // Pushing the point list to the workers rides along with the compute
    // calls below: in SCOOP the packaged call carries its arguments, so the
    // distribution cost is part of issuing the (asynchronous) calls and the
    // dominant communication cost is pulling the results back.
    let compute_start = Instant::now();
    for (worker, range) in cluster.workers.iter().zip(&ranges) {
        let points = points.to_vec();
        let range = range.clone();
        worker.separate(|s| {
            s.call(move |w| {
                w.first_row = range.start;
                let n = points.len();
                w.float_rows = range
                    .clone()
                    .map(|i| {
                        let mut row = vec![0.0f64; n];
                        let mut row_max = 0.0f64;
                        for (j, value) in row.iter_mut().enumerate() {
                            if i != j {
                                let d = seq::distance(points[i], points[j]);
                                *value = d;
                                row_max = row_max.max(d);
                            }
                        }
                        row[i] = row_max * n as f64;
                        row
                    })
                    .collect();
                w.partial = range
                    .clone()
                    .map(|i| seq::distance(points[i], (0, 0)))
                    .collect();
            });
        });
    }
    cluster.join();
    let compute = compute_start.elapsed();

    let communicate_start = Instant::now();
    let mut matrix = Matrix::<f64>::zeroed(n, n);
    let mut vector = vec![0.0f64; n];
    for (worker, range) in cluster.workers.iter().zip(&ranges) {
        let rows = range.len();
        let base_row = range.start;
        worker.separate(|s| {
            pull_values::<f64, f64>(
                s,
                cluster.statically_coalesced,
                rows * n,
                move |w, i| w.float_rows[i / n][i % n],
                |i, value| matrix.set(base_row + i / n, i % n, value),
                std::marker::PhantomData,
            );
            pull_values::<f64, f64>(
                s,
                cluster.statically_coalesced,
                rows,
                |w, i| w.partial[i],
                |i, value| vector[base_row + i] = value,
                std::marker::PhantomData,
            );
        });
    }
    communicate += communicate_start.elapsed();
    (
        matrix,
        vector,
        TimedRun {
            compute,
            communicate,
        },
    )
}

/// product: workers hold their rows of the matrix plus a copy of the vector,
/// compute the partial products, and the client pulls the result vector.
fn product_from(cluster: &Cluster, matrix: &Matrix<f64>, vector: &[f64]) -> (Vec<f64>, TimedRun) {
    let n = matrix.rows;
    let ranges = split_ranges(n, cluster.workers.len());

    let communicate_start = Instant::now();
    for (worker, range) in cluster.workers.iter().zip(&ranges) {
        let rows: Vec<Vec<f64>> = range.clone().map(|r| matrix.row(r).to_vec()).collect();
        let vector = vector.to_vec();
        let range = range.clone();
        worker.separate(|s| {
            s.call(move |w| {
                w.first_row = range.start;
                w.float_rows = rows;
                w.partial = vector;
            });
        });
    }
    let mut communicate = communicate_start.elapsed();

    let compute_start = Instant::now();
    cluster.broadcast(|w| {
        let vector = std::mem::take(&mut w.partial);
        w.partial = w
            .float_rows
            .iter()
            .map(|row| row.iter().zip(&vector).map(|(m, v)| m * v).sum())
            .collect();
    });
    cluster.join();
    let compute = compute_start.elapsed();

    let communicate_start = Instant::now();
    let mut result = vec![0.0f64; n];
    for (worker, range) in cluster.workers.iter().zip(&ranges) {
        let rows = range.len();
        let base_row = range.start;
        worker.separate(|s| {
            pull_values::<f64, f64>(
                s,
                cluster.statically_coalesced,
                rows,
                |w, i| w.partial[i],
                |i, value| result[base_row + i] = value,
                std::marker::PhantomData,
            );
        });
    }
    communicate += communicate_start.elapsed();
    (
        result,
        TimedRun {
            compute,
            communicate,
        },
    )
}

/// Runs one Cowichan task under the given optimisation level and verifies the
/// result against the sequential reference.
pub fn run(task: ParallelTask, level: OptimizationLevel, params: &CowichanParams) -> TimedRun {
    let cluster = Cluster::new(level, params, params.nr);
    let timing = match task {
        ParallelTask::Randmat => {
            let (matrix, timing) = randmat(&cluster, params);
            assert_eq!(
                matrix,
                seq::randmat(params),
                "randmat mismatch under {level}"
            );
            timing
        }
        ParallelTask::Thresh => {
            let (mask, timing) = thresh(&cluster, params);
            let reference = seq::thresh(&seq::randmat(params), params.p_percent);
            assert_eq!(mask, reference, "thresh mismatch under {level}");
            timing
        }
        ParallelTask::Winnow => {
            let (points, timing) = winnow(&cluster, params);
            let matrix = seq::randmat(params);
            let mask = seq::thresh(&matrix, params.p_percent);
            assert_eq!(points, seq::winnow(&matrix, &mask, params.nw));
            timing
        }
        ParallelTask::Outer => {
            let points = reference_points(params);
            let (matrix, vector, timing) = outer_from_points(&cluster, &points);
            let (ref_matrix, ref_vector) = seq::outer(&points);
            assert_close("outer matrix", &matrix.data, &ref_matrix.data);
            assert_close("outer vector", &vector, &ref_vector);
            timing
        }
        ParallelTask::Product => {
            let points = reference_points(params);
            let (ref_matrix, ref_vector) = seq::outer(&points);
            let (result, timing) = product_from(&cluster, &ref_matrix, &ref_vector);
            assert_close("product", &result, &seq::product(&ref_matrix, &ref_vector));
            timing
        }
        ParallelTask::Chain => {
            let (points, winnow_time) = winnow(&cluster, params);
            let (matrix, vector, outer_time) = outer_from_points(&cluster, &points);
            let (result, product_time) = product_from(&cluster, &matrix, &vector);
            assert_close("chain", &result, &seq::chain(params));
            TimedRun {
                compute: winnow_time.compute + outer_time.compute + product_time.compute,
                communicate: winnow_time.communicate
                    + outer_time.communicate
                    + product_time.communicate,
            }
        }
    };
    cluster.stop();
    timing
}

/// The deterministic input points used by the standalone outer/product tasks.
pub fn reference_points(params: &CowichanParams) -> Vec<Point> {
    let matrix = seq::randmat(params);
    let mask = seq::thresh(&matrix, params.p_percent);
    seq::winnow(&matrix, &mask, params.nw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_covers_everything() {
        let ranges = split_ranges(10, 3);
        assert_eq!(ranges.len(), 3);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(split_ranges(0, 4).len(), 1);
        assert_eq!(split_ranges(2, 8).len(), 2);
    }

    #[test]
    fn all_tasks_match_reference_under_all_config() {
        let params = CowichanParams::tiny();
        for task in ParallelTask::ALL {
            // `run` panics on any mismatch against the sequential oracle.
            let timing = run(task, OptimizationLevel::All, &params);
            assert!(timing.total() > Duration::ZERO, "{task}");
        }
    }

    #[test]
    fn randmat_matches_under_every_level() {
        let params = CowichanParams::tiny();
        for level in OptimizationLevel::ALL {
            run(ParallelTask::Randmat, level, &params);
        }
    }

    #[test]
    fn unoptimized_performs_many_more_syncs_than_optimized() {
        let params = CowichanParams::tiny();
        let runtime_probe = |level: OptimizationLevel| {
            let cluster = Cluster::new(level, &params, params.nr);
            let before = cluster.runtime.stats_snapshot();
            let _ = randmat(&cluster, &params);
            let after = cluster.runtime.stats_snapshot();
            let delta = after.since(&before);
            cluster.stop();
            delta
        };
        let unoptimized = runtime_probe(OptimizationLevel::None);
        let dynamic = runtime_probe(OptimizationLevel::Dynamic);
        // The unoptimised runtime pays a handler round-trip per pulled
        // element (handler-executed queries); the dynamic runtime only needs
        // one sync per separate block and elides the rest.
        let unoptimized_round_trips =
            unoptimized.syncs_performed + unoptimized.queries_handler_executed;
        let dynamic_round_trips = dynamic.syncs_performed + dynamic.queries_handler_executed;
        assert!(
            unoptimized_round_trips > 10 * dynamic_round_trips.max(1),
            "expected a large round-trip gap: {unoptimized_round_trips} vs {dynamic_round_trips}"
        );
    }
}
