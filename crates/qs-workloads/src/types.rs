//! Shared data types and parameters for the benchmark programs.

use std::time::Duration;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix<T> {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage (`rows * cols` elements).
    pub data: Vec<T>,
}

/// Integer matrices used by randmat/thresh/winnow.
pub type IntMatrix = Matrix<u32>;
/// Boolean masks produced by thresh.
pub type BoolMatrix = Matrix<bool>;

impl<T: Clone + Default> Matrix<T> {
    /// Creates a matrix filled with `T::default()`.
    pub fn zeroed(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T> Matrix<T> {
    /// Builds a matrix from row-major data; panics on a size mismatch.
    pub fn from_data(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data has the wrong size");
        Matrix { rows, cols, data }
    }

    /// Returns the element at (`row`, `col`).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> &T {
        &self.data[row * self.cols + col]
    }

    /// Sets the element at (`row`, `col`).
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        self.data[row * self.cols + col] = value;
    }

    /// A view of one row.
    #[inline]
    pub fn row(&self, row: usize) -> &[T] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }
}

/// The value range produced by the deterministic random matrix generator.
pub const RAND_MAX: u32 = 100;

/// Deterministic "random" cell value used by every randmat implementation, so
/// that all paradigms compute identical matrices and can be cross-checked.
/// (SplitMix64-style hash of the seed and coordinates.)
#[inline]
pub fn rand_cell(seed: u64, row: usize, col: usize) -> u32 {
    let mut z = seed
        .wrapping_add((row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((col as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % RAND_MAX as u64) as u32
}

/// A 2-D point (row, column) produced by winnow.
pub type Point = (usize, usize);

/// Parameters of the Cowichan problems (§4.1.1: nr = 10 000, p = 1 %,
/// nw = 10 000 in the paper; scaled-down defaults are provided for tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CowichanParams {
    /// Matrix is `nr x nr`.
    pub nr: usize,
    /// Percentage (1..=100) of elements kept by thresh.
    pub p_percent: u32,
    /// Number of points selected by winnow.
    pub nw: usize,
    /// Seed of the deterministic matrix generator.
    pub seed: u64,
    /// Number of worker threads / handlers to use.
    pub threads: usize,
}

impl CowichanParams {
    /// Tiny instance used by unit tests (fast, still exercises every path).
    pub fn tiny() -> Self {
        CowichanParams {
            nr: 40,
            p_percent: 10,
            nw: 20,
            seed: 42,
            threads: 4,
        }
    }

    /// Small instance for integration tests.
    pub fn small() -> Self {
        CowichanParams {
            nr: 120,
            p_percent: 5,
            nw: 60,
            seed: 7,
            threads: 4,
        }
    }

    /// Benchmark-scale instance (still far below the paper's 10 000² cells so
    /// a laptop regenerates the tables in minutes; the harness scales it).
    pub fn bench(threads: usize) -> Self {
        CowichanParams {
            nr: 600,
            p_percent: 1,
            nw: 600,
            seed: 2015,
            threads,
        }
    }

    /// The paper's full problem size (nr = 10 000, p = 1, nw = 10 000).
    pub fn paper(threads: usize) -> Self {
        CowichanParams {
            nr: 10_000,
            p_percent: 1,
            nw: 10_000,
            seed: 2015,
            threads,
        }
    }
}

/// The parallel tasks of §4.1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParallelTask {
    /// Randomly generate a matrix.
    Randmat,
    /// Select the top p% of the matrix into a mask.
    Thresh,
    /// Sort masked elements and pick `nw` of them.
    Winnow,
    /// Build a distance matrix and vector from the points.
    Outer,
    /// Matrix–vector product.
    Product,
    /// The sequential composition of all of the above.
    Chain,
}

impl ParallelTask {
    /// Every parallel task, in the order the paper's tables list them.
    pub const ALL: [ParallelTask; 6] = [
        ParallelTask::Chain,
        ParallelTask::Outer,
        ParallelTask::Product,
        ParallelTask::Randmat,
        ParallelTask::Thresh,
        ParallelTask::Winnow,
    ];

    /// Lower-case name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ParallelTask::Randmat => "randmat",
            ParallelTask::Thresh => "thresh",
            ParallelTask::Winnow => "winnow",
            ParallelTask::Outer => "outer",
            ParallelTask::Product => "product",
            ParallelTask::Chain => "chain",
        }
    }
}

impl std::fmt::Display for ParallelTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Wall-clock timing of one benchmark run, split the way §5.2 reports it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimedRun {
    /// Time spent computing (workers busy on their slices).
    pub compute: Duration,
    /// Time spent distributing inputs / collecting results between the client
    /// and the workers.
    pub communicate: Duration,
}

impl TimedRun {
    /// Total wall-clock time.
    pub fn total(&self) -> Duration {
        self.compute + self.communicate
    }
}

/// Compares two `f64` slices allowing for no deviation (all implementations
/// sum in the same order) but giving a useful panic message on mismatch.
pub fn assert_close(label: &str, got: &[f64], expected: &[f64]) {
    assert_eq!(got.len(), expected.len(), "{label}: length mismatch");
    for (i, (g, e)) in got.iter().zip(expected).enumerate() {
        assert!(
            (g - e).abs() <= 1e-9 * e.abs().max(1.0),
            "{label}: element {i} differs: {g} vs {e}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_indexing_round_trips() {
        let mut m = Matrix::<u32>::zeroed(3, 4);
        m.set(2, 3, 7);
        assert_eq!(*m.get(2, 3), 7);
        assert_eq!(m.row(2), &[0, 0, 0, 7]);
        let rebuilt = Matrix::from_data(3, 4, m.data.clone());
        assert_eq!(rebuilt, m);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn from_data_rejects_bad_sizes() {
        let _ = Matrix::from_data(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn rand_cell_is_deterministic_and_bounded() {
        for row in 0..50 {
            for col in 0..50 {
                let a = rand_cell(1, row, col);
                let b = rand_cell(1, row, col);
                assert_eq!(a, b);
                assert!(a < RAND_MAX);
            }
        }
        assert_ne!(rand_cell(1, 0, 1), rand_cell(2, 0, 1));
    }

    #[test]
    fn params_presets_are_ordered_by_size() {
        assert!(CowichanParams::tiny().nr < CowichanParams::small().nr);
        assert!(CowichanParams::small().nr < CowichanParams::bench(4).nr);
        assert!(CowichanParams::bench(4).nr < CowichanParams::paper(32).nr);
    }

    #[test]
    fn task_names_match_paper() {
        let names: Vec<_> = ParallelTask::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(
            names,
            vec!["chain", "outer", "product", "randmat", "thresh", "winnow"]
        );
        assert_eq!(ParallelTask::Chain.to_string(), "chain");
    }

    #[test]
    fn timed_run_totals() {
        let run = TimedRun {
            compute: Duration::from_millis(10),
            communicate: Duration::from_millis(5),
        };
        assert_eq!(run.total(), Duration::from_millis(15));
    }

    #[test]
    fn assert_close_accepts_equal_and_rejects_different() {
        assert_close("ok", &[1.0, 2.0], &[1.0, 2.0]);
        let result = std::panic::catch_unwind(|| assert_close("bad", &[1.0], &[2.0]));
        assert!(result.is_err());
    }
}
