//! Cowichan kernels on the comparison paradigms (§5.2).
//!
//! * [`run_shared`] — threads + shared memory + parallel loops (the C++/TBB
//!   stand-in; also used for the Haskell/Repa data-parallel point, see
//!   `DESIGN.md`).  There is no separate communication phase: workers write
//!   straight into the shared output, so the whole run counts as compute.
//! * [`run_channel`] — tasks + channels (the Go stand-in): row ranges are
//!   fanned out to goroutine-style tasks which send their finished rows back
//!   over a channel.
//! * [`run_actor`] — copying actors (the Erlang stand-in): every worker gets
//!   its own copy of the inputs and sends back a copy of its outputs, so the
//!   distribution/collection cost is reported as communication time, the way
//!   the paper splits the Erlang numbers.

use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use qs_baselines::actor::{spawn_actor, ActorExit};
use qs_exec::{parallel_for, ThreadPool};

use crate::seq;
use crate::types::{
    assert_close, rand_cell, CowichanParams, IntMatrix, Matrix, ParallelTask, Point, TimedRun,
};

fn ranges(total: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    crate::cowichan_scoop::split_ranges(total, parts)
}

// ---------------------------------------------------------------------------
// Shared-memory (threads + locks + parallel loops)
// ---------------------------------------------------------------------------

fn shared_randmat(pool: &ThreadPool, params: &CowichanParams) -> IntMatrix {
    let nr = params.nr;
    let mut matrix = Matrix::<u32>::zeroed(nr, nr);
    let seed = params.seed;
    qs_exec::parallel_chunks(
        pool,
        &mut matrix.data,
        params.threads,
        |_, offset, chunk| {
            for (k, cell) in chunk.iter_mut().enumerate() {
                let index = offset + k;
                *cell = rand_cell(seed, index / nr, index % nr);
            }
        },
    );
    matrix
}

fn shared_thresh(pool: &ThreadPool, params: &CowichanParams, matrix: &IntMatrix) -> Matrix<bool> {
    let threshold = {
        // Parallel per-range histograms, merged sequentially.
        let parts = ranges(matrix.data.len(), params.threads);
        let partials: Vec<std::sync::Mutex<Vec<usize>>> = parts
            .iter()
            .map(|_| std::sync::Mutex::new(vec![0usize; crate::types::RAND_MAX as usize + 1]))
            .collect();
        let data = &matrix.data;
        let partials_ref = &partials;
        let parts_ref = &parts;
        parallel_for(pool, parts.len(), parts.len(), |range| {
            for part in range {
                let mut histogram = partials_ref[part].lock().unwrap();
                for &value in &data[parts_ref[part].clone()] {
                    histogram[value as usize] += 1;
                }
            }
        });
        let mut histogram = vec![0usize; crate::types::RAND_MAX as usize + 1];
        for partial in &partials {
            for (total, part) in histogram.iter_mut().zip(partial.lock().unwrap().iter()) {
                *total += part;
            }
        }
        let target = (matrix.data.len() * params.p_percent as usize).div_ceil(100);
        let mut kept = 0usize;
        let mut threshold = 0u32;
        for value in (0..histogram.len()).rev() {
            kept += histogram[value];
            if kept >= target {
                threshold = value as u32;
                break;
            }
        }
        threshold
    };
    let mut mask = Matrix::<bool>::zeroed(matrix.rows, matrix.cols);
    let data = &matrix.data;
    qs_exec::parallel_chunks(pool, &mut mask.data, params.threads, |_, offset, chunk| {
        for (k, cell) in chunk.iter_mut().enumerate() {
            *cell = data[offset + k] >= threshold;
        }
    });
    mask
}

fn shared_winnow(
    pool: &ThreadPool,
    params: &CowichanParams,
    matrix: &IntMatrix,
    mask: &Matrix<bool>,
) -> Vec<Point> {
    let parts = ranges(matrix.rows, params.threads);
    let collected: Vec<std::sync::Mutex<Vec<(u32, usize, usize)>>> = parts
        .iter()
        .map(|_| std::sync::Mutex::new(Vec::new()))
        .collect();
    let parts_ref = &parts;
    let collected_ref = &collected;
    parallel_for(pool, parts.len(), parts.len(), |range| {
        for part in range {
            let mut local = Vec::new();
            for row in parts_ref[part].clone() {
                for col in 0..matrix.cols {
                    if *mask.get(row, col) {
                        local.push((*matrix.get(row, col), row, col));
                    }
                }
            }
            local.sort_unstable();
            *collected_ref[part].lock().unwrap() = local;
        }
    });
    let mut all: Vec<(u32, usize, usize)> = Vec::new();
    for part in &collected {
        all.extend(part.lock().unwrap().iter().copied());
    }
    all.sort_unstable();
    seq::select_evenly(&all, params.nw)
}

fn shared_outer(
    pool: &ThreadPool,
    params: &CowichanParams,
    points: &[Point],
) -> (Matrix<f64>, Vec<f64>) {
    let n = points.len();
    let mut matrix = Matrix::<f64>::zeroed(n, n);
    let mut vector = vec![0.0f64; n];
    if n == 0 {
        return (matrix, vector);
    }
    {
        let rows: Vec<&mut [f64]> = matrix.data.chunks_mut(n).collect();
        let vector_cells: Vec<&mut f64> = vector.iter_mut().collect();
        let cells = rows.into_iter().zip(vector_cells).collect::<Vec<_>>();
        let mut holder = cells;
        qs_exec::parallel_chunks(pool, &mut holder, params.threads, |_, offset, chunk| {
            for (k, (row, origin)) in chunk.iter_mut().enumerate() {
                let i = offset + k;
                let mut row_max = 0.0f64;
                for j in 0..n {
                    if i != j {
                        let d = seq::distance(points[i], points[j]);
                        row[j] = d;
                        row_max = row_max.max(d);
                    }
                }
                row[i] = row_max * n as f64;
                **origin = seq::distance(points[i], (0, 0));
            }
        });
    }
    (matrix, vector)
}

fn shared_product(
    pool: &ThreadPool,
    params: &CowichanParams,
    matrix: &Matrix<f64>,
    vector: &[f64],
) -> Vec<f64> {
    let mut result = vec![0.0f64; matrix.rows];
    qs_exec::parallel_chunks(pool, &mut result, params.threads, |_, offset, chunk| {
        for (k, cell) in chunk.iter_mut().enumerate() {
            let row = offset + k;
            *cell = matrix.row(row).iter().zip(vector).map(|(m, v)| m * v).sum();
        }
    });
    result
}

/// Runs one Cowichan task on the shared-memory baseline and verifies it.
pub fn run_shared(task: ParallelTask, params: &CowichanParams) -> TimedRun {
    let pool = ThreadPool::new(params.threads);
    let start = Instant::now();
    verify(task, params, |stage| match stage {
        Stage::Randmat => StageOutput::Int(shared_randmat(&pool, params)),
        Stage::Thresh(matrix) => StageOutput::Mask(shared_thresh(&pool, params, matrix)),
        Stage::Winnow(matrix, mask) => {
            StageOutput::Points(shared_winnow(&pool, params, matrix, mask))
        }
        Stage::Outer(points) => {
            let (m, v) = shared_outer(&pool, params, points);
            StageOutput::Outer(m, v)
        }
        Stage::Product(matrix, vector) => {
            StageOutput::Vector(shared_product(&pool, params, matrix, vector))
        }
    });
    TimedRun {
        compute: start.elapsed(),
        communicate: Duration::ZERO,
    }
}

// ---------------------------------------------------------------------------
// Channels (Go-like): scatter ranges, gather rows over channels
// ---------------------------------------------------------------------------

/// Runs one Cowichan task on the channel baseline and verifies it.
pub fn run_channel(task: ParallelTask, params: &CowichanParams) -> TimedRun {
    let start = Instant::now();
    verify(task, params, |stage| channel_stage(params, stage));
    TimedRun {
        compute: start.elapsed(),
        communicate: Duration::ZERO,
    }
}

fn channel_stage(params: &CowichanParams, stage: Stage<'_>) -> StageOutput {
    match stage {
        Stage::Randmat => {
            let nr = params.nr;
            let (tx, rx) = unbounded();
            std::thread::scope(|scope| {
                for range in ranges(nr, params.threads) {
                    let tx = tx.clone();
                    let seed = params.seed;
                    scope.spawn(move || {
                        let rows: Vec<(usize, Vec<u32>)> = range
                            .map(|row| {
                                (row, (0..nr).map(|col| rand_cell(seed, row, col)).collect())
                            })
                            .collect();
                        tx.send(rows).unwrap();
                    });
                }
            });
            drop(tx);
            let mut matrix = Matrix::<u32>::zeroed(nr, nr);
            for rows in rx.iter() {
                for (row, values) in rows {
                    matrix.data[row * nr..(row + 1) * nr].copy_from_slice(&values);
                }
            }
            StageOutput::Int(matrix)
        }
        Stage::Thresh(matrix) => {
            let threshold = seq::thresh_value(matrix, params.p_percent);
            let (tx, rx) = unbounded();
            std::thread::scope(|scope| {
                for range in ranges(matrix.rows, params.threads) {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        let rows: Vec<(usize, Vec<bool>)> = range
                            .map(|row| {
                                (
                                    row,
                                    matrix.row(row).iter().map(|&v| v >= threshold).collect(),
                                )
                            })
                            .collect();
                        tx.send(rows).unwrap();
                    });
                }
            });
            drop(tx);
            let mut mask = Matrix::<bool>::zeroed(matrix.rows, matrix.cols);
            for rows in rx.iter() {
                for (row, values) in rows {
                    for (col, value) in values.into_iter().enumerate() {
                        mask.set(row, col, value);
                    }
                }
            }
            StageOutput::Mask(mask)
        }
        Stage::Winnow(matrix, mask) => {
            let (tx, rx) = unbounded();
            std::thread::scope(|scope| {
                for range in ranges(matrix.rows, params.threads) {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        for row in range {
                            for col in 0..matrix.cols {
                                if *mask.get(row, col) {
                                    local.push((*matrix.get(row, col), row, col));
                                }
                            }
                        }
                        local.sort_unstable();
                        tx.send(local).unwrap();
                    });
                }
            });
            drop(tx);
            let mut all: Vec<(u32, usize, usize)> = rx.iter().flatten().collect();
            all.sort_unstable();
            StageOutput::Points(seq::select_evenly(&all, params.nw))
        }
        Stage::Outer(points) => {
            let n = points.len();
            let (tx, rx) = unbounded();
            std::thread::scope(|scope| {
                for range in ranges(n, params.threads) {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        let rows: Vec<(usize, Vec<f64>, f64)> = range
                            .map(|i| {
                                let mut row = vec![0.0; n];
                                let mut row_max = 0.0f64;
                                for j in 0..n {
                                    if i != j {
                                        let d = seq::distance(points[i], points[j]);
                                        row[j] = d;
                                        row_max = row_max.max(d);
                                    }
                                }
                                row[i] = row_max * n as f64;
                                (i, row, seq::distance(points[i], (0, 0)))
                            })
                            .collect();
                        tx.send(rows).unwrap();
                    });
                }
            });
            drop(tx);
            let mut matrix = Matrix::<f64>::zeroed(n, n);
            let mut vector = vec![0.0; n];
            for rows in rx.iter() {
                for (i, row, origin) in rows {
                    matrix.data[i * n..(i + 1) * n].copy_from_slice(&row);
                    vector[i] = origin;
                }
            }
            StageOutput::Outer(matrix, vector)
        }
        Stage::Product(matrix, vector) => {
            let (tx, rx) = unbounded();
            std::thread::scope(|scope| {
                for range in ranges(matrix.rows, params.threads) {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        let rows: Vec<(usize, f64)> = range
                            .map(|row| {
                                (
                                    row,
                                    matrix.row(row).iter().zip(vector).map(|(m, v)| m * v).sum(),
                                )
                            })
                            .collect();
                        tx.send(rows).unwrap();
                    });
                }
            });
            drop(tx);
            let mut result = vec![0.0; matrix.rows];
            for rows in rx.iter() {
                for (row, value) in rows {
                    result[row] = value;
                }
            }
            StageOutput::Vector(result)
        }
    }
}

// ---------------------------------------------------------------------------
// Actors (Erlang-like): inputs and outputs are copied whole
// ---------------------------------------------------------------------------

/// Runs one Cowichan task on the copying-actor baseline and verifies it.
///
/// The distribution of inputs and the collection of (copied) outputs are
/// timed as communication, mirroring how the paper splits Erlang's times.
pub fn run_actor(task: ParallelTask, params: &CowichanParams) -> TimedRun {
    let mut compute = Duration::ZERO;
    let mut communicate = Duration::ZERO;
    verify(task, params, |stage| {
        let (output, stage_compute, stage_communicate) = actor_stage(params, stage);
        compute += stage_compute;
        communicate += stage_communicate;
        output
    });
    TimedRun {
        compute,
        communicate,
    }
}

/// One actor-based map over row ranges: each worker actor receives a copied
/// job description, computes its rows, and sends back a copied result.
fn actor_map<R: Clone + Send + 'static>(
    params: &CowichanParams,
    total_rows: usize,
    job: impl Fn(std::ops::Range<usize>) -> R + Clone + Send + 'static,
) -> (Vec<R>, Duration, Duration) {
    #[derive(Clone)]
    struct Job {
        range: std::ops::Range<usize>,
    }
    let (result_tx, result_rx) = unbounded::<R>();
    let distribution_start = Instant::now();
    let workers: Vec<_> = ranges(total_rows, params.threads)
        .into_iter()
        .map(|range| {
            let job = job.clone();
            let result_tx = result_tx.clone();
            let actor = spawn_actor((), move |_, message: Job| {
                let result = job(message.range.clone());
                let _ = result_tx.send(result);
                ActorExit::Stop
            });
            actor.actor_ref.send_owned(Job { range });
            actor
        })
        .collect();
    let communicate_distribution = distribution_start.elapsed();

    let compute_start = Instant::now();
    let results: Vec<R> = (0..workers.len())
        .map(|_| result_rx.recv().unwrap())
        .collect();
    let compute = compute_start.elapsed();
    let collection_start = Instant::now();
    // "Copy" the results into the client's heap, as Erlang would.
    let copied: Vec<R> = results.to_vec();
    for worker in workers {
        worker.join();
    }
    let communicate = communicate_distribution + collection_start.elapsed();
    (copied, compute, communicate)
}

fn actor_stage(params: &CowichanParams, stage: Stage<'_>) -> (StageOutput, Duration, Duration) {
    match stage {
        Stage::Randmat => {
            let nr = params.nr;
            let seed = params.seed;
            let (parts, compute, communicate) = actor_map(params, nr, move |range| {
                let start = range.start;
                let rows: Vec<Vec<u32>> = range
                    .map(|row| (0..nr).map(|col| rand_cell(seed, row, col)).collect())
                    .collect();
                (start, rows)
            });
            let mut matrix = Matrix::<u32>::zeroed(nr, nr);
            for (start, rows) in parts {
                for (offset, row) in rows.into_iter().enumerate() {
                    matrix.data[(start + offset) * nr..(start + offset + 1) * nr]
                        .copy_from_slice(&row);
                }
            }
            (StageOutput::Int(matrix), compute, communicate)
        }
        Stage::Thresh(matrix) => {
            let threshold = seq::thresh_value(matrix, params.p_percent);
            let matrix_copy = matrix.clone();
            let (parts, compute, communicate) = actor_map(params, matrix.rows, move |range| {
                let start = range.start;
                let rows: Vec<Vec<bool>> = range
                    .map(|row| {
                        matrix_copy
                            .row(row)
                            .iter()
                            .map(|&v| v >= threshold)
                            .collect()
                    })
                    .collect();
                (start, rows)
            });
            let mut mask = Matrix::<bool>::zeroed(matrix.rows, matrix.cols);
            for (start, rows) in parts {
                for (offset, row) in rows.into_iter().enumerate() {
                    for (col, value) in row.into_iter().enumerate() {
                        mask.set(start + offset, col, value);
                    }
                }
            }
            (StageOutput::Mask(mask), compute, communicate)
        }
        Stage::Winnow(matrix, mask) => {
            let matrix_copy = matrix.clone();
            let mask_copy = mask.clone();
            let (parts, compute, communicate) = actor_map(params, matrix.rows, move |range| {
                let mut local = Vec::new();
                for row in range {
                    for col in 0..matrix_copy.cols {
                        if *mask_copy.get(row, col) {
                            local.push((*matrix_copy.get(row, col), row, col));
                        }
                    }
                }
                local.sort_unstable();
                local
            });
            let mut all: Vec<(u32, usize, usize)> = parts.into_iter().flatten().collect();
            all.sort_unstable();
            (
                StageOutput::Points(seq::select_evenly(&all, params.nw)),
                compute,
                communicate,
            )
        }
        Stage::Outer(points) => {
            let points_copy = points.to_vec();
            let n = points.len();
            let (parts, compute, communicate) = actor_map(params, n, move |range| {
                let rows: Vec<(usize, Vec<f64>, f64)> = range
                    .map(|i| {
                        let mut row = vec![0.0; n];
                        let mut row_max = 0.0f64;
                        for j in 0..n {
                            if i != j {
                                let d = seq::distance(points_copy[i], points_copy[j]);
                                row[j] = d;
                                row_max = row_max.max(d);
                            }
                        }
                        row[i] = row_max * n as f64;
                        (i, row, seq::distance(points_copy[i], (0, 0)))
                    })
                    .collect();
                rows
            });
            let mut matrix = Matrix::<f64>::zeroed(n, n);
            let mut vector = vec![0.0; n];
            for rows in parts {
                for (i, row, origin) in rows {
                    matrix.data[i * n..(i + 1) * n].copy_from_slice(&row);
                    vector[i] = origin;
                }
            }
            (StageOutput::Outer(matrix, vector), compute, communicate)
        }
        Stage::Product(matrix, vector) => {
            let matrix_copy = matrix.clone();
            let vector_copy = vector.to_vec();
            let (parts, compute, communicate) = actor_map(params, matrix.rows, move |range| {
                let rows: Vec<(usize, f64)> = range
                    .map(|row| {
                        (
                            row,
                            matrix_copy
                                .row(row)
                                .iter()
                                .zip(&vector_copy)
                                .map(|(m, v)| m * v)
                                .sum(),
                        )
                    })
                    .collect();
                rows
            });
            let mut result = vec![0.0; matrix.rows];
            for rows in parts {
                for (row, value) in rows {
                    result[row] = value;
                }
            }
            (StageOutput::Vector(result), compute, communicate)
        }
    }
}

// ---------------------------------------------------------------------------
// Shared verification driver
// ---------------------------------------------------------------------------

/// One pipeline stage handed to a paradigm implementation.
enum Stage<'a> {
    Randmat,
    Thresh(&'a IntMatrix),
    Winnow(&'a IntMatrix, &'a Matrix<bool>),
    Outer(&'a [Point]),
    Product(&'a Matrix<f64>, &'a [f64]),
}

/// Output of one stage.
enum StageOutput {
    Int(IntMatrix),
    Mask(Matrix<bool>),
    Points(Vec<Point>),
    Outer(Matrix<f64>, Vec<f64>),
    Vector(Vec<f64>),
}

/// Drives the requested task through the paradigm's stage function, checking
/// every produced artefact against the sequential reference.
fn verify(
    task: ParallelTask,
    params: &CowichanParams,
    mut stage: impl FnMut(Stage<'_>) -> StageOutput,
) {
    let reference_matrix = seq::randmat(params);
    let reference_mask = seq::thresh(&reference_matrix, params.p_percent);
    let reference_points = seq::winnow(&reference_matrix, &reference_mask, params.nw);
    let (reference_outer, reference_vector) = seq::outer(&reference_points);

    let check_int = |output: StageOutput| match output {
        StageOutput::Int(m) => {
            assert_eq!(m, reference_matrix, "randmat mismatch");
            m
        }
        _ => panic!("stage returned the wrong artefact"),
    };

    match task {
        ParallelTask::Randmat => {
            check_int(stage(Stage::Randmat));
        }
        ParallelTask::Thresh => {
            if let StageOutput::Mask(mask) = stage(Stage::Thresh(&reference_matrix)) {
                assert_eq!(mask, reference_mask, "thresh mismatch");
            } else {
                panic!("stage returned the wrong artefact");
            }
        }
        ParallelTask::Winnow => {
            if let StageOutput::Points(points) =
                stage(Stage::Winnow(&reference_matrix, &reference_mask))
            {
                assert_eq!(points, reference_points, "winnow mismatch");
            } else {
                panic!("stage returned the wrong artefact");
            }
        }
        ParallelTask::Outer => {
            if let StageOutput::Outer(matrix, vector) = stage(Stage::Outer(&reference_points)) {
                assert_close("outer matrix", &matrix.data, &reference_outer.data);
                assert_close("outer vector", &vector, &reference_vector);
            } else {
                panic!("stage returned the wrong artefact");
            }
        }
        ParallelTask::Product => {
            if let StageOutput::Vector(result) =
                stage(Stage::Product(&reference_outer, &reference_vector))
            {
                assert_close(
                    "product",
                    &result,
                    &seq::product(&reference_outer, &reference_vector),
                );
            } else {
                panic!("stage returned the wrong artefact");
            }
        }
        ParallelTask::Chain => {
            let matrix = check_int(stage(Stage::Randmat));
            let mask = match stage(Stage::Thresh(&matrix)) {
                StageOutput::Mask(mask) => mask,
                _ => panic!("stage returned the wrong artefact"),
            };
            let points = match stage(Stage::Winnow(&matrix, &mask)) {
                StageOutput::Points(points) => points,
                _ => panic!("stage returned the wrong artefact"),
            };
            let (outer_matrix, vector) = match stage(Stage::Outer(&points)) {
                StageOutput::Outer(m, v) => (m, v),
                _ => panic!("stage returned the wrong artefact"),
            };
            let result = match stage(Stage::Product(&outer_matrix, &vector)) {
                StageOutput::Vector(result) => result,
                _ => panic!("stage returned the wrong artefact"),
            };
            assert_close("chain", &result, &seq::chain(params));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_matches_reference_on_all_tasks() {
        let params = CowichanParams::tiny();
        for task in ParallelTask::ALL {
            let run = run_shared(task, &params);
            assert!(run.total() > Duration::ZERO, "{task}");
            assert_eq!(run.communicate, Duration::ZERO);
        }
    }

    #[test]
    fn channel_matches_reference_on_all_tasks() {
        let params = CowichanParams::tiny();
        for task in ParallelTask::ALL {
            run_channel(task, &params);
        }
    }

    #[test]
    fn actor_matches_reference_and_reports_communication() {
        let params = CowichanParams::tiny();
        for task in ParallelTask::ALL {
            let run = run_actor(task, &params);
            assert!(run.communicate > Duration::ZERO, "{task}");
        }
    }

    #[test]
    fn thresh_uses_parallel_histogram_correctly() {
        // Exercise an input whose histogram is concentrated: all paradigms
        // must agree on the threshold edge cases.
        let params = CowichanParams {
            p_percent: 100,
            ..CowichanParams::tiny()
        };
        run_shared(ParallelTask::Thresh, &params);
        run_channel(ParallelTask::Thresh, &params);
    }
}
