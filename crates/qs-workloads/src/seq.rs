//! Sequential reference implementations of the Cowichan kernels.
//!
//! These are the correctness oracles: every parallel implementation (SCOOP/Qs
//! under any optimisation level, and every baseline paradigm) must produce
//! exactly these results for the same parameters.

use crate::types::{rand_cell, BoolMatrix, CowichanParams, IntMatrix, Matrix, Point};

/// randmat: deterministically generate an `nr x nr` matrix of values in
/// `0..RAND_MAX`.
pub fn randmat(params: &CowichanParams) -> IntMatrix {
    let nr = params.nr;
    let mut data = Vec::with_capacity(nr * nr);
    for row in 0..nr {
        for col in 0..nr {
            data.push(rand_cell(params.seed, row, col));
        }
    }
    Matrix::from_data(nr, nr, data)
}

/// The threshold value such that keeping all elements `>= threshold` keeps at
/// least `p_percent` of the matrix.
pub fn thresh_value(matrix: &IntMatrix, p_percent: u32) -> u32 {
    let mut histogram = [0usize; crate::types::RAND_MAX as usize + 1];
    for &value in &matrix.data {
        histogram[value as usize] += 1;
    }
    let target = (matrix.data.len() * p_percent as usize).div_ceil(100);
    let mut kept = 0usize;
    let mut threshold = 0u32;
    for value in (0..histogram.len()).rev() {
        kept += histogram[value];
        if kept >= target {
            threshold = value as u32;
            break;
        }
    }
    threshold
}

/// thresh: build a boolean mask selecting the top `p_percent` of values.
pub fn thresh(matrix: &IntMatrix, p_percent: u32) -> BoolMatrix {
    let threshold = thresh_value(matrix, p_percent);
    let data = matrix.data.iter().map(|&v| v >= threshold).collect();
    Matrix::from_data(matrix.rows, matrix.cols, data)
}

/// winnow: sort the masked elements by `(value, row, col)` and select `nw`
/// evenly spaced points.
pub fn winnow(matrix: &IntMatrix, mask: &BoolMatrix, nw: usize) -> Vec<Point> {
    let mut candidates: Vec<(u32, usize, usize)> = Vec::new();
    for row in 0..matrix.rows {
        for col in 0..matrix.cols {
            if *mask.get(row, col) {
                candidates.push((*matrix.get(row, col), row, col));
            }
        }
    }
    candidates.sort_unstable();
    select_evenly(&candidates, nw)
}

/// Selects `nw` evenly spaced entries out of the sorted candidate list
/// (shared by all winnow implementations so they agree exactly).
pub fn select_evenly(sorted: &[(u32, usize, usize)], nw: usize) -> Vec<Point> {
    let n = sorted.len();
    if n == 0 || nw == 0 {
        return Vec::new();
    }
    let take = nw.min(n);
    let chunk = n / take;
    (0..take)
        .map(|i| {
            let (_, row, col) = sorted[i * chunk];
            (row, col)
        })
        .collect()
}

/// outer: a symmetric distance matrix with a dominant diagonal, plus the
/// vector of distances of each point from the origin.
pub fn outer(points: &[Point]) -> (Matrix<f64>, Vec<f64>) {
    let n = points.len();
    let mut matrix = Matrix::<f64>::zeroed(n, n);
    let mut vector = vec![0.0; n];
    for i in 0..n {
        let mut row_max = 0.0f64;
        for j in 0..n {
            if i != j {
                let d = distance(points[i], points[j]);
                matrix.set(i, j, d);
                row_max = row_max.max(d);
            }
        }
        matrix.set(i, i, row_max * n as f64);
        vector[i] = distance(points[i], (0, 0));
    }
    (matrix, vector)
}

/// Euclidean distance between two grid points.
#[inline]
pub fn distance(a: Point, b: Point) -> f64 {
    let dr = a.0 as f64 - b.0 as f64;
    let dc = a.1 as f64 - b.1 as f64;
    (dr * dr + dc * dc).sqrt()
}

/// product: matrix–vector product.
pub fn product(matrix: &Matrix<f64>, vector: &[f64]) -> Vec<f64> {
    (0..matrix.rows)
        .map(|row| matrix.row(row).iter().zip(vector).map(|(m, v)| m * v).sum())
        .collect()
}

/// chain: the sequential composition of all kernels.
pub fn chain(params: &CowichanParams) -> Vec<f64> {
    let matrix = randmat(params);
    let mask = thresh(&matrix, params.p_percent);
    let points = winnow(&matrix, &mask, params.nw);
    let (outer_matrix, vector) = outer(&points);
    product(&outer_matrix, &vector)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CowichanParams {
        CowichanParams::tiny()
    }

    #[test]
    fn randmat_is_deterministic_and_in_range() {
        let a = randmat(&params());
        let b = randmat(&params());
        assert_eq!(a, b);
        assert!(a.data.iter().all(|&v| v < crate::types::RAND_MAX));
        assert_eq!(a.rows, params().nr);
    }

    #[test]
    fn thresh_keeps_at_least_the_requested_fraction() {
        let matrix = randmat(&params());
        let mask = thresh(&matrix, 10);
        let kept = mask.data.iter().filter(|&&b| b).count();
        assert!(kept * 100 >= matrix.data.len() * 10);
        // Everything kept is >= everything dropped.
        let threshold = thresh_value(&matrix, 10);
        for (value, keep) in matrix.data.iter().zip(&mask.data) {
            assert_eq!(*keep, *value >= threshold);
        }
    }

    #[test]
    fn thresh_extremes() {
        let matrix = randmat(&params());
        let all = thresh(&matrix, 100);
        assert!(all.data.iter().all(|&b| b));
        let top = thresh(&matrix, 1);
        assert!(top.data.iter().any(|&b| b));
        assert!(top.data.iter().filter(|&&b| b).count() < matrix.data.len());
    }

    #[test]
    fn winnow_returns_sorted_selection_of_requested_size() {
        let matrix = randmat(&params());
        let mask = thresh(&matrix, 50);
        let points = winnow(&matrix, &mask, 10);
        assert_eq!(points.len(), 10);
        // Values at the selected points are non-decreasing.
        let values: Vec<u32> = points.iter().map(|&(r, c)| *matrix.get(r, c)).collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn winnow_handles_degenerate_cases() {
        let matrix = randmat(&params());
        let mask = thresh(&matrix, 50);
        assert!(winnow(&matrix, &mask, 0).is_empty());
        let empty_mask =
            Matrix::from_data(matrix.rows, matrix.cols, vec![false; matrix.data.len()]);
        assert!(winnow(&matrix, &empty_mask, 5).is_empty());
    }

    #[test]
    fn outer_has_dominant_diagonal_and_symmetric_off_diagonal() {
        let points = vec![(0, 0), (3, 4), (6, 8)];
        let (matrix, vector) = outer(&points);
        assert_eq!(matrix.rows, 3);
        assert_eq!(*matrix.get(0, 1), 5.0);
        assert_eq!(*matrix.get(1, 0), 5.0);
        assert!(*matrix.get(1, 1) > *matrix.get(1, 0));
        assert_eq!(vector, vec![0.0, 5.0, 10.0]);
    }

    #[test]
    fn product_matches_manual_computation() {
        let matrix = Matrix::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let vector = vec![10.0, 100.0];
        assert_eq!(product(&matrix, &vector), vec![210.0, 430.0]);
    }

    #[test]
    fn chain_produces_nw_results() {
        let result = chain(&params());
        assert_eq!(result.len(), params().nw);
        assert!(result.iter().all(|v| v.is_finite()));
    }
}
