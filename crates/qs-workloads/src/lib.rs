//! # qs-workloads — the paper's benchmark programs
//!
//! §4.1 of the paper divides the evaluation into two groups:
//!
//! * **parallel** problems — a selection from the Cowichan problem set
//!   (`randmat`, `thresh`, `winnow`, `outer`, `product`, and their
//!   composition `chain`), numerical kernels over large matrices where
//!   concurrency is only a means of speeding things up;
//! * **concurrent** problems — coordination benchmarks (`mutex`, `prodcons`,
//!   `condition`, plus `threadring` and `chameneos` from the Computer
//!   Language Benchmarks Game) where the interaction pattern *is* the
//!   specification.
//!
//! Every benchmark is implemented for the SCOOP/Qs runtime (under any
//! [`qs_runtime::OptimizationLevel`]) and for each comparison paradigm in
//! `qs-baselines`, which is what the experiment harness sweeps to regenerate
//! the paper's tables and figures.  Sequential reference implementations act
//! as correctness oracles for all of them.

#![warn(missing_docs)]

pub mod concurrent;
pub mod cowichan_baselines;
pub mod cowichan_scoop;
pub mod seq;
pub mod types;

pub use concurrent::{run_concurrent, ConcurrentParams, ConcurrentTask};
pub use types::{BoolMatrix, CowichanParams, IntMatrix, Matrix, ParallelTask, TimedRun};

use qs_baselines::Paradigm;
use qs_runtime::OptimizationLevel;

/// Runs one Cowichan task end-to-end under the given paradigm and returns
/// timing split into computation and communication (§5.2: "we distinguish the
/// time spent computing versus the time spent communicating the results").
///
/// The result is checked against the sequential reference; a mismatch panics,
/// so every timed run is also a correctness check.
pub fn run_parallel(task: ParallelTask, paradigm: Paradigm, params: &CowichanParams) -> TimedRun {
    match paradigm {
        Paradigm::ScoopQs => cowichan_scoop::run(task, OptimizationLevel::All, params),
        Paradigm::Shared | Paradigm::Stm => {
            // The paper's Haskell implementations use Repa (pure data-parallel
            // arrays) rather than STM for these kernels; the closest Rust
            // equivalent is the same data-parallel pool the shared baseline
            // uses (see DESIGN.md).
            cowichan_baselines::run_shared(task, params)
        }
        Paradigm::Channel => cowichan_baselines::run_channel(task, params),
        Paradigm::Actor => cowichan_baselines::run_actor(task, params),
    }
}

/// Runs one Cowichan task under a specific SCOOP/Qs optimisation level
/// (the §4.2 optimisation study, Table 1 / Fig. 16).
pub fn run_parallel_scoop(
    task: ParallelTask,
    level: OptimizationLevel,
    params: &CowichanParams,
) -> TimedRun {
    cowichan_scoop::run(task, level, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_paradigm_runs_the_chain() {
        let params = CowichanParams::tiny();
        for paradigm in Paradigm::ALL {
            let run = run_parallel(ParallelTask::Chain, paradigm, &params);
            assert!(run.total() > std::time::Duration::ZERO, "{paradigm}");
        }
    }

    #[test]
    fn every_level_runs_randmat() {
        let params = CowichanParams::tiny();
        for level in OptimizationLevel::ALL {
            let run = run_parallel_scoop(ParallelTask::Randmat, level, &params);
            assert!(run.total() > std::time::Duration::ZERO, "{level}");
        }
    }
}
