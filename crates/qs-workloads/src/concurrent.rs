//! The coordination benchmarks of §4.1.2 across all paradigms.
//!
//! * `mutex` — n threads compete for a single resource (a counter), m
//!   increments each;
//! * `prodcons` — n producers and n consumers share an unbounded queue;
//! * `condition` — "odd" and "even" worker groups alternately increment a
//!   counter, each group depending on the other to make progress;
//! * `threadring` — a token is passed around a ring of participants nt times
//!   (Computer Language Benchmarks Game);
//! * `chameneos` — creatures meet pairwise at a broker and swap colours, nc
//!   meetings in total (Computer Language Benchmarks Game).
//!
//! Every benchmark is implemented for the SCOOP/Qs runtime and for the
//! shared-memory, channel, STM and actor baselines, and every run verifies
//! its functional outcome (counts, conservation laws) before reporting time.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use qs_baselines::actor::{call_actor, spawn_actor, ActorExit, ActorRef};
use qs_baselines::stm::{atomically, retry, TVar};
use qs_baselines::Paradigm;
use qs_runtime::{Handler, OptimizationLevel, Runtime};

/// Parameters of the concurrent benchmarks (§4.1.2: n = 32, m = 20 000,
/// nt = 600 000, nc = 5 000 000 in the paper; scaled-down presets provided).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcurrentParams {
    /// Number of competing threads (per role where applicable).
    pub n: usize,
    /// Iterations per thread (mutex/prodcons/condition).
    pub m: usize,
    /// Number of token passes (threadring).
    pub nt: usize,
    /// Ring size (threadring participants).
    pub ring: usize,
    /// Number of meetings (chameneos).
    pub nc: usize,
}

impl ConcurrentParams {
    /// Tiny preset for unit tests.
    pub fn tiny() -> Self {
        ConcurrentParams {
            n: 4,
            m: 50,
            nt: 200,
            ring: 8,
            nc: 100,
        }
    }

    /// Benchmark preset (scaled from the paper so a laptop finishes quickly).
    pub fn bench() -> Self {
        ConcurrentParams {
            n: 8,
            m: 2_000,
            nt: 20_000,
            ring: 64,
            nc: 20_000,
        }
    }

    /// The paper's full parameters (n = 32, m = 20 000, nt = 600 000,
    /// nc = 5 000 000; ring size follows the benchmarks-game convention).
    pub fn paper() -> Self {
        ConcurrentParams {
            n: 32,
            m: 20_000,
            nt: 600_000,
            ring: 503,
            nc: 5_000_000,
        }
    }
}

/// The concurrent tasks, in the order the paper's tables list them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConcurrentTask {
    /// Colour-swapping meetings.
    Chameneos,
    /// Parity-alternating counter.
    Condition,
    /// Lock contention on a single counter.
    Mutex,
    /// Producers and consumers on a shared queue.
    Prodcons,
    /// Token passing around a ring.
    Threadring,
}

impl ConcurrentTask {
    /// All tasks in table order.
    pub const ALL: [ConcurrentTask; 5] = [
        ConcurrentTask::Chameneos,
        ConcurrentTask::Condition,
        ConcurrentTask::Mutex,
        ConcurrentTask::Prodcons,
        ConcurrentTask::Threadring,
    ];

    /// Lower-case name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ConcurrentTask::Chameneos => "chameneos",
            ConcurrentTask::Condition => "condition",
            ConcurrentTask::Mutex => "mutex",
            ConcurrentTask::Prodcons => "prodcons",
            ConcurrentTask::Threadring => "threadring",
        }
    }
}

impl std::fmt::Display for ConcurrentTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs one concurrent benchmark under one paradigm (SCOOP/Qs uses the fully
/// optimised runtime) and returns the elapsed wall-clock time.
pub fn run_concurrent(
    task: ConcurrentTask,
    paradigm: Paradigm,
    params: &ConcurrentParams,
) -> Duration {
    match paradigm {
        Paradigm::ScoopQs => run_concurrent_scoop(task, OptimizationLevel::All, params),
        _ => {
            let start = Instant::now();
            match (task, paradigm) {
                (ConcurrentTask::Mutex, Paradigm::Shared) => mutex_shared(params),
                (ConcurrentTask::Mutex, Paradigm::Channel) => mutex_channel(params),
                (ConcurrentTask::Mutex, Paradigm::Stm) => mutex_stm(params),
                (ConcurrentTask::Mutex, Paradigm::Actor) => mutex_actor(params),
                (ConcurrentTask::Prodcons, Paradigm::Shared) => prodcons_shared(params),
                (ConcurrentTask::Prodcons, Paradigm::Channel) => prodcons_channel(params),
                (ConcurrentTask::Prodcons, Paradigm::Stm) => prodcons_stm(params),
                (ConcurrentTask::Prodcons, Paradigm::Actor) => prodcons_actor(params),
                (ConcurrentTask::Condition, Paradigm::Shared) => condition_shared(params),
                (ConcurrentTask::Condition, Paradigm::Channel) => condition_channel(params),
                (ConcurrentTask::Condition, Paradigm::Stm) => condition_stm(params),
                (ConcurrentTask::Condition, Paradigm::Actor) => condition_actor(params),
                (ConcurrentTask::Threadring, Paradigm::Shared) => threadring_shared(params),
                (ConcurrentTask::Threadring, Paradigm::Channel) => threadring_channel(params),
                (ConcurrentTask::Threadring, Paradigm::Stm) => threadring_stm(params),
                (ConcurrentTask::Threadring, Paradigm::Actor) => threadring_actor(params),
                (ConcurrentTask::Chameneos, Paradigm::Shared) => chameneos_shared(params),
                (ConcurrentTask::Chameneos, Paradigm::Channel) => chameneos_channel(params),
                (ConcurrentTask::Chameneos, Paradigm::Stm) => chameneos_stm(params),
                (ConcurrentTask::Chameneos, Paradigm::Actor) => chameneos_actor(params),
                (_, Paradigm::ScoopQs) => unreachable!("handled above"),
            }
            start.elapsed()
        }
    }
}

/// Runs one concurrent benchmark on the SCOOP/Qs runtime under a specific
/// optimisation level (the §4.3 study, Table 2 / Fig. 17).
pub fn run_concurrent_scoop(
    task: ConcurrentTask,
    level: OptimizationLevel,
    params: &ConcurrentParams,
) -> Duration {
    let runtime = Runtime::with_level(level);
    let start = Instant::now();
    match task {
        ConcurrentTask::Mutex => mutex_scoop(&runtime, params),
        ConcurrentTask::Prodcons => prodcons_scoop(&runtime, params),
        ConcurrentTask::Condition => condition_scoop(&runtime, params),
        ConcurrentTask::Threadring => threadring_scoop(&runtime, params),
        ConcurrentTask::Chameneos => chameneos_scoop(&runtime, params),
    }
    start.elapsed()
}

// ---------------------------------------------------------------------------
// mutex
// ---------------------------------------------------------------------------

fn mutex_scoop(runtime: &Runtime, p: &ConcurrentParams) {
    let counter: Handler<u64> = runtime.spawn_handler(0);
    std::thread::scope(|scope| {
        for _ in 0..p.n {
            let counter = counter.clone();
            let m = p.m;
            scope.spawn(move || {
                for _ in 0..m {
                    counter.separate(|s| s.call(|c| *c += 1));
                }
            });
        }
    });
    let total = counter.query_detached(|c| *c);
    assert_eq!(total, (p.n * p.m) as u64, "scoop mutex lost increments");
}

fn mutex_shared(p: &ConcurrentParams) {
    let counter = Arc::new(Mutex::new(0u64));
    std::thread::scope(|scope| {
        for _ in 0..p.n {
            let counter = Arc::clone(&counter);
            scope.spawn(move || {
                for _ in 0..p.m {
                    *counter.lock() += 1;
                }
            });
        }
    });
    assert_eq!(*counter.lock(), (p.n * p.m) as u64);
}

fn mutex_channel(p: &ConcurrentParams) {
    // A counter "goroutine" owns the resource; competitors send increments.
    let (tx, rx) = unbounded::<()>();
    let owner = std::thread::spawn(move || rx.iter().count() as u64);
    std::thread::scope(|scope| {
        for _ in 0..p.n {
            let tx = tx.clone();
            scope.spawn(move || {
                for _ in 0..p.m {
                    tx.send(()).unwrap();
                }
            });
        }
    });
    drop(tx);
    assert_eq!(owner.join().unwrap(), (p.n * p.m) as u64);
}

fn mutex_stm(p: &ConcurrentParams) {
    let counter = TVar::new(0u64);
    std::thread::scope(|scope| {
        for _ in 0..p.n {
            let counter = counter.clone();
            scope.spawn(move || {
                for _ in 0..p.m {
                    atomically(|tx| tx.modify(&counter, |c| c + 1));
                }
            });
        }
    });
    assert_eq!(counter.read_atomic(), (p.n * p.m) as u64);
}

fn mutex_actor(p: &ConcurrentParams) {
    #[derive(Clone)]
    enum Msg {
        Add,
        Get(Sender<u64>),
    }
    let actor = spawn_actor(0u64, |state, msg: Msg| match msg {
        Msg::Add => {
            *state += 1;
            ActorExit::Continue
        }
        Msg::Get(reply) => {
            let _ = reply.send(*state);
            ActorExit::Continue
        }
    });
    std::thread::scope(|scope| {
        for _ in 0..p.n {
            let actor_ref = actor.reference();
            scope.spawn(move || {
                for _ in 0..p.m {
                    actor_ref.send_owned(Msg::Add);
                }
            });
        }
    });
    let total = call_actor(&actor.actor_ref, Msg::Get);
    assert_eq!(total, (p.n * p.m) as u64);
}

// ---------------------------------------------------------------------------
// prodcons
// ---------------------------------------------------------------------------

fn prodcons_scoop(runtime: &Runtime, p: &ConcurrentParams) {
    let queue: Handler<VecDeque<u64>> = runtime.spawn_handler(VecDeque::new());
    let consumed: u64 = std::thread::scope(|scope| {
        for producer in 0..p.n {
            let queue = queue.clone();
            let m = p.m;
            scope.spawn(move || {
                for i in 0..m {
                    let value = (producer * m + i) as u64;
                    queue.separate(|s| s.call(move |q| q.push_back(value)));
                }
            });
        }
        let consumers: Vec<_> = (0..p.n)
            .map(|_| {
                let queue = queue.clone();
                let m = p.m;
                scope.spawn(move || {
                    let mut sum = 0u64;
                    for _ in 0..m {
                        loop {
                            if let Some(v) = queue.separate(|s| s.query(|q| q.pop_front())) {
                                sum += v;
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                    sum
                })
            })
            .collect();
        consumers.into_iter().map(|c| c.join().unwrap()).sum()
    });
    let total_items = (p.n * p.m) as u64;
    assert_eq!(consumed, total_items * (total_items - 1) / 2);
}

fn prodcons_shared(p: &ConcurrentParams) {
    struct Shared {
        queue: Mutex<VecDeque<u64>>,
        available: Condvar,
    }
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
    });
    let consumed: u64 = std::thread::scope(|scope| {
        for producer in 0..p.n {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                for i in 0..p.m {
                    shared.queue.lock().push_back((producer * p.m + i) as u64);
                    shared.available.notify_one();
                }
            });
        }
        let consumers: Vec<_> = (0..p.n)
            .map(|_| {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    let mut sum = 0u64;
                    for _ in 0..p.m {
                        let mut queue = shared.queue.lock();
                        loop {
                            if let Some(v) = queue.pop_front() {
                                sum += v;
                                break;
                            }
                            shared.available.wait(&mut queue);
                        }
                    }
                    sum
                })
            })
            .collect();
        consumers.into_iter().map(|c| c.join().unwrap()).sum()
    });
    let total_items = (p.n * p.m) as u64;
    assert_eq!(consumed, total_items * (total_items - 1) / 2);
}

fn prodcons_channel(p: &ConcurrentParams) {
    let (tx, rx) = unbounded::<u64>();
    let consumed: u64 = std::thread::scope(|scope| {
        for producer in 0..p.n {
            let tx = tx.clone();
            scope.spawn(move || {
                for i in 0..p.m {
                    tx.send((producer * p.m + i) as u64).unwrap();
                }
            });
        }
        let consumers: Vec<_> = (0..p.n)
            .map(|_| {
                let rx = rx.clone();
                scope.spawn(move || (0..p.m).map(|_| rx.recv().unwrap()).sum::<u64>())
            })
            .collect();
        consumers.into_iter().map(|c| c.join().unwrap()).sum()
    });
    let total_items = (p.n * p.m) as u64;
    assert_eq!(consumed, total_items * (total_items - 1) / 2);
}

fn prodcons_stm(p: &ConcurrentParams) {
    let queue: TVar<VecDeque<u64>> = TVar::new(VecDeque::new());
    let consumed: u64 = std::thread::scope(|scope| {
        for producer in 0..p.n {
            let queue = queue.clone();
            scope.spawn(move || {
                for i in 0..p.m {
                    let value = (producer * p.m + i) as u64;
                    atomically(|tx| {
                        tx.modify(&queue, |mut q| {
                            q.push_back(value);
                            q
                        })
                    });
                }
            });
        }
        let consumers: Vec<_> = (0..p.n)
            .map(|_| {
                let queue = queue.clone();
                scope.spawn(move || {
                    let mut sum = 0u64;
                    for _ in 0..p.m {
                        sum += atomically(|tx| {
                            let mut q = tx.read(&queue)?;
                            match q.pop_front() {
                                Some(v) => {
                                    tx.write(&queue, q);
                                    Ok(v)
                                }
                                None => retry(),
                            }
                        });
                    }
                    sum
                })
            })
            .collect();
        consumers.into_iter().map(|c| c.join().unwrap()).sum()
    });
    let total_items = (p.n * p.m) as u64;
    assert_eq!(consumed, total_items * (total_items - 1) / 2);
}

fn prodcons_actor(p: &ConcurrentParams) {
    #[derive(Clone)]
    enum Msg {
        Push(u64),
        Pop(Sender<u64>),
    }
    struct State {
        items: VecDeque<u64>,
        waiting: VecDeque<Sender<u64>>,
    }
    let actor = spawn_actor(
        State {
            items: VecDeque::new(),
            waiting: VecDeque::new(),
        },
        |state, msg: Msg| {
            match msg {
                Msg::Push(value) => {
                    if let Some(waiter) = state.waiting.pop_front() {
                        let _ = waiter.send(value);
                    } else {
                        state.items.push_back(value);
                    }
                }
                Msg::Pop(reply) => {
                    if let Some(value) = state.items.pop_front() {
                        let _ = reply.send(value);
                    } else {
                        state.waiting.push_back(reply);
                    }
                }
            }
            ActorExit::Continue
        },
    );
    let consumed: u64 = std::thread::scope(|scope| {
        for producer in 0..p.n {
            let queue = actor.reference();
            scope.spawn(move || {
                for i in 0..p.m {
                    queue.send_owned(Msg::Push((producer * p.m + i) as u64));
                }
            });
        }
        let consumers: Vec<_> = (0..p.n)
            .map(|_| {
                let queue = actor.reference();
                scope.spawn(move || (0..p.m).map(|_| call_actor(&queue, Msg::Pop)).sum::<u64>())
            })
            .collect();
        consumers.into_iter().map(|c| c.join().unwrap()).sum()
    });
    let total_items = (p.n * p.m) as u64;
    assert_eq!(consumed, total_items * (total_items - 1) / 2);
}

// ---------------------------------------------------------------------------
// condition
// ---------------------------------------------------------------------------

/// Target counter value: each of the two parity groups contributes `m`
/// increments in strict alternation.
fn condition_target(p: &ConcurrentParams) -> u64 {
    (2 * p.m) as u64
}

fn condition_scoop(runtime: &Runtime, p: &ConcurrentParams) {
    let counter: Handler<u64> = runtime.spawn_handler(0);
    let target = condition_target(p);
    std::thread::scope(|scope| {
        for worker in 0..(2 * p.n) {
            let parity = (worker % 2) as u64;
            let counter = counter.clone();
            scope.spawn(move || loop {
                let state = counter.separate(|s| {
                    s.query(move |c| {
                        if *c >= target {
                            (*c, false)
                        } else if *c % 2 == parity {
                            *c += 1;
                            (*c, true)
                        } else {
                            (*c, false)
                        }
                    })
                });
                if state.0 >= target {
                    break;
                }
                if !state.1 {
                    std::thread::yield_now();
                }
            });
        }
    });
    assert_eq!(counter.query_detached(|c| *c), target);
}

fn condition_shared(p: &ConcurrentParams) {
    let target = condition_target(p);
    let counter = qs_baselines::SharedCounter::new(0);
    std::thread::scope(|scope| {
        for worker in 0..(2 * p.n) {
            let parity = (worker % 2) as u64;
            let counter = Arc::clone(&counter);
            scope.spawn(move || loop {
                let value = counter.wait_and_update(
                    |v| v >= target || v % 2 == parity,
                    |v| {
                        if v >= target {
                            v
                        } else {
                            v + 1
                        }
                    },
                );
                if value >= target {
                    break;
                }
            });
        }
    });
    assert_eq!(counter.get(), target);
}

fn condition_channel(p: &ConcurrentParams) {
    let target = condition_target(p);
    let (even_tx, even_rx) = unbounded::<u64>();
    let (odd_tx, odd_rx) = unbounded::<u64>();
    even_tx.send(0).unwrap();
    std::thread::scope(|scope| {
        for worker in 0..(2 * p.n) {
            let parity = worker % 2;
            let (my_rx, other_tx, my_tx) = if parity == 0 {
                (even_rx.clone(), odd_tx.clone(), even_tx.clone())
            } else {
                (odd_rx.clone(), even_tx.clone(), odd_tx.clone())
            };
            scope.spawn(move || loop {
                let value = my_rx.recv().unwrap();
                if value >= target {
                    // Propagate termination to both groups and exit.
                    let _ = my_tx.send(value);
                    let _ = other_tx.send(value);
                    break;
                }
                other_tx.send(value + 1).unwrap();
            });
        }
    });
}

fn condition_stm(p: &ConcurrentParams) {
    let target = condition_target(p);
    let counter = TVar::new(0u64);
    std::thread::scope(|scope| {
        for worker in 0..(2 * p.n) {
            let parity = (worker % 2) as u64;
            let counter = counter.clone();
            scope.spawn(move || loop {
                let done = atomically(|tx| {
                    let value = tx.read(&counter)?;
                    if value >= target {
                        Ok(true)
                    } else if value % 2 == parity {
                        tx.write(&counter, value + 1);
                        Ok(false)
                    } else {
                        retry()
                    }
                });
                if done {
                    break;
                }
            });
        }
    });
    assert_eq!(counter.read_atomic(), target);
}

fn condition_actor(p: &ConcurrentParams) {
    let target = condition_target(p);
    #[derive(Clone)]
    struct TryIncrement {
        parity: u64,
        reply: Sender<(u64, bool)>,
    }
    let coordinator = spawn_actor(0u64, move |count, msg: TryIncrement| {
        let incremented = *count < target && *count % 2 == msg.parity;
        if incremented {
            *count += 1;
        }
        let _ = msg.reply.send((*count, incremented));
        ActorExit::Continue
    });
    std::thread::scope(|scope| {
        for worker in 0..(2 * p.n) {
            let parity = (worker % 2) as u64;
            let broker = coordinator.reference();
            scope.spawn(move || loop {
                let (value, incremented) =
                    call_actor(&broker, |reply| TryIncrement { parity, reply });
                if value >= target {
                    break;
                }
                if !incremented {
                    std::thread::yield_now();
                }
            });
        }
    });
    let (value, _) = call_actor(&coordinator.actor_ref, |reply| TryIncrement {
        parity: 2, // never matches: pure read
        reply,
    });
    assert_eq!(value, target);
}

// ---------------------------------------------------------------------------
// threadring
// ---------------------------------------------------------------------------

fn threadring_scoop(runtime: &Runtime, p: &ConcurrentParams) {
    struct Node {
        next: Option<Handler<Node>>,
        finished: Option<Arc<qs_sync::Event>>,
        last_seen: u64,
    }
    let finished = Arc::new(qs_sync::Event::new());
    let nodes: Vec<Handler<Node>> = (0..p.ring)
        .map(|_| {
            runtime.spawn_handler(Node {
                next: None,
                finished: Some(Arc::clone(&finished)),
                last_seen: u64::MAX,
            })
        })
        .collect();
    // Wire the ring.
    for (i, node) in nodes.iter().enumerate() {
        let next = nodes[(i + 1) % p.ring].clone();
        node.separate(|s| s.call(move |n| n.next = Some(next)));
    }
    // Passing the token: each handler, upon receiving `pass(k)`, forwards
    // `k - 1` to its successor or signals completion at zero.
    fn pass(node: &Handler<Node>, k: u64) {
        node.separate(|s| {
            s.call(move |n| {
                n.last_seen = k;
                if k == 0 {
                    if let Some(event) = &n.finished {
                        event.set();
                    }
                } else {
                    let next = n.next.clone().expect("ring is wired");
                    pass(&next, k - 1);
                }
            });
        });
    }
    pass(&nodes[0], p.nt as u64);
    finished.wait();
    for node in &nodes {
        node.stop();
    }
}

fn threadring_shared(p: &ConcurrentParams) {
    struct Slot {
        token: Mutex<Option<u64>>,
        arrived: Condvar,
    }
    let slots: Vec<Arc<Slot>> = (0..p.ring)
        .map(|_| {
            Arc::new(Slot {
                token: Mutex::new(None),
                arrived: Condvar::new(),
            })
        })
        .collect();
    *slots[0].token.lock() = Some(p.nt as u64);
    slots[0].arrived.notify_one();
    std::thread::scope(|scope| {
        for i in 0..p.ring {
            let mine = Arc::clone(&slots[i]);
            let next = Arc::clone(&slots[(i + 1) % p.ring]);
            scope.spawn(move || loop {
                let token = {
                    let mut slot = mine.token.lock();
                    loop {
                        if let Some(token) = slot.take() {
                            break token;
                        }
                        mine.arrived.wait(&mut slot);
                    }
                };
                if token == 0 {
                    // Propagate the stop token around the ring once.
                    *next.token.lock() = Some(0);
                    next.arrived.notify_one();
                    break;
                }
                *next.token.lock() = Some(token - 1);
                next.arrived.notify_one();
            });
        }
        // The zero token circulates once to stop everyone; the spawner scope
        // joins all participants.
    });
}

fn threadring_channel(p: &ConcurrentParams) {
    let channels: Vec<(Sender<u64>, crossbeam::channel::Receiver<u64>)> =
        (0..p.ring).map(|_| unbounded()).collect();
    channels[0].0.send(p.nt as u64).unwrap();
    std::thread::scope(|scope| {
        for i in 0..p.ring {
            let rx = channels[i].1.clone();
            let tx = channels[(i + 1) % p.ring].0.clone();
            scope.spawn(move || loop {
                let token = rx.recv().unwrap();
                if token == 0 {
                    let _ = tx.send(0);
                    break;
                }
                tx.send(token - 1).unwrap();
            });
        }
    });
}

fn threadring_stm(p: &ConcurrentParams) {
    let slots: Vec<TVar<Option<u64>>> = (0..p.ring).map(|_| TVar::new(None)).collect();
    slots[0].write_atomic(Some(p.nt as u64));
    std::thread::scope(|scope| {
        for i in 0..p.ring {
            let mine = slots[i].clone();
            let next = slots[(i + 1) % p.ring].clone();
            scope.spawn(move || loop {
                let token = atomically(|tx| match tx.read(&mine)? {
                    Some(token) => {
                        tx.write(&mine, None);
                        Ok(token)
                    }
                    None => retry(),
                });
                if token == 0 {
                    atomically(|tx| {
                        tx.write(&next, Some(0));
                        Ok(())
                    });
                    break;
                }
                atomically(|tx| {
                    tx.write(&next, Some(token - 1));
                    Ok(())
                });
            });
        }
    });
}

fn threadring_actor(p: &ConcurrentParams) {
    let (done_tx, done_rx) = unbounded::<()>();
    // Each actor looks up its successor in a slot that is wired after all
    // actors exist, closing the ring.
    let next_slots: Vec<Arc<Mutex<Option<ActorRef<u64>>>>> =
        (0..p.ring).map(|_| Arc::new(Mutex::new(None))).collect();
    let actors: Vec<_> = (0..p.ring)
        .map(|i| {
            let next = Arc::clone(&next_slots[i]);
            let done_tx = done_tx.clone();
            spawn_actor((), move |_, token: u64| {
                if token == 0 {
                    let _ = done_tx.send(());
                    ActorExit::Stop
                } else {
                    let next = next.lock().clone().expect("ring wired before kick-off");
                    next.send_owned(token - 1);
                    ActorExit::Continue
                }
            })
        })
        .collect();
    for (i, slot) in next_slots.iter().enumerate() {
        *slot.lock() = Some(actors[(i + 1) % p.ring].reference());
    }
    actors[0].reference().send_owned(p.nt as u64);
    done_rx.recv().unwrap();
    // Shut the remaining actors down and join them.
    for actor in &actors {
        actor.reference().send_owned(0);
    }
    for actor in actors {
        actor.join();
    }
}

// ---------------------------------------------------------------------------
// chameneos
// ---------------------------------------------------------------------------

/// Chameneos colours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Colour {
    Blue,
    Red,
    Yellow,
}

/// The benchmarks-game complement rule.
fn complement(a: Colour, b: Colour) -> Colour {
    use Colour::*;
    if a == b {
        return a;
    }
    match (a, b) {
        (Blue, Red) | (Red, Blue) => Yellow,
        (Blue, Yellow) | (Yellow, Blue) => Red,
        (Red, Yellow) | (Yellow, Red) => Blue,
        _ => a,
    }
}

const CREATURES: [Colour; 4] = [Colour::Blue, Colour::Red, Colour::Yellow, Colour::Blue];

/// Outcome of asking the broker for a meeting.
enum MeetOutcome {
    /// Meetings exhausted.
    Finished,
    /// Paired immediately with a creature of the given colour.
    Paired(Colour),
    /// First at the meeting place; poll for the partner's colour.
    Wait,
}

/// Broker state shared by the shared/STM/SCOOP variants.
struct Broker {
    remaining: usize,
    waiting: Option<(usize, Colour)>,
    /// Mailbox for the first creature of a pair: partner colour by creature id.
    mailbox: Vec<Option<Colour>>,
    total_meetings: usize,
}

impl Broker {
    fn new(nc: usize, creatures: usize) -> Self {
        Broker {
            remaining: nc,
            waiting: None,
            mailbox: vec![None; creatures],
            total_meetings: 0,
        }
    }

    fn meet(&mut self, id: usize, colour: Colour) -> MeetOutcome {
        if self.remaining == 0 {
            return MeetOutcome::Finished;
        }
        match self.waiting.take() {
            None => {
                self.waiting = Some((id, colour));
                MeetOutcome::Wait
            }
            Some((other_id, other_colour)) => {
                self.remaining -= 1;
                self.total_meetings += 1;
                self.mailbox[other_id] = Some(colour);
                MeetOutcome::Paired(other_colour)
            }
        }
    }

    fn collect(&mut self, id: usize) -> Option<Colour> {
        self.mailbox[id].take()
    }
}

fn chameneos_scoop(runtime: &Runtime, p: &ConcurrentParams) {
    let broker: Handler<Broker> = runtime.spawn_handler(Broker::new(p.nc, CREATURES.len()));
    let meetings: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = CREATURES
            .iter()
            .enumerate()
            .map(|(id, &initial)| {
                let broker = broker.clone();
                scope.spawn(move || {
                    let mut colour = initial;
                    let mut meetings = 0usize;
                    loop {
                        let outcome = broker.separate(|s| s.query(move |b| b.meet(id, colour)));
                        match outcome {
                            MeetOutcome::Finished => break,
                            MeetOutcome::Paired(other) => {
                                colour = complement(colour, other);
                                meetings += 1;
                            }
                            MeetOutcome::Wait => {
                                let other = loop {
                                    if let Some(other) =
                                        broker.separate(|s| s.query(move |b| b.collect(id)))
                                    {
                                        break other;
                                    }
                                    std::thread::yield_now();
                                };
                                colour = complement(colour, other);
                                meetings += 1;
                            }
                        }
                    }
                    meetings
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(meetings, 2 * p.nc, "every meeting involves two creatures");
    let brokered = broker.query_detached(|b| b.total_meetings);
    assert_eq!(brokered, p.nc);
}

fn chameneos_shared(p: &ConcurrentParams) {
    let broker = Arc::new(Mutex::new(Broker::new(p.nc, CREATURES.len())));
    let meetings: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = CREATURES
            .iter()
            .enumerate()
            .map(|(id, &initial)| {
                let broker = Arc::clone(&broker);
                scope.spawn(move || {
                    let mut colour = initial;
                    let mut meetings = 0usize;
                    loop {
                        let outcome = broker.lock().meet(id, colour);
                        match outcome {
                            MeetOutcome::Finished => break,
                            MeetOutcome::Paired(other) => {
                                colour = complement(colour, other);
                                meetings += 1;
                            }
                            MeetOutcome::Wait => {
                                let other = loop {
                                    if let Some(other) = broker.lock().collect(id) {
                                        break other;
                                    }
                                    std::thread::yield_now();
                                };
                                colour = complement(colour, other);
                                meetings += 1;
                            }
                        }
                    }
                    meetings
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(meetings, 2 * p.nc);
}

fn chameneos_stm(p: &ConcurrentParams) {
    let remaining = TVar::new(p.nc);
    let waiting: TVar<Option<(usize, Colour)>> = TVar::new(None);
    let mailbox: Vec<TVar<Option<Colour>>> = CREATURES.iter().map(|_| TVar::new(None)).collect();
    let meetings: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = CREATURES
            .iter()
            .enumerate()
            .map(|(id, &initial)| {
                let remaining = remaining.clone();
                let waiting = waiting.clone();
                let mailbox = mailbox.clone();
                scope.spawn(move || {
                    let mut colour = initial;
                    let mut meetings = 0usize;
                    loop {
                        #[derive(Clone, Copy)]
                        enum Outcome {
                            Finished,
                            Paired(Colour),
                            Wait,
                        }
                        let outcome = atomically(|tx| {
                            let left = tx.read(&remaining)?;
                            if left == 0 {
                                return Ok(Outcome::Finished);
                            }
                            match tx.read(&waiting)? {
                                None => {
                                    tx.write(&waiting, Some((id, colour)));
                                    Ok(Outcome::Wait)
                                }
                                Some((other_id, other_colour)) => {
                                    tx.write(&waiting, None);
                                    tx.write(&remaining, left - 1);
                                    tx.write(&mailbox[other_id], Some(colour));
                                    Ok(Outcome::Paired(other_colour))
                                }
                            }
                        });
                        match outcome {
                            Outcome::Finished => break,
                            Outcome::Paired(other) => {
                                colour = complement(colour, other);
                                meetings += 1;
                            }
                            Outcome::Wait => {
                                let other = atomically(|tx| match tx.read(&mailbox[id])? {
                                    Some(other) => {
                                        tx.write(&mailbox[id], None);
                                        Ok(other)
                                    }
                                    None => retry(),
                                });
                                colour = complement(colour, other);
                                meetings += 1;
                            }
                        }
                    }
                    meetings
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(meetings, 2 * p.nc);
}

fn chameneos_channel(p: &ConcurrentParams) {
    #[allow(clippy::type_complexity)]
    let (meet_tx, meet_rx) = unbounded::<(Colour, Sender<Option<Colour>>)>();
    let nc = p.nc;
    let broker = std::thread::spawn(move || {
        let mut remaining = nc;
        let mut waiting: Option<(Colour, Sender<Option<Colour>>)> = None;
        while let Ok((colour, reply)) = meet_rx.recv() {
            if remaining == 0 {
                let _ = reply.send(None);
                continue;
            }
            match waiting.take() {
                None => waiting = Some((colour, reply)),
                Some((other_colour, other_reply)) => {
                    remaining -= 1;
                    let _ = other_reply.send(Some(colour));
                    let _ = reply.send(Some(other_colour));
                }
            }
        }
        remaining
    });
    let meetings: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = CREATURES
            .iter()
            .map(|&initial| {
                let meet_tx = meet_tx.clone();
                scope.spawn(move || {
                    let mut colour = initial;
                    let mut meetings = 0usize;
                    loop {
                        let (reply_tx, reply_rx) = unbounded();
                        meet_tx.send((colour, reply_tx)).unwrap();
                        match reply_rx.recv().unwrap() {
                            None => break,
                            Some(other) => {
                                colour = complement(colour, other);
                                meetings += 1;
                            }
                        }
                    }
                    meetings
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    drop(meet_tx);
    assert_eq!(meetings, 2 * p.nc);
    assert_eq!(broker.join().unwrap(), 0);
}

fn chameneos_actor(p: &ConcurrentParams) {
    #[derive(Clone)]
    struct Meet {
        colour: Colour,
        reply: Sender<Option<Colour>>,
    }
    struct BrokerState {
        remaining: usize,
        waiting: Option<(Colour, Sender<Option<Colour>>)>,
    }
    let broker = spawn_actor(
        BrokerState {
            remaining: p.nc,
            waiting: None,
        },
        |state, msg: Meet| {
            if state.remaining == 0 {
                let _ = msg.reply.send(None);
                return ActorExit::Continue;
            }
            match state.waiting.take() {
                None => state.waiting = Some((msg.colour, msg.reply)),
                Some((other_colour, other_reply)) => {
                    state.remaining -= 1;
                    let _ = other_reply.send(Some(msg.colour));
                    let _ = msg.reply.send(Some(other_colour));
                }
            }
            ActorExit::Continue
        },
    );
    let meetings: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = CREATURES
            .iter()
            .map(|&initial| {
                let broker = broker.reference();
                scope.spawn(move || {
                    let mut colour = initial;
                    let mut meetings = 0usize;
                    loop {
                        let response: Option<Colour> =
                            call_actor(&broker, |reply| Meet { colour, reply });
                        match response {
                            None => break,
                            Some(other) => {
                                colour = complement(colour, other);
                                meetings += 1;
                            }
                        }
                    }
                    meetings
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(meetings, 2 * p.nc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_follows_the_game_rules() {
        assert_eq!(complement(Colour::Blue, Colour::Blue), Colour::Blue);
        assert_eq!(complement(Colour::Blue, Colour::Red), Colour::Yellow);
        assert_eq!(complement(Colour::Yellow, Colour::Red), Colour::Blue);
    }

    #[test]
    fn every_task_runs_under_every_paradigm() {
        let params = ConcurrentParams::tiny();
        for task in ConcurrentTask::ALL {
            for paradigm in Paradigm::ALL {
                let elapsed = run_concurrent(task, paradigm, &params);
                assert!(elapsed > Duration::ZERO, "{task} under {paradigm}");
            }
        }
    }

    #[test]
    fn scoop_levels_run_the_coordination_tasks() {
        let params = ConcurrentParams::tiny();
        for level in [OptimizationLevel::None, OptimizationLevel::All] {
            for task in ConcurrentTask::ALL {
                run_concurrent_scoop(task, level, &params);
            }
        }
    }

    #[test]
    fn params_presets_scale() {
        assert!(ConcurrentParams::tiny().nc < ConcurrentParams::bench().nc);
        assert!(ConcurrentParams::bench().nc < ConcurrentParams::paper().nc);
        assert_eq!(ConcurrentTask::Mutex.to_string(), "mutex");
    }
}
