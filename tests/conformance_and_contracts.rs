//! Cross-crate integration tests: the real runtime's observed behaviour is
//! checked against the operational-semantics conformance checker
//! (`qs_semantics::refine`), and the contract layer (wait conditions,
//! postconditions) is exercised under every optimisation level.

use std::collections::BTreeMap;

use scoop_qs::prelude::*;
use scoop_qs::runtime::WaitConfig;
use scoop_qs::semantics::{check_handler_log, uniform_expectation, AppliedCall};

/// Handler-owned object that records every applied call, so the application
/// order can be checked against the §2.2 guarantees afterwards.
#[derive(Default)]
struct RecordingObject {
    log: Vec<AppliedCall>,
}

fn all_levels() -> [OptimizationLevel; 5] {
    [
        OptimizationLevel::None,
        OptimizationLevel::Dynamic,
        OptimizationLevel::Static,
        OptimizationLevel::QoQ,
        OptimizationLevel::All,
    ]
}

#[test]
fn runtime_execution_conforms_to_the_semantics_on_every_level() {
    const CLIENTS: u64 = 4;
    const BLOCKS: u64 = 8;
    const CALLS: u64 = 25;

    for level in all_levels() {
        let rt = Runtime::new(level.config());
        let handler = rt.spawn_handler(RecordingObject::default());

        std::thread::scope(|scope| {
            for client in 0..CLIENTS {
                let handler = handler.clone();
                scope.spawn(move || {
                    for block in 0..BLOCKS {
                        handler.separate(|s| {
                            for seq in 0..CALLS {
                                s.call(move |obj| {
                                    obj.log.push(AppliedCall::new(client, block, seq))
                                });
                            }
                            // Mix in queries so the sync machinery is active
                            // while the conformance-relevant calls flow.
                            let seen = s.query(|obj| obj.log.len());
                            assert!(seen >= CALLS as usize);
                        });
                    }
                });
            }
        });

        let object = handler.shutdown_and_take().expect("sole owner");
        assert_eq!(object.log.len(), (CLIENTS * BLOCKS * CALLS) as usize);
        let expected = uniform_expectation(CLIENTS, BLOCKS, CALLS);
        let report = check_handler_log(&object.log, Some(&expected));
        assert!(
            report.conforms(),
            "level {level}: runtime violated the reasoning guarantees: {:?}",
            report.violations
        );
    }
}

#[test]
fn multi_reservation_blocks_conform_too() {
    const CLIENTS: u64 = 3;
    const BLOCKS: u64 = 6;
    const CALLS: u64 = 10;

    for level in [OptimizationLevel::All, OptimizationLevel::None] {
        let rt = Runtime::new(level.config());
        let x = rt.spawn_handler(RecordingObject::default());
        let y = rt.spawn_handler(RecordingObject::default());

        std::thread::scope(|scope| {
            for client in 0..CLIENTS {
                let x = x.clone();
                let y = y.clone();
                scope.spawn(move || {
                    for block in 0..BLOCKS {
                        reserve((&x, &y)).run(|(sx, sy)| {
                            for seq in 0..CALLS {
                                sx.call(move |obj| {
                                    obj.log.push(AppliedCall::new(client, block, seq))
                                });
                                sy.call(move |obj| {
                                    obj.log.push(AppliedCall::new(client, block, seq))
                                });
                            }
                        });
                    }
                });
            }
        });

        let expected = uniform_expectation(CLIENTS, BLOCKS, CALLS);
        for handler in [x, y] {
            let object = handler.shutdown_and_take().expect("sole owner");
            let report = check_handler_log(&object.log, Some(&expected));
            assert!(
                report.conforms(),
                "level {level}: multi-reservation violated guarantees: {:?}",
                report.violations
            );
        }
    }
}

#[test]
fn bounded_buffer_with_wait_conditions_works_on_every_level() {
    #[derive(Default)]
    struct Buffer {
        items: Vec<u64>,
    }
    const CAPACITY: usize = 8;
    const ITEMS: u64 = 300;

    for level in all_levels() {
        let rt = Runtime::new(level.config());
        let buffer = rt.spawn_handler(Buffer::default());

        let producer = {
            let buffer = buffer.clone();
            std::thread::spawn(move || {
                for i in 0..ITEMS {
                    reserve(&buffer)
                        .when(|b: &Buffer| b.items.len() < CAPACITY)
                        .run(|guard| guard.call(move |b| b.items.push(i)));
                }
            })
        };
        let consumer = {
            let buffer = buffer.clone();
            std::thread::spawn(move || {
                let mut received = Vec::new();
                while received.len() < ITEMS as usize {
                    let batch = reserve(&buffer)
                        .when(|b: &Buffer| !b.items.is_empty())
                        .run(|guard| guard.query(|b| std::mem::take(&mut b.items)));
                    received.extend(batch);
                }
                received
            })
        };

        producer.join().unwrap();
        let received = consumer.join().unwrap();
        assert_eq!(received, (0..ITEMS).collect::<Vec<_>>(), "level {level}");
        // The buffer really was bounded: at no point could more than CAPACITY
        // items be present, so the final object is empty and nothing was lost.
        assert!(buffer.query_detached(|b| b.items.is_empty()));
    }
}

#[test]
fn wait_condition_timeouts_do_not_disturb_other_clients() {
    let rt = Runtime::fully_optimized();
    let cell = rt.spawn_handler(0u64);

    // A client waits for a condition that never becomes true, with a bounded
    // retry budget, while other clients keep using the handler normally.
    let waiter = {
        let cell = cell.clone();
        std::thread::spawn(move || {
            reserve(&cell)
                .when(|n: &u64| *n > 1_000_000)
                .timeout(WaitConfig::bounded(50))
                .try_run(|g| g.query(|n| *n))
        })
    };
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let cell = cell.clone();
            std::thread::spawn(move || {
                for _ in 0..500 {
                    cell.call_detached(|n| *n += 1);
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }
    assert!(
        waiter.join().unwrap().is_err(),
        "the unreachable condition must time out"
    );
    assert_eq!(cell.query_detached(|n| *n), 2_000);
}

#[test]
fn postconditions_observe_exactly_this_blocks_effects() {
    use scoop_qs::runtime::check_postcondition;

    let rt = Runtime::fully_optimized();
    let account = rt.spawn_handler(0i64);

    // Many clients deposit concurrently; each checks a postcondition that is
    // stable under other clients' deposits (monotonicity), which must
    // therefore always hold.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let account = account.clone();
            scope.spawn(move || {
                for _ in 0..200 {
                    account.separate(|s| {
                        let before = s.query(|b| *b);
                        s.call(|b| *b += 5);
                        assert!(check_postcondition(s, move |b| *b >= before + 5));
                    });
                }
            });
        }
    });
    assert_eq!(account.query_detached(|b| *b), 4 * 200 * 5);
    let snap = rt.stats_snapshot();
    assert_eq!(snap.postcondition_checks, 4 * 200);
    assert_eq!(snap.postcondition_failures, 0);
}

#[test]
fn expected_call_counts_catch_lost_work() {
    // Negative control for the conformance checker itself: deliberately drop
    // a call from the expectation and make sure the checker notices.
    let mut expected: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    expected.insert((0, 0), 3);
    let log = vec![AppliedCall::new(0, 0, 0), AppliedCall::new(0, 0, 1)];
    let report = check_handler_log(&log, Some(&expected));
    assert!(!report.conforms());
}
