//! Cross-configuration stress/soak suite: N clients × M handlers hammering
//! logs and queries across every `OptimizationLevel`, with deliberately tiny
//! mailbox capacities (1, 2, 7) so the backpressure path is exercised
//! constantly, plus the unbounded configuration as the stall-free control.
//!
//! Each round asserts the full set of accounting invariants:
//!
//! * nothing is lost: the handlers' final state reflects every logged call;
//! * enqueued == executed: every call and handler-executed/pipelined query
//!   that entered a mailbox was applied exactly once;
//! * no stall is counted without a bounded mailbox;
//! * batch draining actually happens (nonzero `batches_drained`);
//! * shutdown is clean: every handler drains and hands its object back.

use scoop_qs::prelude::*;

/// One stress round: `clients` threads × `handler_count` handlers, each
/// client running `blocks` separate blocks of `calls_per_block` calls plus a
/// query mix, on a fresh runtime configured with `capacity`.
fn stress_round(
    level: OptimizationLevel,
    capacity: Option<usize>,
    clients: usize,
    handler_count: usize,
    blocks: usize,
    calls_per_block: usize,
) {
    let config = level.config().with_mailbox_capacity(capacity);
    let rt = Runtime::new(config);
    let handlers: Vec<Handler<u64>> = (0..handler_count).map(|_| rt.spawn_handler(0u64)).collect();

    std::thread::scope(|scope| {
        for client in 0..clients {
            let handlers = handlers.clone();
            scope.spawn(move || {
                for block in 0..blocks {
                    let handler = &handlers[(client + block) % handlers.len()];
                    let label = format!("{level}/cap {capacity:?}");
                    handler.separate(|s| {
                        for _ in 0..calls_per_block {
                            s.call(|n| *n += 1);
                        }
                        // A pipelined query in flight while further calls are
                        // logged, then a synchronous query: both must observe
                        // a prefix-consistent counter.
                        let early = s.query_async(|n| *n);
                        s.call(|n| *n += 1);
                        let late = s.query(|n| *n);
                        let early = early.wait();
                        assert!(
                            early < late,
                            "{label}: pipelined query saw {early}, later sync query saw {late}"
                        );
                    });
                }
            });
        }
    });

    // Clean shutdown: every handler drains its remaining work and returns
    // its object.
    let total: u64 = handlers
        .into_iter()
        .map(|h| h.shutdown_and_take().expect("object taken exactly once"))
        .sum();
    let expected_calls = (clients * blocks * (calls_per_block + 1)) as u64;
    let context = format!("{level} with capacity {capacity:?}");
    assert_eq!(total, expected_calls, "{context}: calls lost or duplicated");

    let snap = rt.stats_snapshot();
    assert_eq!(snap.calls_enqueued, expected_calls, "{context}");
    // Every request that entered a mailbox was applied exactly once.
    assert_eq!(
        snap.requests_executed,
        snap.calls_enqueued + snap.queries_handler_executed + snap.queries_pipelined,
        "{context}: enqueued != executed"
    );
    assert_eq!(
        snap.queries_pipelined,
        (clients * blocks) as u64,
        "{context}"
    );
    assert!(snap.batches_drained > 0, "{context}: no batches drained");
    assert_eq!(
        snap.batch_requests_drained,
        snap.requests_executed + snap.syncs_performed,
        "{context}: drained requests must be exactly the executed ones plus sync tokens"
    );
    if capacity.is_none() {
        assert_eq!(
            snap.backpressure_stalls, 0,
            "{context}: an unbounded mailbox must never stall"
        );
    }
}

/// Every optimisation level must survive the tiniest possible mailbox: with
/// capacity 1 every second enqueue stalls, so this is the maximal-contention
/// backpressure configuration.
#[test]
fn all_levels_survive_mailbox_capacity_one() {
    for level in OptimizationLevel::ALL {
        stress_round(level, Some(1), 4, 2, 6, 20);
    }
}

/// Small odd capacities exercise ring wrap-around (7) and the two-entry
/// boundary (2) across every level.
#[test]
fn all_levels_survive_tiny_capacities() {
    for level in OptimizationLevel::ALL {
        for capacity in [2, 7] {
            stress_round(level, Some(capacity), 4, 2, 6, 20);
        }
    }
}

/// The unbounded control: identical workload, and the invariant that no
/// backpressure stall is ever counted without a bound.
#[test]
fn all_levels_unbounded_control_never_stalls() {
    for level in OptimizationLevel::ALL {
        stress_round(level, None, 4, 2, 6, 20);
    }
}

/// A bounded run whose clients deliberately outrun the handler must record
/// backpressure stalls (the complement of the unbounded control above).
#[test]
fn capacity_one_fan_in_records_stalls() {
    let rt = Runtime::new(
        OptimizationLevel::All
            .config()
            .with_mailbox_capacity(Some(1)),
    );
    let handler = rt.spawn_handler(0u64);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let handler = handler.clone();
            scope.spawn(move || {
                handler.separate(|s| {
                    for _ in 0..500 {
                        s.call(|n| *n += 1);
                    }
                });
            });
        }
    });
    assert_eq!(handler.shutdown_and_take(), Some(1_000));
    let snap = rt.stats_snapshot();
    assert!(
        snap.backpressure_stalls > 0,
        "two clients bursting 500 calls into capacity-1 mailboxes must stall"
    );
}

/// Release-mode soak of the queue-of-queues configurations (QoQ and All),
/// sized for the CI stress job.  Run with `--include-ignored`.
#[test]
#[ignore = "soak test; run in release mode via the CI stress job"]
fn soak_queue_of_queues_configurations() {
    for level in [OptimizationLevel::QoQ, OptimizationLevel::All] {
        for capacity in [Some(1), Some(7), Some(64), None] {
            stress_round(level, capacity, 8, 4, 100, 500);
        }
    }
}

/// Release-mode soak of the lock-based configurations (None, Dynamic,
/// Static).  Run with `--include-ignored`.
#[test]
#[ignore = "soak test; run in release mode via the CI stress job"]
fn soak_lock_based_configurations() {
    for level in [
        OptimizationLevel::None,
        OptimizationLevel::Dynamic,
        OptimizationLevel::Static,
    ] {
        for capacity in [Some(1), Some(7), Some(64), None] {
            stress_round(level, capacity, 8, 4, 100, 250);
        }
    }
}
