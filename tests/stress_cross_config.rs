//! Cross-configuration stress/soak suite: N clients × M handlers hammering
//! logs and queries across every `OptimizationLevel`, with deliberately tiny
//! mailbox capacities (1, 2, 7) so the backpressure path is exercised
//! constantly, plus the unbounded configuration as the stall-free control,
//! and both handler scheduling modes (dedicated threads and the M:N pool).
//!
//! Each round asserts the full set of accounting invariants:
//!
//! * nothing is lost: the handlers' final state reflects every logged call;
//! * enqueued == executed: every call and handler-executed/pipelined query
//!   that entered a mailbox was applied exactly once;
//! * no stall is counted without a bounded mailbox;
//! * batch draining actually happens (nonzero `batches_drained`);
//! * shutdown is clean: every handler drains and hands its object back.

use scoop_qs::prelude::*;

/// One stress round: `clients` threads × `handler_count` handlers, each
/// client running `blocks` separate blocks of `calls_per_block` calls plus a
/// query mix, on a fresh runtime configured with `capacity`.
fn stress_round(
    level: OptimizationLevel,
    capacity: Option<usize>,
    clients: usize,
    handler_count: usize,
    blocks: usize,
    calls_per_block: usize,
) {
    stress_round_scheduled(
        level,
        SchedulerMode::default(),
        capacity,
        clients,
        handler_count,
        blocks,
        calls_per_block,
    );
}

#[allow(clippy::too_many_arguments)]
fn stress_round_scheduled(
    level: OptimizationLevel,
    scheduler: SchedulerMode,
    capacity: Option<usize>,
    clients: usize,
    handler_count: usize,
    blocks: usize,
    calls_per_block: usize,
) {
    let config = level
        .config()
        .with_mailbox_capacity(capacity)
        .with_scheduler(scheduler);
    let rt = Runtime::new(config);
    let handlers: Vec<Handler<u64>> = (0..handler_count).map(|_| rt.spawn_handler(0u64)).collect();

    std::thread::scope(|scope| {
        for client in 0..clients {
            let handlers = handlers.clone();
            scope.spawn(move || {
                for block in 0..blocks {
                    let handler = &handlers[(client + block) % handlers.len()];
                    let label = format!("{level}/cap {capacity:?}");
                    handler.separate(|s| {
                        for _ in 0..calls_per_block {
                            s.call(|n| *n += 1);
                        }
                        // A pipelined query in flight while further calls are
                        // logged, then a synchronous query: both must observe
                        // a prefix-consistent counter.
                        let early = s.query_async(|n| *n);
                        s.call(|n| *n += 1);
                        let late = s.query(|n| *n);
                        let early = early.wait();
                        assert!(
                            early < late,
                            "{label}: pipelined query saw {early}, later sync query saw {late}"
                        );
                    });
                }
            });
        }
    });

    // Clean shutdown: every handler drains its remaining work and returns
    // its object.
    let total: u64 = handlers
        .into_iter()
        .map(|h| h.shutdown_and_take().expect("object taken exactly once"))
        .sum();
    let expected_calls = (clients * blocks * (calls_per_block + 1)) as u64;
    let context = format!("{level} with capacity {capacity:?}");
    assert_eq!(total, expected_calls, "{context}: calls lost or duplicated");

    let snap = rt.stats_snapshot();
    assert_eq!(snap.calls_enqueued, expected_calls, "{context}");
    // Every request that entered a mailbox was applied exactly once.
    assert_eq!(
        snap.requests_executed,
        snap.calls_enqueued + snap.queries_handler_executed + snap.queries_pipelined,
        "{context}: enqueued != executed"
    );
    assert_eq!(
        snap.queries_pipelined,
        (clients * blocks) as u64,
        "{context}"
    );
    assert!(snap.batches_drained > 0, "{context}: no batches drained");
    assert_eq!(
        snap.batch_requests_drained,
        snap.requests_executed + snap.syncs_performed,
        "{context}: drained requests must be exactly the executed ones plus sync tokens"
    );
    if capacity.is_none() {
        assert_eq!(
            snap.backpressure_stalls, 0,
            "{context}: an unbounded mailbox must never stall"
        );
    }
}

/// Every optimisation level must survive the tiniest possible mailbox: with
/// capacity 1 every second enqueue stalls, so this is the maximal-contention
/// backpressure configuration.
#[test]
fn all_levels_survive_mailbox_capacity_one() {
    for level in OptimizationLevel::ALL {
        stress_round(level, Some(1), 4, 2, 6, 20);
    }
}

/// Small odd capacities exercise ring wrap-around (7) and the two-entry
/// boundary (2) across every level.
#[test]
fn all_levels_survive_tiny_capacities() {
    for level in OptimizationLevel::ALL {
        for capacity in [2, 7] {
            stress_round(level, Some(capacity), 4, 2, 6, 20);
        }
    }
}

/// The unbounded control: identical workload, and the invariant that no
/// backpressure stall is ever counted without a bound.
#[test]
fn all_levels_unbounded_control_never_stalls() {
    for level in OptimizationLevel::ALL {
        stress_round(level, None, 4, 2, 6, 20);
    }
}

/// A bounded run whose clients deliberately outrun the handler must record
/// backpressure stalls (the complement of the unbounded control above).
#[test]
fn capacity_one_fan_in_records_stalls() {
    let rt = Runtime::new(
        OptimizationLevel::All
            .config()
            .with_mailbox_capacity(Some(1)),
    );
    let handler = rt.spawn_handler(0u64);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let handler = handler.clone();
            scope.spawn(move || {
                handler.separate(|s| {
                    for _ in 0..500 {
                        s.call(|n| *n += 1);
                    }
                });
            });
        }
    });
    assert_eq!(handler.shutdown_and_take(), Some(1_000));
    let snap = rt.stats_snapshot();
    assert!(
        snap.backpressure_stalls > 0,
        "two clients bursting 500 calls into capacity-1 mailboxes must stall"
    );
}

/// The M:N pool at its most constrained: 200 live handlers multiplexed over
/// 2 workers, across every optimisation level, asserting the full
/// enqueued == executed accounting and clean shutdown.  The same workload
/// runs under dedicated threads as the behavioural control.
#[test]
fn pooled_two_workers_two_hundred_handlers_across_levels() {
    for level in OptimizationLevel::ALL {
        for scheduler in [
            SchedulerMode::Pooled { workers: 2 },
            SchedulerMode::Dedicated,
        ] {
            stress_round_scheduled(level, scheduler, Some(7), 4, 200, 8, 10);
        }
    }
}

/// Lost-wakeup regression: hammer the idle→nonempty race.
///
/// Every `query` forces the handler to drain the client's queue, complete
/// the sync handoff and go idle; the client then immediately enqueues the
/// next call, racing the producer-side wake hook against the worker's
/// running→idle transition.  If the schedule-flag protocol ever drops a
/// wake, the next sync round-trip strands forever and the test times out
/// instead of passing; if it double-schedules, the accounting assertions
/// catch the duplicated drain.
#[test]
fn lost_wakeup_hammer_idle_nonempty_race() {
    for level in [OptimizationLevel::All, OptimizationLevel::None] {
        let rt = Runtime::new(
            level
                .config()
                .with_scheduler(SchedulerMode::Pooled { workers: 1 }),
        );
        let handler = rt.spawn_handler(0u64);
        const ROUNDS: u64 = 2_000;
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let handler = handler.clone();
                scope.spawn(move || {
                    for _ in 0..ROUNDS {
                        handler.separate(|s| {
                            s.call(|n| *n += 1);
                            // The round-trip parks the handler right after
                            // the drain — the racy window.
                            let _ = s.query(|n| *n);
                        });
                    }
                });
            }
        });
        assert_eq!(
            handler.shutdown_and_take(),
            Some(2 * ROUNDS),
            "{level}: a wakeup was lost or a request stranded"
        );
        let snap = rt.stats_snapshot();
        assert_eq!(snap.calls_enqueued, 2 * ROUNDS, "{level}");
        assert_eq!(
            snap.requests_executed,
            snap.calls_enqueued + snap.queries_handler_executed + snap.queries_pipelined,
            "{level}: enqueued != executed"
        );
        assert!(snap.handler_wakeups > 0, "{level}: no wakeups recorded");
    }
}

/// A mostly-idle fleet: thousands of live handlers, a trickle of work, a
/// 2-worker pool.  Verifies idle handlers cost no OS threads (the M:N
/// point) while every handler still makes progress when poked.
#[test]
fn thousands_of_idle_handlers_on_two_workers() {
    let rt = Runtime::new(
        OptimizationLevel::All
            .config()
            .with_scheduler(SchedulerMode::Pooled { workers: 2 }),
    );
    let handlers: Vec<Handler<u64>> = (0..2_000).map(|_| rt.spawn_handler(0u64)).collect();
    // Poke a scattered subset.
    for (i, handler) in handlers.iter().enumerate().step_by(37) {
        handler.call_detached(move |n| *n = i as u64);
    }
    for (i, handler) in handlers.iter().enumerate().step_by(37) {
        assert_eq!(handler.query_detached(|n| *n), i as u64);
    }
    // 2 core workers + possibly a few compensation workers, never
    // thousands.
    assert!(
        rt.scheduler_peak_threads() < 64,
        "2000 idle handlers must not cost threads: peak {}",
        rt.scheduler_peak_threads()
    );
    assert_eq!(rt.handler_threads_created(), 0);
    for handler in handlers {
        assert!(handler.shutdown_and_take().is_some());
    }
}

/// Sustained-backpressure regression (the ISSUE 4 tentpole): pipelines whose
/// blocks are far larger than their capacity-8 mailboxes, on a deliberately
/// undersized 1-worker pool versus dedicated consumer threads.  Before the
/// pressure-wake + adaptive-budget mechanism the pooled side collapsed to
/// ~0.4x dedicated throughput (ring-sized service bursts instead of fine
/// futex interleaving); it must now hold >= 0.7x, and the pressure
/// instrumentation must actually fire.
#[test]
fn sustained_backpressure_pooled_keeps_pace_with_dedicated() {
    use qs_bench::experiments::backpressure_sweep;

    // The experiment (pipelines, capacity 8, calls per block, undersized
    // 1-worker pool vs dedicated, best-of-N rounds) lives in
    // qs_bench::experiments so this regression test and the CI bench gate
    // measure the same thing; only the block count and threshold are
    // test-local (debug build: fewer blocks, and a laxer 0.7 than the
    // release gate's 0.6).  Best-of-3: the ratio is a timing measurement
    // and a single descheduling hiccup on a loaded CI box must not fail
    // the regression.
    const BLOCKS: usize = 6; // blocks >> capacity: sustained stalls
    let (dedicated, pooled) = backpressure_sweep(BLOCKS, 3);
    assert!(
        dedicated.backpressure_stalls > 0 && pooled.backpressure_stalls > 0,
        "no sustained pressure: {dedicated:?} / {pooled:?}"
    );
    assert_eq!(
        dedicated.pressure_wakes, 0,
        "dedicated mode has no wake hooks"
    );
    assert!(
        pooled.pressure_wakes > 0,
        "bounded mailboxes at capacity must fire pressure wakes"
    );
    let ratio = pooled.requests_per_sec / dedicated.requests_per_sec;
    assert!(
        ratio >= 0.7,
        "sustained-backpressure collapse is back: pooled {:.0} req/s is only \
         {ratio:.3}x dedicated {:.0} req/s (required >= 0.7)",
        pooled.requests_per_sec,
        dedicated.requests_per_sec,
    );
}

/// Two-handler fairness regression on a single pool worker: the remaining
/// yield budget must persist across scheduler steps (and a yielded handler
/// must re-enter behind its runnable peers), or one hot handler with a deep
/// backlog monopolises the worker and the other starves until the first is
/// completely done.
#[test]
fn two_preloaded_handlers_share_one_worker_fairly() {
    use std::sync::{Arc, Mutex};

    /// Global execution-order bookkeeping: the longest contiguous run of
    /// calls one handler got the worker for.
    #[derive(Default)]
    struct Streaks {
        last: u8,
        current: u64,
        max: u64,
    }

    impl Streaks {
        fn record(&mut self, who: u8) {
            if self.last == who {
                self.current += 1;
            } else {
                self.last = who;
                self.current = 1;
            }
            self.max = self.max.max(self.current);
        }
    }

    const PRELOAD: u64 = 20_000;
    // One yield budget is the intended scheduling quantum; anything a few
    // multiples above it means a handler held the worker across what should
    // have been a yield boundary.
    const MAX_FAIR_STREAK: u64 = 4_096;
    const ATTEMPTS: usize = 5;

    /// One measured round: preload both handlers behind the gate, release,
    /// and return (max contiguous streak, whether the run stayed on the
    /// single worker).  If preloading outlasts the ~100ms compensation
    /// threshold (slow CI box), the monitor hands the second handler its own
    /// thread and the streak measurement is meaningless — the caller retries.
    fn round(preload: u64) -> (u64, bool) {
        let rt = Runtime::new(
            OptimizationLevel::All
                .config()
                // Unbounded: the clients must fully preload both backlogs
                // without ever blocking, so the fairness of the drain itself
                // is what is measured.
                .with_mailbox_capacity(None)
                .with_scheduler(SchedulerMode::Pooled { workers: 1 }),
        );
        let a = rt.spawn_handler(0u64);
        let b = rt.spawn_handler(0u64);
        let streaks = Arc::new(Mutex::new(Streaks::default()));
        let gate = Arc::new(qs_sync::Event::new());

        std::thread::scope(|scope| {
            for (who, handler) in [(1u8, &a), (2u8, &b)] {
                let streaks = &streaks;
                let gate = &gate;
                scope.spawn(move || {
                    handler.separate(|s| {
                        // The single worker blocks here until both backlogs
                        // are fully preloaded, so neither handler gets a
                        // head start.
                        let gate = Arc::clone(gate);
                        s.call(move |_| gate.wait());
                        for _ in 0..preload {
                            let streaks = Arc::clone(streaks);
                            s.call(move |n| {
                                *n += 1;
                                streaks.lock().unwrap().record(who);
                            });
                        }
                    });
                });
            }
        });
        // Both backlogs are fully logged (the clients never block on the
        // unbounded mailboxes); only now may the drain race begin.
        gate.set();

        assert_eq!(a.shutdown_and_take(), Some(preload));
        assert_eq!(b.shutdown_and_take(), Some(preload));
        let max_streak = streaks.lock().unwrap().max;
        (max_streak, rt.scheduler_peak_threads() <= 1)
    }

    let mut last_clean = None;
    for _ in 0..ATTEMPTS {
        let (max_streak, single_worker) = round(PRELOAD);
        if single_worker {
            last_clean = Some(max_streak);
            break;
        }
    }
    let Some(max_streak) = last_clean else {
        // Compensation fired on every attempt: the box is too loaded to
        // keep the gate window under the 100ms stall threshold, and with
        // two workers there is no single-worker fairness to measure.
        eprintln!("skipping streak assertion: compensation fired on all {ATTEMPTS} attempts");
        return;
    };
    // Persisted budgets + yield-to-global-FIFO give strict ~1024-request
    // alternation.  The old fresh-budget-per-step behaviour let the first
    // handler hold the worker for 16+ consecutive budgets (its LIFO deque
    // re-popped it until the next shared poll), i.e. streaks >= 16384.
    assert!(
        max_streak <= MAX_FAIR_STREAK,
        "one handler monopolised the single worker for {max_streak} consecutive \
         requests (fairness quantum is ~1024, allowed at most {MAX_FAIR_STREAK})"
    );
}

/// Per-handler mailbox-capacity overrides coexist with the runtime-wide
/// default on one runtime: a capacity-1 handler applies hard backpressure
/// while sibling handlers keep the roomy default, on both loop flavours and
/// both scheduling modes.
#[test]
fn per_handler_capacity_override_coexists_with_global_default() {
    for level in [OptimizationLevel::All, OptimizationLevel::None] {
        for scheduler in [
            SchedulerMode::Pooled { workers: 2 },
            SchedulerMode::Dedicated,
        ] {
            let context = format!("{level} / {scheduler}");
            let rt = Runtime::new(level.config().with_scheduler(scheduler));
            let roomy = rt.spawn_handler(0u64);
            let tiny = rt.spawn_with_capacity(0u64, Some(1));
            assert_eq!(tiny.config().mailbox_capacity, Some(1), "{context}");
            assert_eq!(
                roomy.config().mailbox_capacity,
                rt.config().mailbox_capacity,
                "{context}"
            );

            // The roomy handler first: blocks far below the default bound
            // must finish without a single stall.
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    let roomy = roomy.clone();
                    scope.spawn(move || {
                        for _ in 0..3 {
                            roomy.separate(|s| {
                                for _ in 0..100 {
                                    s.call(|n| *n += 1);
                                }
                            });
                        }
                    });
                }
            });
            assert_eq!(roomy.query_detached(|n| *n), 600, "{context}");
            assert_eq!(
                rt.stats_snapshot().backpressure_stalls,
                0,
                "{context}: the default-capacity handler must not stall"
            );

            // The capacity-1 handler: every burst vastly exceeds the bound,
            // so the producers must stall — and still lose nothing.
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    let tiny = tiny.clone();
                    scope.spawn(move || {
                        tiny.separate(|s| {
                            for _ in 0..500 {
                                s.call(|n| *n += 1);
                            }
                        });
                    });
                }
            });
            assert_eq!(tiny.query_detached(|n| *n), 1_000, "{context}");
            assert!(
                rt.stats_snapshot().backpressure_stalls > 0,
                "{context}: the capacity-1 override must apply backpressure"
            );
            assert_eq!(roomy.shutdown_and_take(), Some(600), "{context}");
            assert_eq!(tiny.shutdown_and_take(), Some(1_000), "{context}");
        }
    }
}

/// Release-mode soak of the queue-of-queues configurations (QoQ and All),
/// sized for the CI stress job.  Run with `--include-ignored`.
#[test]
#[ignore = "soak test; run in release mode via the CI stress job"]
fn soak_queue_of_queues_configurations() {
    for level in [OptimizationLevel::QoQ, OptimizationLevel::All] {
        for capacity in [Some(1), Some(7), Some(64), None] {
            stress_round(level, capacity, 8, 4, 100, 500);
        }
    }
}

/// Release-mode soak of the lock-based configurations (None, Dynamic,
/// Static).  Run with `--include-ignored`.
#[test]
#[ignore = "soak test; run in release mode via the CI stress job"]
fn soak_lock_based_configurations() {
    for level in [
        OptimizationLevel::None,
        OptimizationLevel::Dynamic,
        OptimizationLevel::Static,
    ] {
        for capacity in [Some(1), Some(7), Some(64), None] {
            stress_round(level, capacity, 8, 4, 100, 250);
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime deadlock detection: real bounded-mailbox cycles and the
// no-false-positive control
// ---------------------------------------------------------------------------

/// One node of a cyclic-logging ring: each node, while executing a request,
/// bursts two calls into the next node's capacity-1 mailbox — the second
/// push blocks until the next node serves the fresh private queue, and with
/// every node pinned in its own push the ring deadlocks deterministically.
struct RingNode {
    next: Option<Handler<RingNode>>,
    received: u64,
    /// Set once this node's entangling request is executing.
    ready: std::sync::Arc<scoop_qs::sync::Event>,
    /// Every node's `ready` event: the ring rendezvouses before pushing, so
    /// the deadlock does not depend on a lucky interleaving.
    all_ready: Vec<std::sync::Arc<scoop_qs::sync::Event>>,
}

fn entangle_ring(node: &mut RingNode) {
    node.ready.set();
    for event in &node.all_ready {
        event.wait();
    }
    let next = node.next.clone().expect("ring wired before entangling");
    next.separate(|s| {
        s.call(|peer| peer.received += 1);
        s.call(|peer| peer.received += 1); // <- blocks: capacity 1
    });
}

/// Builds an `n`-node ring under `mode`/`policy` (capacity-1 mailboxes) and
/// fires every node's entangling request.
fn spawn_deadlocked_ring(
    mode: SchedulerMode,
    policy: DeadlockPolicy,
    n: usize,
) -> (Runtime, Vec<Handler<RingNode>>) {
    use std::sync::Arc;

    let rt = Runtime::new(
        OptimizationLevel::All
            .config()
            .with_mailbox_capacity(Some(1))
            .with_scheduler(mode)
            .with_deadlock_policy(policy),
    );
    let events: Vec<Arc<scoop_qs::sync::Event>> = (0..n)
        .map(|_| Arc::new(scoop_qs::sync::Event::new()))
        .collect();
    let nodes: Vec<Handler<RingNode>> = (0..n)
        .map(|i| {
            rt.spawn_handler(RingNode {
                next: None,
                received: 0,
                ready: Arc::clone(&events[i]),
                all_ready: events.clone(),
            })
        })
        .collect();
    for (i, node) in nodes.iter().enumerate() {
        let next = nodes[(i + 1) % n].clone();
        node.call_detached(move |ring_node| ring_node.next = Some(next));
    }
    for node in &nodes {
        node.call_detached(entangle_ring);
    }
    (rt, nodes)
}

/// Polls until the detector has confirmed at least one cycle; panics (with
/// `context`) if that takes longer than the bound — the detection-latency
/// assertion.
fn await_detection(rt: &Runtime, context: &str) -> std::time::Duration {
    let started = std::time::Instant::now();
    while rt.stats_snapshot().deadlocks_detected == 0 {
        assert!(
            started.elapsed() < std::time::Duration::from_secs(30),
            "{context}: no deadlock report within 30s"
        );
        std::thread::yield_now();
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    started.elapsed()
}

/// A real 2-party bounded-mailbox cycle in both scheduler modes: detected
/// within the latency bound, reported with the right participants and edge
/// kinds, broken by `DeadlockPolicy::Break`, and fully recovered from.
#[test]
fn deadlock_two_party_cycle_detected_and_broken_across_modes() {
    for mode in [
        SchedulerMode::Dedicated,
        SchedulerMode::Pooled { workers: 2 },
    ] {
        deadlocked_ring_round(mode, 2);
    }
}

/// The same, for a 3-party ring: client A blocked pushing to B, B to C, C
/// back to A.
#[test]
fn deadlock_three_party_cycle_detected_and_broken_across_modes() {
    for mode in [
        SchedulerMode::Dedicated,
        SchedulerMode::Pooled { workers: 2 },
    ] {
        deadlocked_ring_round(mode, 3);
    }
}

fn deadlocked_ring_round(mode: SchedulerMode, n: usize) {
    let context = format!("{mode} / {n}-party");
    let (rt, nodes) = spawn_deadlocked_ring(mode, DeadlockPolicy::Break, n);

    // Latency bound: the detector confirms within two 10ms scan ticks of
    // the cycle forming; the ring needs a rendezvous (and, pooled, possibly
    // a ~100ms compensation spawn) first.  5s is two orders of magnitude of
    // CI-noise headroom above that, and far below await_detection's 30s
    // hang backstop — a detection slowdown fails here first.
    let latency = await_detection(&rt, &context);
    assert!(
        latency < std::time::Duration::from_secs(5),
        "{context}: detection latency {latency:?} exceeds the bound"
    );

    // The report names the ring: n handler participants, every edge a
    // blocked bounded push.
    let reports = rt.deadlock_reports();
    assert!(!reports.is_empty(), "{context}: report retrievable");
    let report = &reports[0];
    assert_eq!(report.edges.len(), n, "{context}: {report}");
    assert!(
        report
            .kinds()
            .iter()
            .all(|kind| *kind == DeadlockEdgeKind::MailboxPush),
        "{context}: pure push ring, got {report}"
    );
    let mut participants: Vec<&str> = report.participants();
    participants.sort_unstable();
    participants.dedup();
    assert_eq!(participants.len(), n, "{context}: distinct handlers");
    assert!(
        participants.iter().all(|p| p.starts_with("handler-")),
        "{context}: waits attributed to handlers, not worker threads: {participants:?}"
    );

    // Break recovery: exactly one of the 2n pushes is dropped, the rest
    // land once the freed handlers drain.
    let expected = (2 * n - 1) as u64;
    let started = std::time::Instant::now();
    loop {
        let total: u64 = nodes
            .iter()
            .map(|node| node.query_detached(|ring_node| ring_node.received))
            .sum();
        if total == expected {
            break;
        }
        assert!(
            started.elapsed() < std::time::Duration::from_secs(30),
            "{context}: counts stuck at {total}, want {expected}"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let snapshot = rt.stats_snapshot();
    assert!(snapshot.deadlocks_detected >= 1, "{context}: {snapshot:?}");
    assert!(snapshot.deadlocks_broken >= 1, "{context}: {snapshot:?}");
    assert!(
        snapshot.call_panics >= 1,
        "{context}: the broken push surfaces as a caught panic: {snapshot:?}"
    );

    // Clean shutdown: unwire the ring (the handles form an Arc cycle) and
    // retire every node.
    for node in &nodes {
        node.call_detached(|ring_node| ring_node.next = None);
    }
    for node in nodes {
        assert!(node.shutdown_and_take().is_some(), "{context}");
    }
}

/// `DeadlockPolicy::Report` observes without intervening: the cycle is
/// reported (and counted) but stays in place, and nothing is broken.
#[test]
fn deadlock_report_mode_observes_without_breaking() {
    let mode = SchedulerMode::Pooled { workers: 2 };
    let (rt, nodes) = spawn_deadlocked_ring(mode, DeadlockPolicy::Report, 2);
    let context = "report-mode 2-party";
    await_detection(&rt, context);
    // Give the monitor a few more ticks: the confirmed cycle must be
    // reported exactly once and never broken.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let snapshot = rt.stats_snapshot();
    assert_eq!(snapshot.deadlocks_detected, 1, "{context}: {snapshot:?}");
    assert_eq!(snapshot.deadlocks_broken, 0, "{context}: {snapshot:?}");
    assert_eq!(snapshot.call_panics, 0, "{context}: {snapshot:?}");
    let reports = rt.deadlock_reports();
    assert_eq!(reports.len(), 1, "{context}");
    assert_eq!(reports[0].edges.len(), 2, "{context}: {}", reports[0]);
    // The deadlock is real and Report leaves it in place: abandon the
    // runtime (drop never waits on blocked handlers; the two pinned pool
    // workers are deliberately leaked until process exit).
    drop(nodes);
    drop(rt);
}

/// The pre-Qs lock-based configuration's classic failure mode: two clients
/// open nested separate blocks on two handlers in opposite orders (ABBA).
/// Handler locks are held for whole blocks (Fig. 2), so once both outer
/// blocks are open the inner acquisitions deadlock — and the detector must
/// name the cycle with `HandlerLock` edges, attributing each wait to the
/// client *holding* the other lock (not to the handlers, which are idle).
#[test]
fn deadlock_lock_based_abba_cycle_is_reported_as_handler_lock_edges() {
    use std::sync::Arc;

    let rt = Runtime::new(
        OptimizationLevel::None
            .config()
            .with_deadlock_policy(DeadlockPolicy::Report),
    );
    let a = rt.spawn_handler(0u64);
    let b = rt.spawn_handler(0u64);
    // Rendezvous: each thread sets its event once it holds its outer lock,
    // and waits for the other before reaching for the inner one — so the
    // ABBA cycle forms deterministically, not on a lucky interleaving.
    let a_held = Arc::new(scoop_qs::sync::Event::new());
    let b_held = Arc::new(scoop_qs::sync::Event::new());
    let forward = {
        let (a, b) = (a.clone(), b.clone());
        let (a_held, b_held) = (Arc::clone(&a_held), Arc::clone(&b_held));
        std::thread::spawn(move || {
            a.separate(|sa| {
                sa.call(|v| *v += 1);
                a_held.set();
                b_held.wait();
                b.separate(|sb| sb.call(|v| *v += 1)); // <- blocks forever
            });
        })
    };
    let backward = {
        let (a, b) = (a.clone(), b.clone());
        let (a_held, b_held) = (Arc::clone(&a_held), Arc::clone(&b_held));
        std::thread::spawn(move || {
            b.separate(|sb| {
                sb.call(|v| *v += 1);
                b_held.set();
                a_held.wait();
                a.separate(|sa| sa.call(|v| *v += 1)); // <- blocks forever
            });
        })
    };

    let context = "lock-based ABBA";
    await_detection(&rt, context);
    std::thread::sleep(std::time::Duration::from_millis(100));
    let snapshot = rt.stats_snapshot();
    assert_eq!(snapshot.deadlocks_detected, 1, "{context}: {snapshot:?}");
    assert_eq!(
        snapshot.deadlocks_broken, 0,
        "{context}: HandlerLock edges are not breakable: {snapshot:?}"
    );
    let reports = rt.deadlock_reports();
    assert_eq!(reports.len(), 1, "{context}");
    let report = &reports[0];
    assert_eq!(report.edges.len(), 2, "{context}: {report}");
    assert!(
        report
            .kinds()
            .iter()
            .all(|kind| *kind == DeadlockEdgeKind::HandlerLock),
        "{context}: pure lock cycle, got {report}"
    );
    let mut participants: Vec<&str> = report.participants();
    participants.sort_unstable();
    participants.dedup();
    assert_eq!(participants.len(), 2, "{context}: two distinct clients");
    assert!(
        participants.iter().all(|p| p.starts_with("client-")),
        "{context}: waits belong to the lock-holding clients: {participants:?}"
    );

    // The deadlock is permanent by construction (nothing can break a mutex
    // acquisition): leak the two pinned client threads and the runtime —
    // the same abandonment as the Report-mode ring above.
    drop(forward);
    drop(backward);
    drop((a, b));
    std::mem::forget(rt);
}

/// The no-false-positive control: a heavily backpressured but *acyclic*
/// pipeline under `DeadlockPolicy::Report` must finish with plenty of
/// genuine blocking (stalls > 0) and zero deadlock reports, in both
/// scheduler modes.
#[test]
fn deadlock_soak_acyclic_backpressure_has_no_false_positives() {
    struct Stage {
        next: Option<Handler<Stage>>,
        received: u64,
        pending: u64,
    }

    /// Forwarding step: every 8 received messages are forwarded to the next
    /// stage in one burst — 8 > capacity 4, so every burst (and every
    /// client block) genuinely stalls on backpressure.
    fn pump(stage: &mut Stage) {
        stage.received += 1;
        stage.pending += 1;
        if stage.pending == 8 {
            stage.pending = 0;
            if let Some(next) = stage.next.clone() {
                next.separate(|s| {
                    for _ in 0..8 {
                        s.call(pump);
                    }
                });
            }
        }
    }

    for mode in [
        SchedulerMode::Dedicated,
        SchedulerMode::Pooled { workers: 2 },
    ] {
        let context = format!("acyclic soak / {mode}");
        let rt = Runtime::new(
            OptimizationLevel::All
                .config()
                .with_mailbox_capacity(Some(4))
                .with_scheduler(mode)
                .with_deadlock_policy(DeadlockPolicy::Report),
        );
        let sink = rt.spawn_handler(Stage {
            next: None,
            received: 0,
            pending: 0,
        });
        let mid = rt.spawn_handler(Stage {
            next: Some(sink.clone()),
            received: 0,
            pending: 0,
        });
        let first = rt.spawn_handler(Stage {
            next: Some(mid.clone()),
            received: 0,
            pending: 0,
        });

        const CLIENTS: usize = 2;
        const BLOCKS: usize = 40;
        const CALLS_PER_BLOCK: usize = 16;
        std::thread::scope(|scope| {
            for _ in 0..CLIENTS {
                let first = first.clone();
                scope.spawn(move || {
                    for _ in 0..BLOCKS {
                        first.separate(|s| {
                            for _ in 0..CALLS_PER_BLOCK {
                                s.call(pump);
                            }
                        });
                    }
                });
            }
        });

        // Every message flows through: 1280 into the first stage, forwarded
        // in full batches of 8 all the way to the sink.
        let expected = (CLIENTS * BLOCKS * CALLS_PER_BLOCK) as u64;
        let started = std::time::Instant::now();
        while sink.query_detached(|stage| stage.received) < expected {
            assert!(
                started.elapsed() < std::time::Duration::from_secs(60),
                "{context}: pipeline stalled"
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }

        let snapshot = rt.stats_snapshot();
        assert!(
            snapshot.backpressure_stalls > 0,
            "{context}: the soak must exercise real blocking, got {snapshot:?}"
        );
        assert_eq!(
            snapshot.deadlocks_detected,
            0,
            "{context}: false positive! reports: {:?}",
            rt.deadlock_reports()
        );
        assert_eq!(snapshot.deadlocks_broken, 0, "{context}");
        assert!(rt.deadlock_reports().is_empty(), "{context}");

        // Clean teardown, producers first.
        assert!(first.shutdown_and_take().is_some(), "{context}");
        assert!(mid.shutdown_and_take().is_some(), "{context}");
        let sink = sink.shutdown_and_take().expect("sink retires");
        assert_eq!(sink.received, expected, "{context}");
    }
}
