//! Property-based integration tests: randomly generated command/query
//! programs executed on the SCOOP/Qs runtime behave exactly like their
//! sequential interpretation, under every optimisation level.

use proptest::prelude::*;
use scoop_qs::prelude::*;

/// Regression: `QueryToken::try_take` polled *before* the handler has
/// executed the query must simply report "not ready" — never panic, never
/// consume the token, never lose the eventual result.  The handler is held
/// up by a gate call so the first polls are guaranteed to race ahead of
/// execution.
#[test]
fn try_take_before_execution_keeps_the_token_usable() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    for level in [OptimizationLevel::All, OptimizationLevel::None] {
        let rt = Runtime::with_level(level);
        let handler = rt.spawn_handler(41u32);
        let gate = Arc::new(AtomicBool::new(false));
        let gate_for_handler = Arc::clone(&gate);
        let mut token = handler.separate(|s| {
            // The handler parks on this call until the gate opens, so the
            // query logged after it cannot have executed yet.
            s.call(move |n| {
                while !gate_for_handler.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                *n += 1;
            });
            s.query_async(|n| *n)
        });
        // Poll the in-flight token: every attempt must return None and leave
        // the token intact for reuse.
        for _ in 0..100 {
            assert!(
                token.try_take().is_none(),
                "query cannot be ready while the gate call is parked ({level})"
            );
            assert!(!token.is_ready(), "({level})");
        }
        gate.store(true, Ordering::Release);
        // The result is not lost: the same token eventually yields it.
        let value = loop {
            if let Some(value) = token.try_take() {
                break value;
            }
            std::thread::yield_now();
        };
        assert_eq!(value, 42, "({level})");
        assert!(
            token.try_take().is_none(),
            "a taken result must not be yielded twice ({level})"
        );
        handler.stop();
        handler.wait_finished();
    }
}

/// A step of a randomly generated single-client program.
#[derive(Debug, Clone)]
enum Op {
    Push(u8),
    PopIfAny,
    QueryLen,
    Sync,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Push),
        Just(Op::PopIfAny),
        Just(Op::QueryLen),
        Just(Op::Sync),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A single client's program applied through separate blocks matches the
    /// same program applied directly to a local Vec, for every optimisation
    /// level (guarantee 2 specialised to one client: order preservation).
    #[test]
    fn single_client_program_matches_sequential(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        for level in [OptimizationLevel::None, OptimizationLevel::Dynamic, OptimizationLevel::All] {
            let rt = Runtime::with_level(level);
            let handler = rt.spawn_handler(Vec::<u8>::new());
            let mut reference = Vec::<u8>::new();
            let mut reference_lens = Vec::new();
            let observed_lens = handler.separate(|s| {
                let mut lens = Vec::new();
                for op in &ops {
                    match op {
                        Op::Push(v) => {
                            let v = *v;
                            s.call(move |vec| vec.push(v));
                            reference.push(v);
                        }
                        Op::PopIfAny => {
                            s.call(|vec| {
                                vec.pop();
                            });
                            reference.pop();
                        }
                        Op::QueryLen => {
                            lens.push(s.query(|vec| vec.len()));
                            reference_lens.push(reference.len());
                        }
                        Op::Sync => s.sync(),
                    }
                }
                lens
            });
            prop_assert_eq!(&observed_lens, &reference_lens, "lens differ under {}", level);
            let final_vec = handler.shutdown_and_take().unwrap();
            prop_assert_eq!(&final_vec, &reference, "final state differs under {}", level);
        }
    }

    /// Concurrent increments from several clients are never lost and multi-
    /// handler transfers conserve their sum, regardless of interleaving.
    #[test]
    fn transfers_conserve_total(amounts in proptest::collection::vec(0i64..50, 1..40)) {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let a = rt.spawn_handler(1_000i64);
        let b = rt.spawn_handler(1_000i64);
        std::thread::scope(|scope| {
            for chunk in amounts.chunks(8) {
                let a = a.clone();
                let b = b.clone();
                let chunk = chunk.to_vec();
                scope.spawn(move || {
                    for amount in chunk {
                        reserve((&a, &b)).run(|(sa, sb)| {
                            sa.call(move |v| *v -= amount);
                            sb.call(move |v| *v += amount);
                        });
                    }
                });
            }
        });
        let total = a.query_detached(|v| *v) + b.query_detached(|v| *v);
        prop_assert_eq!(total, 2_000);
    }

    /// Overlapping `reserve()` calls of mixed arity (1, 2 and 3) over the
    /// same three handlers, in randomly chosen orders, never deadlock and
    /// never interleave their blocks: every handler's log consists of
    /// contiguous (client, block) runs.  Extends the fixed-order
    /// `opposite_order_multi_reservations_do_not_deadlock` unit test.
    #[test]
    fn mixed_arity_overlapping_reservations_are_atomic(
        plans in proptest::collection::vec(
            proptest::collection::vec((0usize..6, 1usize..4), 4..12), 2..5)
    ) {
        for level in [OptimizationLevel::All, OptimizationLevel::None] {
            let rt = Runtime::with_level(level);
            let handlers: Vec<Handler<Vec<(usize, usize, usize)>>> =
                (0..3).map(|_| rt.spawn_handler(Vec::new())).collect();

            std::thread::scope(|scope| {
                for (client, plan) in plans.iter().enumerate() {
                    let handlers = handlers.clone();
                    scope.spawn(move || {
                        for (block, &(order, arity)) in plan.iter().enumerate() {
                            // Pick `arity` distinct handlers in one of six
                            // rotations, so concurrent sets overlap in
                            // conflicting orders.
                            let rotation = [
                                [0, 1, 2], [0, 2, 1], [1, 0, 2],
                                [1, 2, 0], [2, 0, 1], [2, 1, 0],
                            ][order];
                            let set: Vec<Handler<_>> = rotation[..arity]
                                .iter()
                                .map(|&i| handlers[i].clone())
                                .collect();
                            reserve(&set).run(|guards| {
                                for seq in 0..3 {
                                    for guard in guards.iter_mut() {
                                        guard.call(move |log| log.push((client, block, seq)));
                                    }
                                }
                            });
                        }
                    });
                }
            });

            // Completion already proves deadlock-freedom; now check that no
            // handler log interleaves two blocks.
            for handler in handlers {
                let log = handler.shutdown_and_take().unwrap();
                let mut position = 0;
                while position < log.len() {
                    let (client, block, _) = log[position];
                    let run: Vec<_> = log[position..]
                        .iter()
                        .take_while(|(c, b, _)| *c == client && *b == block)
                        .collect();
                    prop_assert_eq!(run.len(), 3, "level {}: block split at {}", level, position);
                    prop_assert!(
                        run.iter().enumerate().all(|(i, (_, _, seq))| *seq == i),
                        "level {}: calls reordered within a block", level
                    );
                    position += run.len();
                }
            }
        }
    }
}
