//! Integration tests for event-driven wait conditions: clients whose
//! `reserve(...).when(...)` condition is false park on the set's handlers
//! and are signalled when a block completes, instead of re-polling on a
//! timer.  Covers the O(signals) evaluation-count guarantee under heavy
//! waiter fan-in, the lost-signal race between evaluation and registration,
//! wall-clock timeout clamping on both wait paths, and the interaction with
//! the runtime deadlock detector (a *parked* guard waiter still confirms —
//! and `Break` still fails — a reservation cycle).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use scoop_qs::prelude::*;

fn runtime(mode: SchedulerMode) -> Runtime {
    Runtime::new(RuntimeConfig::all_optimizations().with_scheduler(mode))
}

/// A hundred clients park on one handler; ten state changes resolve them
/// all.  The total number of condition evaluations must scale with the
/// number of signals (a handful per waiter), not with elapsed time — the
/// legacy 1ms-polling loop would evaluate tens of thousands of times over
/// the same quarter second.
fn hundred_waiters_resolve_with_few_evaluations(mode: SchedulerMode) {
    const WAITERS: usize = 100;
    const TARGET: u64 = 10;

    let rt = runtime(mode);
    let counter = rt.spawn_handler(0u64);
    let waiters: Vec<_> = (0..WAITERS)
        .map(|_| {
            let counter = counter.clone();
            std::thread::spawn(move || {
                reserve(&counter)
                    .when(|c: &u64| *c >= TARGET)
                    .run(|guard| guard.query(|c| *c))
            })
        })
        .collect();

    // Give every waiter time to burn its spin window and park, then drive
    // the condition true in TARGET spaced steps so most waiters park (and
    // get signalled) several times over.
    std::thread::sleep(Duration::from_millis(50));
    for _ in 0..TARGET {
        std::thread::sleep(Duration::from_millis(20));
        counter.call_detached(|c| *c += 1);
    }
    for waiter in waiters {
        assert!(waiter.join().unwrap() >= TARGET, "{mode}");
    }

    let snapshot = rt.stats_snapshot();
    assert!(snapshot.guard_signals > 0, "{mode}: {snapshot:?}");
    assert!(snapshot.guard_wakeups > 0, "{mode}: {snapshot:?}");
    // O(signals): ~9 spin evaluations per waiter plus one per wakeup, far
    // under the ≥20,000 a quarter second of 100 × 1ms-polling would cost.
    assert!(
        snapshot.wait_condition_checks < 10_000,
        "{mode}: waiters polled instead of parking: {snapshot:?}"
    );
}

#[test]
fn hundred_waiters_resolve_with_few_evaluations_dedicated() {
    hundred_waiters_resolve_with_few_evaluations(SchedulerMode::Dedicated);
}

#[test]
fn hundred_waiters_resolve_with_few_evaluations_pooled() {
    hundred_waiters_resolve_with_few_evaluations(SchedulerMode::Pooled { workers: 4 });
}

/// The lost-signal hammer: one client chases a counter another client keeps
/// bumping, so every round re-runs the evaluate → register → release →
/// park handshake while closes race in from the producer.  A signal falling
/// into any gap of that handshake would park the waiter forever and hang
/// the test.
fn signals_racing_registration_are_never_lost(mode: SchedulerMode) {
    const ROUNDS: usize = 2_000;

    let rt = runtime(mode);
    let counter = rt.spawn_handler(0u64);
    let stop = Arc::new(AtomicBool::new(false));
    let producer = {
        let counter = counter.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut bumps = 0u64;
            while !stop.load(Ordering::Acquire) {
                counter.call_detached(|c| *c += 1);
                bumps += 1;
                // Mix paces: bursts make the condition true before the
                // waiter parks, pauses (longer than the waiter's spin
                // window) force it to actually park.
                if bumps.is_multiple_of(8) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        })
    };

    let mut last_seen = 0u64;
    for round in 0..ROUNDS {
        let observed = reserve(&counter)
            .when(move |c: &u64| *c > last_seen)
            .run(|guard| guard.query(|c| *c));
        assert!(observed > last_seen, "{mode}: round {round}");
        last_seen = observed;
    }
    stop.store(true, Ordering::Release);
    producer.join().unwrap();

    let snapshot = rt.stats_snapshot();
    assert!(
        snapshot.guard_wakeups > 0,
        "{mode}: the hammer never parked, the race went unexercised: {snapshot:?}"
    );
}

#[test]
fn signals_racing_registration_are_never_lost_dedicated() {
    signals_racing_registration_are_never_lost(SchedulerMode::Dedicated);
}

#[test]
fn signals_racing_registration_are_never_lost_pooled() {
    signals_racing_registration_are_never_lost(SchedulerMode::Pooled { workers: 4 });
}

/// Wall-clock timeouts stay wall-clock on both wait paths: the parking path
/// bounds its park by the remaining budget (not a fixed nap), and the
/// polling path clamps its deep-retry sleep to the time left.
#[test]
fn wall_clock_timeouts_are_clamped_on_both_wait_paths() {
    const BUDGET: Duration = Duration::from_millis(60);
    // Generous CI headroom; the point is "one budget", not "ten naps".
    const OVERSHOOT: Duration = Duration::from_millis(250);

    let rt = runtime(SchedulerMode::Dedicated);
    let cell = rt.spawn_handler(0u8);

    // Parking path (no retry bound): one deadline-bounded park.
    let started = Instant::now();
    let parked = reserve(&cell)
        .when(|c: &u8| *c > 0)
        .timeout(WaitConfig::wall_clock(BUDGET))
        .try_run(|_| ());
    let elapsed = started.elapsed();
    assert!(parked.is_err(), "parked: the condition can never hold");
    assert!(elapsed >= BUDGET, "parked: fired early after {elapsed:?}");
    assert!(elapsed < OVERSHOOT, "parked: overshot to {elapsed:?}");

    // Polling path (a retry bound forces it): the deep-retry sleeps must
    // not carry the wait past the wall-clock budget.
    let config = WaitConfig {
        max_retries: Some(usize::MAX),
        max_wait: Some(BUDGET),
        ..WaitConfig::default()
    };
    let started = Instant::now();
    let polled = reserve(&cell)
        .when(|c: &u8| *c > 0)
        .timeout(config)
        .try_run(|_| ());
    let elapsed = started.elapsed();
    assert!(polled.is_err(), "polled: the condition can never hold");
    assert!(elapsed >= BUDGET, "polled: fired early after {elapsed:?}");
    assert!(elapsed < OVERSHOOT, "polled: overshot to {elapsed:?}");
}

/// Builds a 2-party cycle through a *parked* guard waiter, deterministically:
///
/// 1. Client A opens a block on X (X commits to it: `Serving X→A`) and then
///    waits on Y's state.  Y is still idle, so A's evaluations complete,
///    fail, and A parks (`ReserveWait A→Y`).
/// 2. Once A is parked, client B opens a block on Y (`Serving Y→B`) and
///    queries X inside it — X is pinned to A's open block, so the query
///    blocks (`Query B→X`), closing the cycle: A→Y→B→X→A.
///
/// The only breakable edge in that cycle is A's parked reservation, so the
/// detector can fail A straight out of its park.  Whenever A's wait fails —
/// broken or timed out — A closes its block and then satisfies B's
/// condition, so B always unwinds to `Ok`.
type CycleOutcome = (
    Result<(), WaitTimeout>,
    Result<(), WaitTimeout>,
    Handler<u64>,
    Handler<u64>,
);

fn run_parked_guard_cycle(rt: &Runtime, a_wait: WaitConfig) -> CycleOutcome {
    let x = rt.spawn_handler(0u64);
    let y = rt.spawn_handler(0u64);

    let a = {
        let (x, y) = (x.clone(), y.clone());
        std::thread::spawn(move || {
            let result = reserve(&x).run(|guard| {
                // Sync so X is committed to this open block for the whole
                // inner wait.
                guard.query(|v| *v);
                reserve(&y)
                    .when(|v: &u64| *v >= 1)
                    .timeout(a_wait)
                    .try_run(|_| ())
            });
            if result.is_err() {
                // The block on X is closed now: hand B its release.
                x.call_detached(|v| *v = 1);
            }
            result
        })
    };

    // B must not move before A is parked on Y: if both inner waits start
    // together, both evaluations block in their syncs and the cycle forms
    // out of plain query edges with nothing breakable on it.  A's spin
    // window is `spin_retries = 8` failed evaluations, so once the retry
    // counter passes it A is parking.
    let started = Instant::now();
    while rt.stats_snapshot().wait_condition_retries < 9 {
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "waiter A never reached its parking attempt"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(100));

    let b = {
        let (x, y) = (x.clone(), y.clone());
        std::thread::spawn(move || {
            reserve(&y).run(|guard| {
                guard.query(|v| *v);
                // Blocks: X is serving A's open block.  Completes — with the
                // condition already true — once A fails and releases.
                reserve(&x).when(|v: &u64| *v >= 1).try_run(|_| ())
            })
        })
    };
    (a.join().unwrap(), b.join().unwrap(), x, y)
}

/// `Report` mode: parking must not hide the cycle — a parked waiter reads
/// as *waiting* to the detector's probes, so the cycle through A's parked
/// reservation is confirmed and attributed to a `reserve-wait` edge.  The
/// cycle is left in place; A's bounded wait then times out (straight out of
/// the park — a re-evaluation would hang in its sync) and unwinds it.
#[test]
fn parked_guard_cycle_is_reported() {
    let rt = Runtime::new(
        RuntimeConfig::all_optimizations()
            .with_scheduler(SchedulerMode::Dedicated)
            .with_deadlock_policy(DeadlockPolicy::Report),
    );
    // A's wait is bounded at 2s — two orders of magnitude above the
    // detector's scan tick — so the cycle is confirmed *while A is parked*;
    // after the timeout no cycle exists to report.
    let (a, b, _x, _y) =
        run_parked_guard_cycle(&rt, WaitConfig::wall_clock(Duration::from_secs(2)));
    assert!(a.is_err(), "report mode leaves the cycle in place: {a:?}");
    assert_eq!(b, Ok(()), "A's timeout must have released B");

    let snapshot = rt.stats_snapshot();
    assert!(snapshot.deadlocks_detected >= 1, "{snapshot:?}");
    assert_eq!(snapshot.deadlocks_broken, 0, "report mode must not break");
    let reports = rt.deadlock_reports();
    assert!(
        reports.iter().any(|report| report
            .edges
            .iter()
            .any(|edge| edge.kind == DeadlockEdgeKind::ReserveWait)),
        "the cycle must be attributed to the parked reservation: {reports:?}"
    );
}

/// `Break` mode: the same cycle with an *unbounded* wait — A would park
/// forever.  The detector confirms the cycle and breaks its one breakable
/// edge, A's parked reservation; the edge's waker unparks A, whose wait
/// fails with `WaitTimeout` without re-evaluating (a re-evaluation would
/// hang).  A then releases its handler and satisfies B's condition.
#[test]
fn parked_guard_cycle_is_broken_and_recovered_from() {
    let rt = Runtime::new(
        RuntimeConfig::all_optimizations()
            .with_scheduler(SchedulerMode::Dedicated)
            .with_deadlock_policy(DeadlockPolicy::Break),
    );
    let (a, b, x, y) = run_parked_guard_cycle(&rt, WaitConfig::default());
    assert!(
        a.is_err(),
        "the parked wait must be failed by the break: {a:?}"
    );
    assert_eq!(b, Ok(()), "A's failure must have released B");

    let snapshot = rt.stats_snapshot();
    assert!(snapshot.deadlocks_detected >= 1, "{snapshot:?}");
    assert!(snapshot.deadlocks_broken >= 1, "{snapshot:?}");
    // Both handlers survived the break and stay fully usable.
    x.call_detached(|v| *v += 10);
    y.call_detached(|v| *v += 10);
    assert!(x.query_detached(|v| *v) >= 10);
    assert!(y.query_detached(|v| *v) >= 10);
}
