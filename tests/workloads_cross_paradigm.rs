//! Integration tests spanning the workload, baseline and runtime crates:
//! every benchmark of the paper's evaluation runs, verifies its functional
//! result, and the instrumentation shows the optimisations doing their job.

use scoop_qs::baselines::Paradigm;
use scoop_qs::runtime::OptimizationLevel;
use scoop_qs::workloads::concurrent::{run_concurrent, ConcurrentParams, ConcurrentTask};
use scoop_qs::workloads::types::{CowichanParams, ParallelTask};
use scoop_qs::workloads::{run_parallel, run_parallel_scoop};

#[test]
fn parallel_suite_is_correct_for_every_paradigm() {
    // `run_parallel` panics if the result deviates from the sequential
    // reference, so this is a functional check of 6 tasks x 5 paradigms.
    let params = CowichanParams::tiny();
    for task in ParallelTask::ALL {
        for paradigm in Paradigm::ALL {
            let timing = run_parallel(task, paradigm, &params);
            assert!(timing.total().as_nanos() > 0, "{task} under {paradigm}");
        }
    }
}

#[test]
fn parallel_suite_is_correct_for_every_optimization_level() {
    let params = CowichanParams::tiny();
    for task in [
        ParallelTask::Randmat,
        ParallelTask::Thresh,
        ParallelTask::Product,
    ] {
        for level in OptimizationLevel::ALL {
            run_parallel_scoop(task, level, &params);
        }
    }
}

#[test]
fn concurrent_suite_runs_for_every_paradigm() {
    let params = ConcurrentParams::tiny();
    for task in ConcurrentTask::ALL {
        for paradigm in Paradigm::ALL {
            run_concurrent(task, paradigm, &params);
        }
    }
}

#[test]
fn optimizations_reduce_round_trips_on_pull_heavy_workloads() {
    // The mechanism behind Table 1: the unoptimised configuration pays a
    // handler round-trip per pulled element, the optimised ones do not.
    use scoop_qs::compiler::execute_copy_loop;
    const LEN: usize = 512;
    let unopt = execute_copy_loop(OptimizationLevel::None.config(), LEN, false);
    let dynamic = execute_copy_loop(OptimizationLevel::Dynamic.config(), LEN, false);
    let statically = execute_copy_loop(OptimizationLevel::Static.config(), LEN, true);
    assert!(unopt.syncs_performed as usize >= LEN);
    assert_eq!(dynamic.syncs_performed, 1);
    assert_eq!(statically.syncs_performed, 1);
    assert_eq!(unopt.copied, dynamic.copied);
    assert_eq!(unopt.copied, statically.copied);
}

#[test]
fn runtime_statistics_expose_communication_structure() {
    use scoop_qs::prelude::*;
    let rt = Runtime::new(RuntimeConfig::all_optimizations());
    let handler = rt.spawn_handler(vec![0u64; 256]);
    handler.separate(|s| {
        for i in 0..256 {
            s.call(move |v| v[i] = i as u64);
        }
        s.sync();
        let sum: u64 = (0..256).map(|i| s.query_unsynced(|v| v[i])).sum();
        assert_eq!(sum, (0..256u64).sum());
    });
    let stats = rt.stats_snapshot();
    assert_eq!(stats.calls_enqueued, 256);
    assert_eq!(stats.syncs_performed, 1);
    assert!(stats.queries_client_executed >= 256);
    assert!(stats.sync_elision_ratio() > 0.9);
}
