//! Cross-crate integration tests for the §2.2 reasoning guarantees: the
//! behaviours the operational semantics allows are the only ones the real
//! runtime exhibits.

use scoop_qs::prelude::*;
use scoop_qs::semantics::{explore_all, fig1_program, fig5_program, fig6_program};

/// Fig. 1: only two interleavings are possible on handler `x`, both in the
/// model (checked exhaustively) and in the runtime (checked over repeated
/// racy executions).
#[test]
fn fig1_interleavings_model_and_runtime_agree() {
    // Model: exhaustive exploration of every schedule.
    let report = explore_all(fig1_program(), 200_000, 200, 10_000);
    assert!(report.deadlock_free());
    let allowed: Vec<Vec<String>> = vec![
        ["foo", "bar", "bar", "baz"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        ["bar", "baz", "foo", "bar"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    ];
    for trace in &report.finished_traces {
        assert!(allowed.contains(&trace.executed_on("x")));
    }

    // Runtime: run the same two-client program many times and check that the
    // log on x is always one client's block followed by the other's.
    for _ in 0..50 {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let x = rt.spawn_handler(Vec::<&'static str>::new());
        std::thread::scope(|scope| {
            let x1 = x.clone();
            scope.spawn(move || {
                x1.separate(|s| {
                    s.call(|log| log.push("t1.foo"));
                    s.call(|log| log.push("t1.bar"));
                });
            });
            let x2 = x.clone();
            scope.spawn(move || {
                x2.separate(|s| {
                    s.call(|log| log.push("t2.bar"));
                    s.call(|log| log.push("t2.baz"));
                });
            });
        });
        let log = x.shutdown_and_take().unwrap();
        assert!(
            log == ["t1.foo", "t1.bar", "t2.bar", "t2.baz"]
                || log == ["t2.bar", "t2.baz", "t1.foo", "t1.bar"],
            "disallowed interleaving: {log:?}"
        );
    }
}

/// Fig. 5: multi-handler reservations keep two handlers consistent, in the
/// model and in the runtime, under every optimisation level.
#[test]
fn fig5_colour_consistency_model_and_runtime() {
    let report = explore_all(fig5_program(), 200_000, 200, 10_000);
    assert!(report.deadlock_free());
    for trace in &report.finished_traces {
        assert_eq!(trace.executed_on("x").last(), trace.executed_on("y").last());
    }

    for level in OptimizationLevel::ALL {
        let rt = Runtime::with_level(level);
        let x = rt.spawn_handler(0u8);
        let y = rt.spawn_handler(0u8);
        std::thread::scope(|scope| {
            for colour in [1u8, 2u8] {
                let (x, y) = (x.clone(), y.clone());
                scope.spawn(move || {
                    for _ in 0..100 {
                        reserve((&x, &y)).run(|(sx, sy)| {
                            sx.call(move |v| *v = colour);
                            sy.call(move |v| *v = colour);
                        });
                    }
                });
            }
            let (x, y) = (x.clone(), y.clone());
            scope.spawn(move || {
                for _ in 0..100 {
                    let (a, b) =
                        reserve((&x, &y)).run(|(sx, sy)| (sx.query(|v| *v), sy.query(|v| *v)));
                    assert_eq!(a, b, "mixed colours under {level}");
                }
            });
        });
    }
}

/// Fig. 6: without queries the nested-reservation program cannot deadlock
/// under SCOOP/Qs; the model shows queries reintroduce a deadlocking
/// schedule, and the runtime completes the query-free program under the
/// queue-of-queues configuration.
#[test]
fn fig6_deadlock_freedom_without_queries() {
    let without = explore_all(fig6_program(false), 500_000, 300, 8);
    assert!(without.deadlock_free());
    let with = explore_all(fig6_program(true), 500_000, 300, 8);
    assert!(!with.deadlock_free());

    // Runtime counterpart of the query-free program, repeated to give any
    // deadlock a chance to appear (it must not).
    for _ in 0..20 {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let x = rt.spawn_handler(0u32);
        let y = rt.spawn_handler(0u32);
        std::thread::scope(|scope| {
            let (x1, y1) = (x.clone(), y.clone());
            scope.spawn(move || {
                x1.separate(|sx| {
                    y1.separate(|sy| {
                        sx.call(|v| *v += 1);
                        sy.call(|v| *v += 1);
                    });
                });
            });
            let (x2, y2) = (x.clone(), y.clone());
            scope.spawn(move || {
                y2.separate(|sy| {
                    x2.separate(|sx| {
                        sx.call(|v| *v += 1);
                        sy.call(|v| *v += 1);
                    });
                });
            });
        });
        assert_eq!(x.query_detached(|v| *v), 2);
        assert_eq!(y.query_detached(|v| *v), 2);
    }
}

/// Guarantee 2 holds under every optimisation level, including the lock-based
/// baseline: per-client blocks never interleave on a handler.
#[test]
fn per_client_blocks_never_interleave_under_any_level() {
    for level in OptimizationLevel::ALL {
        let rt = Runtime::with_level(level);
        let handler = rt.spawn_handler(Vec::<(usize, usize)>::new());
        std::thread::scope(|scope| {
            for client in 0..4 {
                let handler = handler.clone();
                scope.spawn(move || {
                    for round in 0..20 {
                        handler.separate(|s| {
                            for i in 0..10 {
                                s.call(move |log| log.push((client, round * 10 + i)));
                            }
                        });
                    }
                });
            }
        });
        let log = handler.shutdown_and_take().unwrap();
        assert_eq!(log.len(), 4 * 20 * 10);
        // Within any window belonging to one client the sequence numbers are
        // increasing, and blocks of 10 are contiguous.
        for window in log.chunks(10) {
            let owner = window[0].0;
            assert!(
                window.iter().all(|&(c, _)| c == owner),
                "block interleaved: {window:?}"
            );
            assert!(window.windows(2).all(|w| w[0].1 + 1 == w[1].1));
        }
    }
}
