//! Shared-read reservations: safety, linearisability and deadlock-breaking
//! tests across both scheduler modes and all five optimisation levels.
//!
//! The invariants under test:
//!
//! * **No torn state**: a reader can never observe the object in the middle
//!   of a command (or of a mutating client-executed query) — every `&mut`
//!   site takes the object's gate in write mode first.
//! * **Reader concurrency**: readers genuinely share the reservation (a
//!   barrier across N concurrent read blocks completes, which would
//!   deadlock if reads serialised).
//! * **Linearisability against exclusive access**: a value observed under a
//!   read reservation is never newer than what a subsequent exclusive
//!   reservation sees, and writes a client made exclusively are visible to
//!   its own later reads.
//! * **Commands are rejected** with the typed
//!   [`MailboxError::ReadOnlyReservation`] error, not silently upgraded.
//! * **Reader/writer cycles** are confirmed by the deadlock detector and
//!   broken at the (breakable) read acquisition.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use proptest::prelude::*;
use scoop_qs::prelude::*;
use scoop_qs::runtime::read;

const MODES: [SchedulerMode; 2] = [
    SchedulerMode::Dedicated,
    SchedulerMode::Pooled { workers: 4 },
];

/// The pair invariant every writer maintains *between* commands but breaks
/// *inside* them: `b == 2 * a`.  Observing `b != 2 * a` means a reader saw
/// the middle of a write.
fn check_pair(pair: &(u64, u64), context: &str) {
    assert_eq!(
        pair.1,
        2 * pair.0,
        "{context}: reader observed a torn write ({pair:?})"
    );
}

#[test]
fn readers_never_observe_torn_state_across_all_configs() {
    for level in OptimizationLevel::ALL {
        for mode in MODES {
            let context = format!("{level} / {mode}");
            let rt = Runtime::new(level.config().with_scheduler(mode));
            let h = rt.spawn_handler((0u64, 0u64));

            let writer = {
                let h = h.clone();
                std::thread::spawn(move || {
                    for _ in 0..300 {
                        // Asynchronous command: invariant broken mid-closure.
                        h.separate(|s| {
                            s.call(|p| {
                                p.0 += 1;
                                p.1 = 2 * p.0;
                            });
                        });
                    }
                })
            };
            let mutating_querier = {
                let h = h.clone();
                let context = context.clone();
                std::thread::spawn(move || {
                    for _ in 0..150 {
                        // Client-executed (on Dynamic/Static/All) mutating
                        // query: the other `&mut` site the gate must cover.
                        let observed = h.separate(|s| {
                            s.query(|p| {
                                p.0 += 1;
                                p.1 = 2 * p.0;
                                *p
                            })
                        });
                        check_pair(&observed, &context);
                    }
                })
            };
            let readers: Vec<_> = (0..3)
                .map(|_| {
                    let h = h.clone();
                    let context = context.clone();
                    std::thread::spawn(move || {
                        for _ in 0..200 {
                            reserve(&h).read().run(|r| {
                                check_pair(&r.query(|p| *p), &context);
                                check_pair(r.peek(), &context);
                            });
                        }
                    })
                })
                .collect();
            writer.join().unwrap();
            mutating_querier.join().unwrap();
            for reader in readers {
                reader.join().unwrap();
            }
            let observed = h.query_detached(|p| *p);
            assert_eq!(observed, (450, 900), "{context}");
            let snap = rt.stats_snapshot();
            assert!(
                snap.read_reservations >= 600,
                "{context}: read reservations must be counted, got {}",
                snap.read_reservations
            );
        }
    }
}

#[test]
fn readers_hold_the_reservation_concurrently() {
    // N threads park on a barrier *inside* their read blocks: completion is
    // proof the reservation is genuinely shared (serialised readers would
    // deadlock here), and the peak-reader statistic must have seen them.
    const N: usize = 4;
    for mode in MODES {
        let rt = Runtime::new(RuntimeConfig::all_optimizations().with_scheduler(mode));
        let h = rt.spawn_handler(7u64);
        let barrier = Arc::new(Barrier::new(N));
        let threads: Vec<_> = (0..N)
            .map(|_| {
                let h = h.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    reserve(&h).read().run(|r| {
                        barrier.wait();
                        r.query(|n| *n)
                    })
                })
            })
            .collect();
        for thread in threads {
            assert_eq!(thread.join().unwrap(), 7, "{mode}");
        }
        let snap = rt.stats_snapshot();
        assert!(
            snap.peak_concurrent_readers >= N as u64,
            "{mode}: peak readers {} < {N}",
            snap.peak_concurrent_readers
        );
    }
}

#[test]
fn reads_linearise_against_exclusive_access() {
    for level in OptimizationLevel::ALL {
        for mode in MODES {
            let context = format!("{level} / {mode}");
            let rt = Runtime::new(level.config().with_scheduler(mode));
            let h = rt.spawn_handler(0u64);
            let stop = Arc::new(AtomicU64::new(0));

            let writer = {
                let h = h.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while stop.load(Ordering::Acquire) == 0 {
                        h.separate(|s| s.call(|n| *n += 1));
                    }
                })
            };
            // Monotonicity: a read observation never exceeds a later
            // exclusive observation (the counter only grows).
            for _ in 0..100 {
                let under_read = reserve(&h).read().run(|r| r.query(|n| *n));
                let under_exclusive = h.separate(|s| s.query(|n| *n));
                assert!(
                    under_read <= under_exclusive,
                    "{context}: read saw {under_read}, later exclusive saw {under_exclusive}"
                );
            }
            stop.store(1, Ordering::Release);
            writer.join().unwrap();

            // Read-your-writes: a *synced* exclusive write is visible to the
            // same client's subsequent read reservation.  (The sync matters:
            // read reservations observe the object directly and do not wait
            // for commands still sitting in private queues.)
            let marker = 1_000_000u64;
            h.separate(|s| {
                s.call(move |n| *n = marker);
                s.query(|n| *n)
            });
            let seen = reserve(&h).read().run(|r| r.query(|n| *n));
            assert!(
                seen >= marker,
                "{context}: read reservation missed the client's own write ({seen})"
            );
        }
    }
}

#[test]
fn commands_through_a_read_reservation_fail_with_the_typed_error() {
    for level in [OptimizationLevel::All, OptimizationLevel::None] {
        let rt = Runtime::with_level(level);
        let h = rt.spawn_handler(5u32);
        reserve(&h).read().run(|r| {
            let err = r.call(|n| *n += 1).unwrap_err();
            assert_eq!(
                err,
                MailboxError::ReadOnlyReservation { handler: h.id() },
                "{level}"
            );
            assert!(format!("{err}").contains("read mode"), "{level}");
            let err = r.try_call(|n| *n += 1).unwrap_err();
            assert!(
                matches!(err, MailboxError::ReadOnlyReservation { .. }),
                "{level}"
            );
        });
        // The rejected commands never reached the handler.
        assert_eq!(h.query_detached(|n| *n), 5, "{level}");
        rt.stats_snapshot();
    }
}

#[test]
fn read_members_mix_with_exclusive_members_in_one_set() {
    for level in [OptimizationLevel::All, OptimizationLevel::None] {
        for mode in MODES {
            let context = format!("{level} / {mode}");
            let rt = Runtime::new(level.config().with_scheduler(mode));
            let config = rt.spawn_handler(10u64);
            let audit = rt.spawn_handler(Vec::<u64>::new());
            let threads: Vec<_> = (0..4)
                .map(|_| {
                    let (config, audit) = (config.clone(), audit.clone());
                    std::thread::spawn(move || {
                        for _ in 0..50 {
                            reserve((read(&config), &audit)).run(|(cfg, log)| {
                                let threshold = cfg.query(|t| *t);
                                log.call(move |entries| entries.push(threshold));
                            });
                        }
                    })
                })
                .collect();
            for thread in threads {
                thread.join().unwrap();
            }
            let entries = audit.query_detached(|v| v.clone());
            assert_eq!(entries.len(), 200, "{context}");
            assert!(entries.iter().all(|&t| t == 10), "{context}");
        }
    }
}

#[test]
fn wait_conditions_work_on_read_reservations() {
    for mode in MODES {
        let rt = Runtime::new(RuntimeConfig::all_optimizations().with_scheduler(mode));
        let h = rt.spawn_handler(0u64);
        let feeder = {
            let h = h.clone();
            std::thread::spawn(move || {
                for _ in 0..100 {
                    h.separate(|s| s.call(|n| *n += 1));
                }
            })
        };
        // Single read member...
        let seen = reserve(&h)
            .read()
            .when(|n: &u64| *n >= 100)
            .run(|r| r.query(|n| *n));
        assert!(seen >= 100, "{mode}: condition ran before it held ({seen})");
        // ...and a read member inside a guarded mixed tuple.
        let sink = rt.spawn_handler(0u64);
        let copied = reserve((read(&h), &sink))
            .when(|n: &u64, _s: &u64| *n >= 100)
            .run(|(r, s)| {
                let value = r.query(|n| *n);
                s.call(move |t| *t = value);
                s.query(|t| *t)
            });
        assert!(copied >= 100, "{mode}");
        feeder.join().unwrap();
    }
}

#[test]
fn slice_reservations_downgrade_to_read() {
    let rt = Runtime::new(RuntimeConfig::all_optimizations());
    let handlers: Vec<_> = (0..5).map(|i| rt.spawn_handler(i as u64)).collect();
    let total = reserve(&handlers)
        .read()
        .run(|guards| guards.iter().map(|g| g.query(|v| *v)).sum::<u64>());
    assert_eq!(total, (0..5).sum());
    // Wait conditions see the whole slice.
    let all_positive = reserve(&handlers[1..])
        .read()
        .when(|objects: &[&u64]| objects.iter().all(|v| **v >= 1))
        .run(|guards| guards.len());
    assert_eq!(all_positive, 4);
}

#[test]
#[should_panic(expected = "same handler twice")]
fn duplicate_handlers_rejected_across_modes() {
    let rt = Runtime::new(RuntimeConfig::all_optimizations());
    let h = rt.spawn_handler(0u8);
    // Exclusive + read of the same handler is as self-deadlocking as
    // exclusive twice: rejected eagerly, whatever the member modes.
    reserve((read(&h), &h)).run(|_| ());
}

/// The deterministic reader/writer cycle, confirmed and broken:
///
/// * client X holds `read(B)` and blocks acquiring `read(A)` — handler A is
///   mid-batch, so A's gate is write-held (`ReadWait` X → A);
/// * handler A's running call performs a nested query against B and parks
///   on its handoff (`Query` A → B);
/// * handler B cannot apply the batch containing that query: its write gate
///   is blocked behind X's read hold (`WriterWait` B → X).
///
/// The only breakable edge on the cycle is X's read acquisition: `Break`
/// fails it, X panics with [`MailboxError::DeadlockBroken`], its unwind
/// releases `read(B)`, and the whole chain drains.
#[test]
fn reader_writer_cycle_is_broken_at_the_read_acquisition() {
    for mode in MODES {
        let rt = Runtime::new(
            RuntimeConfig::all_optimizations()
                .with_scheduler(mode)
                .with_deadlock_policy(DeadlockPolicy::Break),
        );
        let a = rt.spawn_handler(0u64);
        let b = rt.spawn_handler(0u64);

        let x_holds_read_b = Arc::new(scoop_qs::sync::Event::new());
        let a_is_applying = Arc::new(scoop_qs::sync::Event::new());

        // Client X: holds read(B), then blocks acquiring read(A).
        let client_x = {
            let (a, b) = (a.clone(), b.clone());
            let x_holds_read_b = Arc::clone(&x_holds_read_b);
            let a_is_applying = Arc::clone(&a_is_applying);
            std::thread::spawn(move || {
                reserve(&b).read().run(|rb| {
                    x_holds_read_b.set();
                    // Only attempt read(A) once handler A provably holds its
                    // write gate, so the acquisition genuinely blocks.
                    a_is_applying.wait();
                    reserve(&a)
                        .read()
                        .run(|ra| ra.query(|n| *n) + rb.query(|n| *n))
                })
            })
        };

        // Handler A: a logged call that (while A's write gate is held for
        // the whole batch) queries B — which can never answer, because B's
        // writer is blocked behind X.
        x_holds_read_b.wait();
        let a_signal = Arc::clone(&a_is_applying);
        let b_for_a = b.clone();
        a.call_detached(move |n| {
            a_signal.set();
            *n = reserve(&b_for_a).run(|sb| sb.query(|m| *m + 1));
        });

        // X must be failed with the typed break error...
        let payload = client_x
            .join()
            .expect_err("client X must be broken out of the deadlock");
        let error = payload
            .downcast_ref::<MailboxError>()
            .expect("break surfaces as MailboxError");
        assert_eq!(
            *error,
            MailboxError::DeadlockBroken { handler: a.id() },
            "{mode}"
        );

        // ...after which every party drains: A's nested query completes.
        assert_eq!(a.query_detached(|n| *n), 1, "{mode}");
        assert_eq!(b.query_detached(|n| *n), 0, "{mode}");

        // The report names the reader/writer cycle.
        let reports = rt.deadlock_reports();
        assert!(!reports.is_empty(), "{mode}: cycle must be reported");
        let kinds: Vec<_> = reports.iter().flat_map(|r| r.kinds()).collect();
        assert!(
            kinds.contains(&DeadlockEdgeKind::ReadWait),
            "{mode}: {kinds:?}"
        );
        assert!(
            kinds.contains(&DeadlockEdgeKind::WriterWait),
            "{mode}: {kinds:?}"
        );
        let snap = rt.stats_snapshot();
        assert!(snap.deadlocks_broken >= 1, "{mode}");
        assert!(
            snap.writer_waits >= 1,
            "{mode}: B's blocked writer must be counted"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: under any mix of reader/writer interleavings the pair
    /// invariant holds for every read observation and the final state
    /// matches the write count exactly.
    #[test]
    fn random_reader_writer_mixes_stay_consistent(
        writes in 1usize..120,
        readers in 1usize..4,
        reads_per_reader in 1usize..60,
        pooled in 0usize..2,
    ) {
        let mode = if pooled == 1 { SchedulerMode::Pooled { workers: 2 } } else { SchedulerMode::Dedicated };
        let rt = Runtime::new(RuntimeConfig::all_optimizations().with_scheduler(mode));
        let h = rt.spawn_handler((0u64, 0u64));
        let writer = {
            let h = h.clone();
            std::thread::spawn(move || {
                for _ in 0..writes {
                    h.separate(|s| s.call(|p| { p.0 += 1; p.1 = 2 * p.0; }));
                }
            })
        };
        let reader_threads: Vec<_> = (0..readers).map(|_| {
            let h = h.clone();
            std::thread::spawn(move || {
                for _ in 0..reads_per_reader {
                    let seen = reserve(&h).read().run(|r| r.query(|p| *p));
                    prop_assert_eq!(seen.1, 2 * seen.0, "torn read: {:?}", seen);
                }
                Ok(())
            })
        }).collect();
        writer.join().unwrap();
        for reader in reader_threads {
            reader.join().unwrap()?;
        }
        prop_assert_eq!(h.query_detached(|p| *p), (writes as u64, 2 * writes as u64));
    }
}
