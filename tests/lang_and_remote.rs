//! Cross-crate integration tests for the surface language (`qs-lang`) and the
//! serialized-queue transport (`qs-remote`) running against the rest of the
//! system through the facade crate.

use scoop_qs::lang::{compile, programs, run_compiled, QueryStrategy};
use scoop_qs::prelude::*;
use scoop_qs::remote::{ChannelConfig, MethodRegistry, RemoteNode, RemoteObject, WireValue};
use scoop_qs::semantics::{check_handler_log, uniform_expectation, AppliedCall};

fn all_levels() -> [OptimizationLevel; 5] {
    [
        OptimizationLevel::None,
        OptimizationLevel::Dynamic,
        OptimizationLevel::Static,
        OptimizationLevel::QoQ,
        OptimizationLevel::All,
    ]
}

#[test]
fn language_programs_agree_across_levels_and_strategies() {
    let cases: Vec<(String, Vec<String>)> = vec![
        (programs::COUNTER.to_string(), programs::counter_expected()),
        (
            programs::BANK_TRANSFER.to_string(),
            programs::bank_transfer_expected(),
        ),
        (programs::copy_loop(200), programs::copy_loop_expected(200)),
        (
            programs::TWO_STAGE_PIPELINE.to_string(),
            programs::two_stage_pipeline_expected(),
        ),
    ];
    for (source, expected) in cases {
        let compiled = compile(&source).expect("program compiles");
        for level in all_levels() {
            for strategy in [
                QueryStrategy::RuntimeManaged,
                QueryStrategy::NaiveSync,
                compiled.static_strategy(),
            ] {
                let rt = Runtime::new(level.config());
                let output = run_compiled(&compiled, &rt, strategy).expect("program runs");
                assert_eq!(output.printed, expected, "level {level}");
            }
        }
    }
}

#[test]
fn static_pass_reduces_sync_round_trips_without_changing_results() {
    let compiled = compile(&programs::copy_loop(2_000)).expect("compiles");

    let naive_rt = Runtime::new(OptimizationLevel::QoQ.config());
    let naive = run_compiled(&compiled, &naive_rt, QueryStrategy::NaiveSync).unwrap();

    let static_rt = Runtime::new(OptimizationLevel::QoQ.config());
    let optimized = run_compiled(&compiled, &static_rt, compiled.static_strategy()).unwrap();

    assert_eq!(naive.printed, optimized.printed);
    assert!(
        naive.stats.syncs_performed > 2_000,
        "naive codegen should sync per element, saw {}",
        naive.stats.syncs_performed
    );
    assert!(
        optimized.stats.syncs_performed <= 2,
        "static coalescing should hoist the loop sync, saw {}",
        optimized.stats.syncs_performed
    );
}

#[test]
fn dynamic_runtime_coalescing_matches_static_elision_on_copy_loops() {
    // The paper's observation behind Table 1: for regular query loops the
    // Dynamic and Static techniques both collapse the round-trips; Dynamic
    // does it at runtime, Static at compile time.
    let compiled = compile(&programs::copy_loop(1_000)).expect("compiles");

    let dynamic_rt = Runtime::new(OptimizationLevel::Dynamic.config());
    let dynamic = run_compiled(&compiled, &dynamic_rt, QueryStrategy::NaiveSync).unwrap();

    let static_rt = Runtime::new(OptimizationLevel::Static.config());
    let statically = run_compiled(&compiled, &static_rt, compiled.static_strategy()).unwrap();

    assert_eq!(dynamic.printed, statically.printed);
    assert!(dynamic.stats.syncs_performed <= 2);
    assert!(statically.stats.syncs_performed <= 2);
    assert!(dynamic.stats.syncs_elided >= 1_000);
}

#[test]
fn remote_nodes_uphold_the_reasoning_guarantees() {
    const CLIENTS: u64 = 3;
    const BLOCKS: u64 = 4;
    const CALLS: u64 = 15;

    let registry = MethodRegistry::<Vec<AppliedCall>>::new().with("record", |log, args| {
        let client = args[0].as_int()? as u64;
        let block = args[1].as_int()? as u64;
        let seq = args[2].as_int()? as u64;
        log.push(AppliedCall::new(client, block, seq));
        Ok(WireValue::Unit)
    });
    let node = RemoteNode::spawn(
        "recorder",
        RemoteObject::new(Vec::new(), registry),
        ChannelConfig::fast(),
    );

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let proxy = node.proxy(&format!("client-{client}"));
            scope.spawn(move || {
                for block in 0..BLOCKS {
                    proxy.separate(|s| {
                        for seq in 0..CALLS {
                            s.call(
                                "record",
                                vec![
                                    WireValue::Int(client as i64),
                                    WireValue::Int(block as i64),
                                    WireValue::Int(seq as i64),
                                ],
                            )
                            .unwrap();
                        }
                    });
                }
            });
        }
    });

    let log = node.shutdown_and_take().expect("node state");
    assert_eq!(log.len(), (CLIENTS * BLOCKS * CALLS) as usize);
    let expected = uniform_expectation(CLIENTS, BLOCKS, CALLS);
    let report = check_handler_log(&log, Some(&expected));
    assert!(
        report.conforms(),
        "remote node violated the guarantees: {:?}",
        report.violations
    );
}

#[test]
fn in_memory_and_remote_counters_compute_the_same_result() {
    // The same workload expressed against the shared-memory runtime and the
    // serialized transport must agree — the execution model is the same, only
    // the private-queue carrier differs (§7).
    const PER_CLIENT: i64 = 250;

    // In-memory.
    let rt = Runtime::fully_optimized();
    let counter = rt.spawn_handler(0i64);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let counter = counter.clone();
            scope.spawn(move || {
                counter.separate(|s| {
                    for _ in 0..PER_CLIENT {
                        s.call(|n| *n += 1);
                    }
                });
            });
        }
    });
    let local_total = counter.query_detached(|n| *n);

    // Remote.
    let node = RemoteNode::spawn(
        "counter",
        RemoteObject::new(0i64, scoop_qs::remote::counter_registry()),
        ChannelConfig::fast(),
    );
    std::thread::scope(|scope| {
        for client in 0..4 {
            let proxy = node.proxy(&format!("c{client}"));
            scope.spawn(move || {
                proxy.separate(|s| {
                    for _ in 0..PER_CLIENT {
                        s.call("add", vec![WireValue::Int(1)]).unwrap();
                    }
                });
            });
        }
    });
    let remote_total = node.shutdown_and_take().unwrap();

    assert_eq!(local_total, 4 * PER_CLIENT);
    assert_eq!(remote_total, 4 * PER_CLIENT);
}
