//! Integration tests for the unified `reserve()` API: wait conditions at
//! arity ≥ 3 (which the old arity-specialised functions could not express),
//! timeout behaviour on both runtime configurations, and pipelined
//! asynchronous queries.

use scoop_qs::prelude::*;

/// A three-handler guarded invariant under both the queue-of-queues and the
/// lock-based configuration: a mover shifts units between three cells but
/// only when the joint invariant allows it, and every observer reserving all
/// three sees the conserved total.
#[test]
fn three_handler_wait_condition_on_both_configurations() {
    for level in [OptimizationLevel::All, OptimizationLevel::None] {
        let rt = Runtime::with_level(level);
        let a = rt.spawn_handler(30i64);
        let b = rt.spawn_handler(0i64);
        let c = rt.spawn_handler(0i64);

        let mover = {
            let (a, b, c) = (a.clone(), b.clone(), c.clone());
            std::thread::spawn(move || {
                for _ in 0..10 {
                    // Move 3 units a → b → c, but only while `a` can pay.
                    reserve((&a, &b, &c))
                        .when(|a: &i64, _b: &i64, _c: &i64| *a >= 3)
                        .run(|(sa, sb, sc)| {
                            sa.call(|v| *v -= 3);
                            sb.call(|v| *v += 2);
                            sc.call(|v| *v += 1);
                        });
                }
            })
        };
        let observer = {
            let (a, b, c) = (a.clone(), b.clone(), c.clone());
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let total = reserve((&a, &b, &c))
                        .run(|(sa, sb, sc)| sa.query(|v| *v) + sb.query(|v| *v) + sc.query(|v| *v));
                    assert_eq!(total, 30, "level {level}: total must be conserved");
                }
            })
        };
        mover.join().unwrap();
        observer.join().unwrap();
        assert_eq!(a.query_detached(|v| *v), 0, "level {level}");
        assert_eq!(b.query_detached(|v| *v), 20, "level {level}");
        assert_eq!(c.query_detached(|v| *v), 10, "level {level}");
    }
}

/// The timeout path at arity 3, on both configurations: an unreachable joint
/// condition must report a bounded-retry timeout, and the handlers must stay
/// fully usable afterwards.
#[test]
fn three_handler_wait_condition_times_out_on_both_configurations() {
    for level in [OptimizationLevel::All, OptimizationLevel::None] {
        let rt = Runtime::with_level(level);
        let a = rt.spawn_handler(0u32);
        let b = rt.spawn_handler(0u32);
        let c = rt.spawn_handler(0u32);

        let result = reserve((&a, &b, &c))
            .when(|a: &u32, b: &u32, c: &u32| *a + *b + *c > 1_000)
            .timeout(WaitConfig::bounded(6))
            .try_run(|_| ());
        assert_eq!(result, Err(WaitTimeout { attempts: 6 }), "level {level}");

        // Wall-clock timeouts fire too.
        let clocked = reserve((&a, &b, &c))
            .when(|a: &u32, _: &u32, _: &u32| *a > 0)
            .timeout(WaitConfig::wall_clock(std::time::Duration::from_millis(10)))
            .try_run(|_| ());
        assert!(
            clocked.is_err(),
            "level {level}: wall-clock timeout must fire"
        );

        // The failed reservations released everything: normal work proceeds.
        reserve((&a, &b, &c)).run(|(sa, sb, sc)| {
            sa.call(|v| *v = 1);
            sb.call(|v| *v = 2);
            sc.call(|v| *v = 3);
        });
        assert_eq!(a.query_detached(|v| *v), 1, "level {level}");
        assert_eq!(c.query_detached(|v| *v), 3, "level {level}");
        assert!(rt.stats_snapshot().wait_condition_retries >= 6);
    }
}

/// Pipelined queries overlap round-trips against several handlers and remain
/// valid after their separate block ended, on every optimisation level.
#[test]
fn query_async_overlaps_handlers_on_every_level() {
    for level in OptimizationLevel::ALL {
        let rt = Runtime::with_level(level);
        let handlers: Vec<_> = (0..4).map(|i| rt.spawn_handler(i as u64)).collect();

        let tokens: Vec<QueryToken<u64>> = reserve(&handlers).run(|guards| {
            guards
                .iter_mut()
                .map(|g| g.query_async(|v| *v * 10))
                .collect()
        });
        let collected: Vec<u64> = tokens.into_iter().map(QueryToken::wait).collect();
        assert_eq!(collected, vec![0, 10, 20, 30], "level {level}");

        let snap = rt.stats_snapshot();
        assert_eq!(snap.queries_pipelined, 4, "level {level}");
        assert_eq!(
            snap.queries_client_executed + snap.queries_handler_executed,
            0,
            "level {level}: pipelined queries are counted separately"
        );
    }
}

/// `try_take` never blocks and eventually observes the deposited result.
#[test]
fn query_async_try_take_polls_without_blocking() {
    let rt = Runtime::fully_optimized();
    let cell = rt.spawn_handler(21u64);
    let mut token = reserve(&cell).run(|g| g.query_async(|v| *v * 2));
    let mut polls = 0u64;
    let value = loop {
        match token.try_take() {
            Some(value) => break value,
            None => {
                polls += 1;
                std::thread::yield_now();
            }
        }
    };
    assert_eq!(value, 42);
    assert!(token.try_take().is_none());
    let _ = polls; // may legitimately be zero if the handler was fast
}

/// Mixing a guarded tuple reservation with plain reservations of the same
/// handlers from other threads keeps the invariant observable.
#[test]
fn guarded_and_unguarded_reservations_compose() {
    let rt = Runtime::fully_optimized();
    let x = rt.spawn_handler(0i64);
    let y = rt.spawn_handler(0i64);

    let bumper = {
        let (x, y) = (x.clone(), y.clone());
        std::thread::spawn(move || {
            for _ in 0..100 {
                reserve((&x, &y)).run(|(sx, sy)| {
                    sx.call(|v| *v += 1);
                    sy.call(|v| *v += 1);
                });
            }
        })
    };
    let seen = reserve((&x, &y))
        .when(|x: &i64, y: &i64| *x >= 100 && *y >= 100)
        .run(|(sx, sy)| (sx.query(|v| *v), sy.query(|v| *v)));
    assert_eq!(seen.0, seen.1, "joint condition saw a consistent pair");
    bumper.join().unwrap();
}
