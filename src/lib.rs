//! # scoop-qs — a reproduction of "Efficient and Reasonable Object-Oriented Concurrency" (PPoPP 2015)
//!
//! This facade crate re-exports the workspace members so that downstream
//! users (and the examples and integration tests in this repository) can use
//! a single dependency.
//!
//! * [`runtime`] — the SCOOP/Qs runtime: handlers, separate blocks,
//!   asynchronous calls, queries, queue-of-queues, sync-coalescing, wait
//!   conditions and postconditions.
//! * [`semantics`] — the executable operational semantics of the paper's
//!   Fig. 3 inference rules, deadlock analysis (§2.5) and conformance
//!   checking of observed executions against the §2.2 guarantees.
//! * [`compiler`] — the mini-IR, control-flow graph and the static
//!   sync-coalescing pass of §3.4.2.
//! * [`lang`] — a miniature SCOOP surface language (lexer, parser, checker,
//!   lowering through the static pass, interpreter on the runtime).
//! * [`deadlock`] — the live wait-for registry and detector behind the
//!   runtime's `DeadlockPolicy` knob (queries, blocked bounded pushes,
//!   serving commitments, reservation retries).
//! * [`remote`] — serialized private queues over byte channels and real
//!   sockets (TCP / Unix-domain): the §7 "sockets as the underlying
//!   implementation" direction.
//! * [`cluster`] — multi-node SCOOP/Qs: consistent-hash handler placement,
//!   node servers hosting per-user handlers on the pooled runtime, and a
//!   routing cluster client.
//! * [`queues`], [`sync`], [`exec`] — the substrates the runtime is built on.
//! * [`baselines`] — shared-memory, channel, actor and STM paradigm
//!   baselines standing in for C++/TBB, Go, Erlang and Haskell.
//! * [`workloads`] — the Cowichan parallel suite and the coordination
//!   benchmarks from the paper's evaluation.
//!
//! ## Quickstart
//!
//! Handlers own objects; clients reserve one or more handlers with the
//! composable [`runtime::reserve`] entry point and interact with the objects
//! through the reservation guards:
//!
//! ```
//! use scoop_qs::prelude::*;
//!
//! let rt = Runtime::new(RuntimeConfig::all_optimizations());
//! let source = rt.spawn_handler(100i64);
//! let target = rt.spawn_handler(0i64);
//!
//! // Atomically reserve both accounts, but only once the source can afford
//! // the transfer; give up after 1000 failed attempts.
//! let moved = reserve((&source, &target))
//!     .when(|s: &i64, _t: &i64| *s >= 10)
//!     .timeout(WaitConfig::bounded(1000))
//!     .try_run(|(s, t)| {
//!         s.call(|balance| *balance -= 10);
//!         t.call(|balance| *balance += 10);
//!         t.query(|balance| *balance)
//!     });
//! assert_eq!(moved, Ok(10));
//! ```

pub use qs_baselines as baselines;
pub use qs_cluster as cluster;
pub use qs_compiler as compiler;
pub use qs_deadlock as deadlock;
pub use qs_exec as exec;
pub use qs_lang as lang;
pub use qs_obs as obs;
pub use qs_queues as queues;
pub use qs_remote as remote;
pub use qs_runtime as runtime;
pub use qs_semantics as semantics;
pub use qs_sync as sync;
pub use qs_workloads as workloads;

/// Convenience prelude exposing the most common runtime API items.
pub mod prelude {
    pub use qs_runtime::{
        read, reserve, DeadlockEdgeKind, DeadlockPolicy, DeadlockReport, GuardedReservation,
        Handler, MailboxError, MailboxFull, ObservabilityMode, OptimizationLevel, QueryToken, Read,
        ReadSeparate, Reservation, ReservationSet, Runtime, RuntimeConfig, RuntimeStats,
        SchedulerMode, Separate, WaitCondition, WaitConfig, WaitTimeout,
    };
}
