//! # scoop-qs — a reproduction of "Efficient and Reasonable Object-Oriented Concurrency" (PPoPP 2015)
//!
//! This facade crate re-exports the workspace members so that downstream
//! users (and the examples and integration tests in this repository) can use
//! a single dependency.
//!
//! * [`runtime`] — the SCOOP/Qs runtime: handlers, separate blocks,
//!   asynchronous calls, queries, queue-of-queues, sync-coalescing, wait
//!   conditions and postconditions.
//! * [`semantics`] — the executable operational semantics of the paper's
//!   Fig. 3 inference rules, deadlock analysis (§2.5) and conformance
//!   checking of observed executions against the §2.2 guarantees.
//! * [`compiler`] — the mini-IR, control-flow graph and the static
//!   sync-coalescing pass of §3.4.2.
//! * [`lang`] — a miniature SCOOP surface language (lexer, parser, checker,
//!   lowering through the static pass, interpreter on the runtime).
//! * [`remote`] — serialized private queues over byte channels: the §7
//!   "sockets as the underlying implementation" direction.
//! * [`queues`], [`sync`], [`exec`] — the substrates the runtime is built on.
//! * [`baselines`] — shared-memory, channel, actor and STM paradigm
//!   baselines standing in for C++/TBB, Go, Erlang and Haskell.
//! * [`workloads`] — the Cowichan parallel suite and the coordination
//!   benchmarks from the paper's evaluation.

pub use qs_baselines as baselines;
pub use qs_compiler as compiler;
pub use qs_exec as exec;
pub use qs_lang as lang;
pub use qs_queues as queues;
pub use qs_remote as remote;
pub use qs_runtime as runtime;
pub use qs_semantics as semantics;
pub use qs_sync as sync;
pub use qs_workloads as workloads;

/// Convenience prelude exposing the most common runtime API items.
pub mod prelude {
    pub use qs_runtime::{
        separate2, separate2_when, separate3, separate_all, separate_when, Handler,
        OptimizationLevel, Runtime, RuntimeConfig, RuntimeStats, Separate,
    };
}
