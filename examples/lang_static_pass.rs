//! End-to-end use of the qs-lang front end: compile a SCOOP-style program,
//! run the static sync-coalescing pass (§3.4.2), and execute it on the real
//! runtime under the naive and the optimised code-generation strategies,
//! comparing how many sync round-trips each pays.
//!
//! The second half demonstrates the effect-inference pass: the per-handler
//! effect table on the IR, the automatic `.read()` downgrade of a proven
//! read-only block in a surface program (with its structured diagnostics),
//! and the unified QS-W002 deadlock lint from the static semantics model.
//!
//! Run with `cargo run --example lang_static_pass`.

use scoop_qs::compiler::{function_effects, read_downgrade, Function};
use scoop_qs::lang::{compile, programs, run_compiled, QueryStrategy};
use scoop_qs::prelude::*;
use scoop_qs::semantics::{assess_with_mailbox_capacity, assessment_diagnostics, Program, Stmt};

fn main() {
    // The Fig. 14 situation: a client copies an array out of a handler one
    // element at a time; naive code generation pays one sync per element.
    let source = programs::copy_loop(10_000);
    let compiled = compile(&source).expect("program compiles");

    println!(
        "static pass: {} sync site(s) in naive code, {} removed by coalescing",
        compiled.lowered.report.syncs_before,
        compiled.lowered.report.syncs_removed()
    );

    // Run the same compiled program twice on identical runtimes (QoQ
    // configuration, no dynamic coalescing, so the difference is exactly the
    // static pass).
    let naive_rt = Runtime::new(OptimizationLevel::QoQ.config());
    let naive = run_compiled(&compiled, &naive_rt, QueryStrategy::NaiveSync).expect("naive run");

    let static_rt = Runtime::new(OptimizationLevel::QoQ.config());
    let optimized =
        run_compiled(&compiled, &static_rt, compiled.static_strategy()).expect("optimised run");

    assert_eq!(
        naive.printed, optimized.printed,
        "optimisation must not change results"
    );
    println!("program output: {:?}", naive.printed);
    println!(
        "sync round-trips — naive codegen: {}, after static sync-coalescing: {}",
        naive.stats.syncs_performed, optimized.stats.syncs_performed
    );
    println!(
        "speed of light: the {}-element copy loop needs only {} round-trip(s) once coalesced",
        10_000, optimized.stats.syncs_performed
    );

    // The bank-transfer program exercises contracts and multi-handler blocks.
    let bank = compile(programs::BANK_TRANSFER).expect("bank program compiles");
    let rt = Runtime::fully_optimized();
    let output = run_compiled(&bank, &rt, QueryStrategy::RuntimeManaged).expect("bank run");
    println!("bank transfer output: {:?}", output.printed);
    assert_eq!(output.printed[0], "1000", "total balance is conserved");

    // ---- The effect-inference pass ------------------------------------

    // On the IR: the per-handler effect table of the sync-free Fig. 14 loop
    // (Pure < Read < Write), and the read downgrade it licenses.
    let loop_fn = Function::fig14_loop(4, false);
    println!("\neffect table for `{}`:", loop_fn.name);
    for (handler, effect) in function_effects(&loop_fn) {
        println!("  handler {handler}: {effect}");
    }
    let downgrade = read_downgrade(&loop_fn);
    for diagnostic in downgrade.diagnostics() {
        println!("  {diagnostic}");
    }
    assert!(downgrade.is_downgraded(0), "the copy loop is read-only");

    // On the surface language: the read-mostly sensor program.  The checker
    // proves the query-only block read-only (QS-N001) and, with `auto_read`
    // on, the interpreter reserves it in shared-read mode — zero queue
    // crossings for the reads, identical output.
    let hot = compile(programs::HOT_READS).expect("hot-reads program compiles");
    println!("\neffect lints for the hot-reads program:");
    for diagnostic in hot.diagnostics() {
        println!("  {diagnostic}");
    }
    println!("machine-readable: {}", hot.diagnostics_json());

    let auto_rt = Runtime::fully_optimized();
    let auto = run_compiled(&hot, &auto_rt, QueryStrategy::RuntimeManaged).expect("auto run");
    let exclusive_rt = Runtime::new(OptimizationLevel::All.config().with_auto_read(false));
    let exclusive =
        run_compiled(&hot, &exclusive_rt, QueryStrategy::RuntimeManaged).expect("exclusive run");
    assert_eq!(
        auto.printed, exclusive.printed,
        "downgrade preserves results"
    );
    println!(
        "hot reads — output {:?}; read reservations: {} with auto-read, {} without",
        auto.printed, auto.stats.read_reservations, exclusive.stats.read_reservations
    );
    assert!(
        auto.stats.read_reservations > 0,
        "inferred block reserved in read mode"
    );
    assert_eq!(exclusive.stats.read_reservations, 0);

    // And the unified deadlock lint: two readers acquiring each other's held
    // gate cross-wait under the writer-preferring gate; the static model
    // reports the hazard with the same edge kinds as the runtime monitor,
    // as a QS-W002 diagnostic alongside the effect lints.
    let crossed = vec![
        Program::passive("x"),
        Program::passive("y"),
        Program::new(
            "c1",
            vec![Stmt::separate_read(
                "x",
                vec![Stmt::separate_read("y", vec![])],
            )],
        ),
        Program::new(
            "c2",
            vec![Stmt::separate_read(
                "y",
                vec![Stmt::separate_read("x", vec![])],
            )],
        ),
    ];
    let assessment = assess_with_mailbox_capacity(&crossed, None);
    println!("\nstatic deadlock lint for crossed read reservations:");
    for diagnostic in assessment_diagnostics(&assessment) {
        println!("  {diagnostic}");
    }
    assert!(
        assessment.deadlock_possible(),
        "crossed gates must be flagged"
    );
}
