//! End-to-end use of the qs-lang front end: compile a SCOOP-style program,
//! run the static sync-coalescing pass (§3.4.2), and execute it on the real
//! runtime under the naive and the optimised code-generation strategies,
//! comparing how many sync round-trips each pays.
//!
//! Run with `cargo run --example lang_static_pass`.

use scoop_qs::lang::{compile, programs, run_compiled, QueryStrategy};
use scoop_qs::prelude::*;

fn main() {
    // The Fig. 14 situation: a client copies an array out of a handler one
    // element at a time; naive code generation pays one sync per element.
    let source = programs::copy_loop(10_000);
    let compiled = compile(&source).expect("program compiles");

    println!(
        "static pass: {} sync site(s) in naive code, {} removed by coalescing",
        compiled.lowered.report.syncs_before,
        compiled.lowered.report.syncs_removed()
    );

    // Run the same compiled program twice on identical runtimes (QoQ
    // configuration, no dynamic coalescing, so the difference is exactly the
    // static pass).
    let naive_rt = Runtime::new(OptimizationLevel::QoQ.config());
    let naive = run_compiled(&compiled, &naive_rt, QueryStrategy::NaiveSync).expect("naive run");

    let static_rt = Runtime::new(OptimizationLevel::QoQ.config());
    let optimized =
        run_compiled(&compiled, &static_rt, compiled.static_strategy()).expect("optimised run");

    assert_eq!(
        naive.printed, optimized.printed,
        "optimisation must not change results"
    );
    println!("program output: {:?}", naive.printed);
    println!(
        "sync round-trips — naive codegen: {}, after static sync-coalescing: {}",
        naive.stats.syncs_performed, optimized.stats.syncs_performed
    );
    println!(
        "speed of light: the {}-element copy loop needs only {} round-trip(s) once coalesced",
        10_000, optimized.stats.syncs_performed
    );

    // The bank-transfer program exercises contracts and multi-handler blocks.
    let bank = compile(programs::BANK_TRANSFER).expect("bank program compiles");
    let rt = Runtime::fully_optimized();
    let output = run_compiled(&bank, &rt, QueryStrategy::RuntimeManaged).expect("bank run");
    println!("bank transfer output: {:?}", output.printed);
    assert_eq!(output.printed[0], "1000", "total balance is conserved");
}
