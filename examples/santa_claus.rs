//! The Santa Claus problem (Trono, 1994) on event-driven wait conditions.
//!
//! Santa sleeps until either all nine reindeer are back from vacation
//! (deliver toys) or three elves queue up with questions (help them), with
//! reindeer taking priority.  It is the classic stress test for condition
//! synchronisation: three species of client park on overlapping disjunctive
//! conditions over one shared state, and every state change may wake a
//! different subset of them.
//!
//! In SCOOP/Qs the whole coordination problem is three wait conditions on a
//! single `NorthPole` handler:
//!
//! * Santa: `reserve(&np).when(|s| s.reindeer_back == 9 || s.elves_queued >= 3)`
//!   — the choice between the two duties (and reindeer priority) is made
//!   *under the reservation*, so it cannot race arrivals.
//! * A reindeer: arrive, then `when(|s| s.deliveries > my_round)` — park
//!   until this round's sleigh run is done.
//! * An elf: `when(|s| s.elves_queued < 3)` — park while a full group is
//!   waiting for Santa, so groups are exactly three.
//!
//! Every waiter parks on the handler's guard-waiter registry and is
//! signalled when a block completes on it; nobody polls.  The example runs
//! the season on both scheduler modes and asserts the exact toy/question
//! accounting — and that the waiters genuinely parked and were woken by
//! signals (`guard_wakeups`), not by timers.
//!
//! Run with a hard timeout in CI: a lost wake-up turns this example into a
//! silent hang.

use std::time::Duration;

use scoop_qs::prelude::*;

const REINDEER: u32 = 9;
const DELIVERIES: u32 = 5;
const ELVES: u32 = 6;
const QUESTIONS_PER_ELF: u32 = 5;
/// Elves are helped in groups of exactly three.
const GROUPS: u32 = ELVES * QUESTIONS_PER_ELF / 3;

/// The shared state Santa and his helpers coordinate through.
#[derive(Default)]
struct NorthPole {
    /// Reindeer back from vacation, waiting at the stable (0..=9).
    reindeer_back: u32,
    /// Elves queued at Santa's door with a question (0..=3).
    elves_queued: u32,
    /// Completed sleigh runs.
    deliveries: u32,
    /// Elf groups helped.
    groups_helped: u32,
}

fn run_season(mode: SchedulerMode) {
    let rt = Runtime::new(RuntimeConfig::all_optimizations().with_scheduler(mode));
    let north_pole = rt.spawn_handler(NorthPole::default());

    let reindeer: Vec<_> = (0..REINDEER)
        .map(|id| {
            let np = north_pole.clone();
            std::thread::spawn(move || {
                for round in 0..DELIVERIES {
                    // Vacation lengths differ, so the ninth arrival — the
                    // one that makes Santa's condition true — varies.
                    std::thread::sleep(Duration::from_millis(u64::from((id + round) % 4 + 1)));
                    np.call_detached(|s| s.reindeer_back += 1);
                    // Park until this round's delivery is done.
                    reserve(&np)
                        .when(move |s: &NorthPole| s.deliveries > round)
                        .run(|_| ());
                }
            })
        })
        .collect();

    let elves: Vec<_> = (0..ELVES)
        .map(|id| {
            let np = north_pole.clone();
            std::thread::spawn(move || {
                for question in 0..QUESTIONS_PER_ELF {
                    std::thread::sleep(Duration::from_millis(u64::from((id + question) % 3 + 1)));
                    // Join the queue only while there is room: groups are
                    // exactly three, enforced by the wait condition.
                    reserve(&np)
                        .when(|s: &NorthPole| s.elves_queued < 3)
                        .run(|guard| guard.call(|s| s.elves_queued += 1));
                }
            })
        })
        .collect();

    // Santa: sleep until there is work, prefer the reindeer, repeat until
    // the season is over.
    let (mut delivered, mut helped) = (0, 0);
    while delivered < DELIVERIES || helped < GROUPS {
        let (now_delivered, now_helped) = reserve(&north_pole)
            .when(|s: &NorthPole| s.reindeer_back == REINDEER || s.elves_queued >= 3)
            .run(|guard| {
                guard.call(|s| {
                    if s.reindeer_back == REINDEER {
                        s.reindeer_back = 0;
                        s.deliveries += 1;
                    } else {
                        s.elves_queued -= 3;
                        s.groups_helped += 1;
                    }
                });
                guard.query(|s| (s.deliveries, s.groups_helped))
            });
        (delivered, helped) = (now_delivered, now_helped);
    }

    for r in reindeer {
        r.join().unwrap();
    }
    for e in elves {
        e.join().unwrap();
    }

    let season = north_pole.query_detached(|s| (s.deliveries, s.groups_helped, s.elves_queued));
    assert_eq!(season, (DELIVERIES, GROUPS, 0), "{mode}: season accounting");
    let snapshot = rt.stats_snapshot();
    assert!(
        snapshot.guard_signals > 0 && snapshot.guard_wakeups > 0,
        "{mode}: waiters must park and be signalled, not poll: {snapshot:?}"
    );
    println!(
        "[{mode}] {DELIVERIES} deliveries, {GROUPS} elf groups; \
         {} condition evaluations, {} guard signals, {} parked wake-ups",
        snapshot.wait_condition_checks, snapshot.guard_signals, snapshot.guard_wakeups
    );
}

fn main() {
    run_season(SchedulerMode::Dedicated);
    run_season(SchedulerMode::Pooled { workers: 4 });
    println!("santa_claus: OK");
}
