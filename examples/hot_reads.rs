//! Shared-read reservations on a hot handler: a read-mostly leaderboard.
//!
//! One handler owns the leaderboard; one writer keeps recording scores while
//! N reader threads hammer it with ranking queries.  Run once with the
//! readers taking **exclusive** reservations (the classic SCOOP posture:
//! every client serialises on the handler) and once with **shared-read**
//! reservations (`reserve(&board).read()`), where queries commute and
//! execute concurrently on the client threads without involving the handler
//! at all.
//!
//! Each reader checks the leaderboard invariant (scores sorted descending)
//! on every observation — a torn read of a mid-update board would trip the
//! assertion — and the run ends by printing the runtime's reader-concurrency
//! statistics: `peak_concurrent_readers` proves readers genuinely overlapped
//! and `writer_waits` shows the writer being (briefly, thanks to writer
//! preference) held out by the read crowd.
//!
//! Run with `cargo run --release --example hot_reads` (pass `smoke` for the
//! quick CI-sized run).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use scoop_qs::prelude::*;

/// A score table the writer keeps sorted descending; the sort order is the
/// invariant every reader re-checks on every query.
struct Leaderboard {
    entries: Vec<(u32, u64)>, // (player, score)
    updates: u64,
}

impl Leaderboard {
    fn new(players: u32) -> Self {
        Leaderboard {
            entries: (0..players).map(|p| (p, 0)).collect(),
            updates: 0,
        }
    }

    /// One write: bump a player's score and restore the sort order.  The
    /// board is momentarily unsorted inside this method — which is exactly
    /// what a torn read would observe.
    fn record(&mut self, player: u32, delta: u64) {
        if let Some(entry) = self.entries.iter_mut().find(|(p, _)| *p == player) {
            entry.1 += delta;
        }
        self.entries.sort_by_key(|entry| std::cmp::Reverse(entry.1));
        self.updates += 1;
    }

    fn top(&self) -> (u32, u64) {
        assert!(
            self.entries.windows(2).all(|w| w[0].1 >= w[1].1),
            "torn read: leaderboard observed unsorted"
        );
        self.entries[0]
    }
}

fn main() {
    let smoke = std::env::args().nth(1).as_deref() == Some("smoke");
    let (readers, reads_per_reader) = if smoke { (4, 20_000) } else { (8, 100_000) };
    println!("== hot_reads: {readers} readers x {reads_per_reader} queries + 1 writer ==\n");

    let exclusive = run(readers, reads_per_reader, false);
    let shared = run(readers, reads_per_reader, true);
    println!(
        "\nshared-read speed-up over exclusive: {:.2}x",
        shared / exclusive
    );
}

/// Drives the workload and returns read throughput (queries/second).
fn run(readers: usize, reads_per_reader: usize, shared: bool) -> f64 {
    let rt = Runtime::new(RuntimeConfig::all_optimizations());
    let board = rt.spawn_handler(Leaderboard::new(16));
    let stop_writer = Arc::new(AtomicBool::new(false));

    let writer = {
        let board = board.clone();
        let stop = Arc::clone(&stop_writer);
        std::thread::spawn(move || {
            let mut player = 0u32;
            while !stop.load(Ordering::Acquire) {
                player = (player + 7) % 16;
                let p = player;
                // Synced exclusive write: record, then query so the command
                // is applied (and contends with the read crowd) right now.
                board.separate(|s| {
                    s.call(move |b| b.record(p, 5));
                    s.query(|b| b.updates)
                });
            }
        })
    };

    // Open with every reader parked on a barrier inside its read block: a
    // deterministic record of reader overlap (sub-microsecond holds in the
    // hot loop can convoy and serialise for long stretches, so sampling
    // overlap from the loop alone is unreliable).
    let rendezvous = Arc::new(std::sync::Barrier::new(readers));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..readers {
            let board = board.clone();
            let rendezvous = Arc::clone(&rendezvous);
            scope.spawn(move || {
                if shared {
                    reserve(&board).read().run(|_| rendezvous.wait());
                }
                let mut last_top = 0u64;
                for _ in 0..reads_per_reader {
                    let (_, top) = if shared {
                        reserve(&board).read().run(|b| b.query(|board| board.top()))
                    } else {
                        board.separate(|s| s.query(|board| board.top()))
                    };
                    // Scores only grow: each reader's view is monotonic.
                    assert!(top >= last_top, "leaderboard ran backwards");
                    last_top = top;
                }
            });
        }
    });
    let elapsed = started.elapsed();
    stop_writer.store(true, Ordering::Release);
    writer.join().unwrap();

    let total_reads = (readers * reads_per_reader) as f64;
    let throughput = total_reads / elapsed.as_secs_f64();
    let snap = rt.stats_snapshot();
    let label = if shared { "shared-read" } else { "exclusive " };
    println!(
        "[{label}] {total_reads:>9.0} reads in {elapsed:?} ({throughput:>12.0} reads/s) | \
         writer updates: {}",
        board.query_detached(|b| b.updates),
    );
    println!(
        "             read_reservations: {:>8}  peak_concurrent_readers: {:>2}  writer_waits: {}",
        snap.read_reservations, snap.peak_concurrent_readers, snap.writer_waits
    );
    if shared {
        assert!(
            snap.peak_concurrent_readers >= readers as u64,
            "shared-read run never overlapped its {readers} readers"
        );
    }
    throughput
}
