//! The Cowichan `chain` workload (§4.1.1) across paradigms.
//!
//! Runs randmat → thresh → winnow → outer → product on the SCOOP/Qs runtime
//! and on the comparison paradigms, printing the compute/communication split
//! the paper uses in Fig. 18.
//!
//! Run with `cargo run --release --example cowichan_chain`.

use scoop_qs::baselines::Paradigm;
use scoop_qs::runtime::OptimizationLevel;
use scoop_qs::workloads::types::{CowichanParams, ParallelTask};
use scoop_qs::workloads::{run_parallel, run_parallel_scoop};

fn main() {
    let threads = scoop_qs::exec::default_parallelism().min(8);
    let params = CowichanParams {
        threads,
        ..CowichanParams::small()
    };
    println!(
        "chain on a {}x{} matrix, {} worker threads\n",
        params.nr, params.nr, params.threads
    );

    println!("-- paradigms (Fig. 18) --");
    for paradigm in Paradigm::ALL {
        let run = run_parallel(ParallelTask::Chain, paradigm, &params);
        println!(
            "{:<26} total {:>8.2?}  compute {:>8.2?}  communication {:>8.2?}",
            paradigm.to_string(),
            run.total(),
            run.compute,
            run.communicate
        );
    }

    println!("\n-- SCOOP/Qs optimisation levels (Table 1) --");
    for level in OptimizationLevel::ALL {
        let run = run_parallel_scoop(ParallelTask::Chain, level, &params);
        println!(
            "{:<10} total {:>8.2?}  compute {:>8.2?}  communication {:>8.2?}",
            level.to_string(),
            run.total(),
            run.compute,
            run.communicate
        );
    }
}
