//! Distributed SCOOP over real sockets: a bank where **every user is a
//! handler**, sharded across separate OS node processes by consistent
//! hashing — the §7 "sockets as the underlying implementation" direction of
//! the paper, now with genuine processes instead of in-process channels.
//!
//! The example re-executes itself: the parent spawns `bank_cluster node
//! <addr>` children (two listening on loopback TCP, one on a Unix-domain
//! socket), waits for each to print `READY <addr>`, installs the ring on all
//! of them, then drives hundreds of per-user separate blocks from several
//! client threads.  Every block ends with a balance query whose value is
//! asserted exactly, so correctness is checked per user, not sampled.
//!
//! Run with `cargo run --release --example bank_cluster` (pass `smoke` for
//! the quick CI-sized run).

use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qs_bench::remote_sweep::{spawn_node, NodeProcess};
use scoop_qs::cluster::{bank_service, ClusterClient, NodeConfig, NodeServer};
use scoop_qs::remote::{NodeAddr, WireValue};

/// Deposits issued per user block; the closing balance must equal this.
const DEPOSITS_PER_USER: i64 = 4;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        // Child mode: host one bank node and serve until told to shut down.
        Some("node") => run_node(args.get(2).expect("usage: bank_cluster node <addr>")),
        Some("smoke") => run_demo(150, 2),
        _ => run_demo(900, 4),
    }
}

/// The node side: start a [`NodeServer`] hosting per-user `Account`
/// handlers, report the bound address (the parent reads this line to learn
/// the ephemeral TCP port), then serve until a `shutdown` control arrives.
fn run_node(listen: &str) {
    let addr = NodeAddr::parse(listen).expect("listen address");
    let server = NodeServer::start(bank_service(), NodeConfig::at(addr)).expect("start bank node");
    println!("READY {}", server.addr());
    std::io::stdout().flush().expect("flush READY line");
    server.wait();
}

/// The driver side: spawn the cluster, shard `users` accounts across it,
/// verify every balance, and print the placement evidence.
fn run_demo(users: u64, client_threads: usize) {
    println!("== bank_cluster: {users} users across 3 node processes ==\n");

    // -- Topology: two loopback-TCP nodes plus one Unix-domain-socket node,
    //    each a separate OS process of this very binary.
    let unix_path =
        std::env::temp_dir().join(format!("qs-bank-cluster-{}.sock", std::process::id()));
    let listens = [
        "tcp:127.0.0.1:0".to_string(),
        "tcp:127.0.0.1:0".to_string(),
        format!("unix:{}", unix_path.display()),
    ];
    let nodes: Vec<NodeProcess> = listens
        .iter()
        .map(|listen| spawn_node("node", listen).expect("spawn node process"))
        .collect();
    let addrs: Vec<NodeAddr> = nodes.iter().map(|n| n.addr().clone()).collect();
    for addr in &addrs {
        println!("node process up at {addr}");
    }

    // -- Install the consistent-hash ring on every node so each can refuse
    //    blocks for handlers it does not own.
    let client =
        ClusterClient::new("bank-demo", &[]).with_response_timeout(Duration::from_secs(30));
    client.set_ring(&addrs).expect("install ring");
    println!("ring installed over {} nodes\n", addrs.len());
    for addr in &addrs {
        let pong = client
            .control(&addr.to_string(), "ping", vec![])
            .expect("ping node");
        println!("ping {addr} -> {pong:?}");
    }

    // -- Drive one separate block per user from several client threads.
    //    The block's deposits are asynchronous; the closing balance query
    //    synchronises and is asserted exactly.
    println!("\ndriving {users} users from {client_threads} client threads…");
    let addrs = Arc::new(addrs);
    let started = Instant::now();
    let joins: Vec<_> = (0..client_threads)
        .map(|t| {
            let addrs = Arc::clone(&addrs);
            std::thread::spawn(move || {
                let client = ClusterClient::new(&format!("bank-demo-{t}"), &addrs)
                    .with_response_timeout(Duration::from_secs(60));
                let mut user = t as u64;
                while user < users {
                    let balance = client
                        .separate(user, |s| {
                            for _ in 0..DEPOSITS_PER_USER {
                                s.call("deposit", vec![WireValue::Int(1)])?;
                            }
                            s.query("balance", vec![])
                        })
                        .and_then(|balance| balance)
                        .unwrap_or_else(|e| panic!("user {user}: {e}"));
                    assert_eq!(
                        balance,
                        WireValue::Int(DEPOSITS_PER_USER),
                        "user {user} balance corrupted"
                    );
                    user += client_threads as u64;
                }
            })
        })
        .collect();
    for join in joins {
        join.join().expect("client thread");
    }
    let elapsed = started.elapsed();
    let requests = users * (DEPOSITS_PER_USER as u64 + 1);
    println!(
        "all {users} balances exact: {requests} requests in {:.2?} ({:.0} req/s)\n",
        elapsed,
        requests as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    );

    // -- Placement evidence: the per-node handler counts show the ring
    //    sharding users across all three processes.
    let mut hosted_total = 0i64;
    for addr in addrs.iter() {
        let hosted = client
            .control(&addr.to_string(), "handlers", vec![])
            .expect("handlers control")
            .as_int()
            .expect("handler count");
        hosted_total += hosted;
        println!("{addr} hosts {hosted} user handlers");
        assert!(hosted > 0, "every node should own a share of the users");
    }
    assert_eq!(
        hosted_total as u64, users,
        "every user lives on exactly one node"
    );

    // -- Tear down: a `shutdown` control per node, then reap the processes.
    client.shutdown_cluster();
    for node in nodes {
        assert!(
            node.wait_or_kill(Duration::from_secs(10)),
            "node should exit on shutdown control"
        );
    }
    println!("\nall node processes shut down cleanly");
}
