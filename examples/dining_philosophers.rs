//! Dining philosophers with SCOOP multi-handler reservations and wait
//! conditions.
//!
//! Each fork is a handler-owned object.  A philosopher picks up *both* forks
//! with one atomic two-handler reservation (`reserve((&l, &r)).when(…)`,
//! §2.4/§3.3 of the paper) guarded by "both forks are free", so the
//! classic deadlock (everyone holding their left fork) is impossible by
//! construction, and so is starvation-by-inconsistency: whoever observes the
//! forks sees a consistent pair (Fig. 5).
//!
//! Run with `cargo run --example dining_philosophers`.

use scoop_qs::prelude::*;
use scoop_qs::runtime::check_postcondition;

/// A fork on the table; owned by its own handler.
#[derive(Default, Debug)]
struct Fork {
    /// Which philosopher holds the fork (`None` = on the table).
    held_by: Option<usize>,
    /// How many times the fork has been picked up.
    uses: usize,
}

const PHILOSOPHERS: usize = 5;
const MEALS_PER_PHILOSOPHER: usize = 20;

fn main() {
    // Tiny bounded mailboxes: each fork handler holds at most 8 queued
    // requests, so a philosopher logging faster than a fork processes is
    // throttled (backpressure) rather than queueing unbounded work.
    let config = RuntimeConfig::all_optimizations().with_mailbox_capacity(Some(8));
    let rt = Runtime::new(config);
    let forks: Vec<Handler<Fork>> = (0..PHILOSOPHERS)
        .map(|_| rt.spawn_handler(Fork::default()))
        .collect();

    std::thread::scope(|scope| {
        for philosopher in 0..PHILOSOPHERS {
            let left = forks[philosopher].clone();
            let right = forks[(philosopher + 1) % PHILOSOPHERS].clone();
            scope.spawn(move || {
                for meal in 0..MEALS_PER_PHILOSOPHER {
                    // Wait until both forks are free, then reserve both
                    // atomically and eat.  The wait condition and the body run
                    // under the same reservation, so nobody can grab a fork
                    // between the check and the pick-up.
                    reserve((&left, &right))
                        .when(|l: &Fork, r: &Fork| l.held_by.is_none() && r.held_by.is_none())
                        .run(|(l, r)| {
                            l.call(move |f| {
                                f.held_by = Some(philosopher);
                                f.uses += 1;
                            });
                            r.call(move |f| {
                                f.held_by = Some(philosopher);
                                f.uses += 1;
                            });
                            // "Eating": both forks are observably ours.
                            assert!(check_postcondition(l, move |f| f.held_by == Some(philosopher)));
                            assert!(check_postcondition(r, move |f| f.held_by == Some(philosopher)));
                            // Put the forks back down.
                            l.call(|f| f.held_by = None);
                            r.call(|f| f.held_by = None);
                        });
                    if meal % 10 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    let mut total_uses = 0;
    for (index, fork) in forks.iter().enumerate() {
        let (uses, held) = fork.query_detached(|f| (f.uses, f.held_by));
        assert_eq!(held, None, "fork {index} still held after dinner");
        total_uses += uses;
    }
    // Every meal uses exactly two forks.
    assert_eq!(total_uses, PHILOSOPHERS * MEALS_PER_PHILOSOPHER * 2);

    let stats = rt.stats_snapshot();
    println!(
        "{PHILOSOPHERS} philosophers ate {MEALS_PER_PHILOSOPHER} meals each: \
         {total_uses} fork pick-ups, {} wait-condition checks ({} retries), \
         {} multi-handler reservations",
        stats.wait_condition_checks, stats.wait_condition_retries, stats.multi_reservations
    );
    println!(
        "mailboxes: {} batches drained ({:.2} requests/batch), {} backpressure stalls",
        stats.batches_drained,
        stats.mean_batch_size(),
        stats.backpressure_stalls,
    );
    println!("no deadlock, no starvation, forks all back on the table");
}
