//! The static sync-coalescing pass (§3.4.2) end to end.
//!
//! Builds the Fig. 14 copy loop in its naive form, shows the sync-sets the
//! dataflow analysis computes, runs the coalescing pass, and executes both
//! versions against the real runtime to show the difference in sync
//! round-trips.
//!
//! Run with `cargo run --release --example sync_coalescing`.

use scoop_qs::compiler::ir::AliasModel;
use scoop_qs::compiler::{analyze_sync_sets, coalesce_syncs, execute_copy_loop_ir, Function};
use scoop_qs::runtime::OptimizationLevel;

fn main() {
    // The naive code generator emits a sync before every handler read.
    let naive = Function::fig14_loop(1, true);
    println!("naive IR: {} sync instructions", naive.count_syncs());

    let sets = analyze_sync_sets(&naive);
    for block in 0..naive.blocks.len() {
        println!(
            "  block B{} entry sync-set {:?} exit sync-set {:?}",
            block + 1,
            sets.entry_of(block),
            sets.exit_of(block)
        );
    }

    let report = coalesce_syncs(&naive);
    println!(
        "after sync-coalescing: {} sync instructions ({} removed, {} dataflow iterations)",
        report.syncs_after,
        report.syncs_removed(),
        report.analysis_iterations
    );

    // The Fig. 15 situation: possible aliasing blocks the optimisation.
    let aliased = Function::fig15_loop(AliasModel::MayAliasAll);
    let aliased_report = coalesce_syncs(&aliased);
    println!(
        "with unknown aliasing (Fig. 15): {} of {} syncs survive",
        aliased_report.syncs_after, aliased_report.syncs_before
    );

    // Execute both versions of the copy loop on the unoptimised runtime so
    // the static pass is the only difference.
    const LEN: usize = 5_000;
    let level = OptimizationLevel::Static.config();
    let before = execute_copy_loop_ir(OptimizationLevel::None.config(), LEN, &naive);
    let after = execute_copy_loop_ir(level, LEN, &report.function);
    println!(
        "\ncopying {LEN} elements out of a handler:\n  naive IR      {:>8.2?}  ({} sync round-trips)\n  coalesced IR  {:>8.2?}  ({} sync round-trips)",
        before.elapsed, before.syncs_performed, after.elapsed, after.syncs_performed
    );
    assert_eq!(before.copied, after.copied);
}
