//! A guided tour of the observability layer: run a small workload under
//! `ObservabilityMode::Full`, then walk every exposition surface —
//!
//! 1. the per-thread trace rings (event counts per category),
//! 2. the Chrome `trace_event` export (written next to the temp dir; open
//!    it in `chrome://tracing` or Perfetto),
//! 3. the metrics registry as JSON and as Prometheus text,
//! 4. a live cluster node scraped over its plain-HTTP metrics endpoint and
//!    queried through the `metrics` control op.
//!
//! Every step is asserted, so CI can run this as a smoke test:
//! `cargo run --example trace_tour` (pass `smoke` for the CI-sized run).

use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};

use scoop_qs::cluster::{bank_service, ClusterClient, NodeConfig, NodeServer};
use scoop_qs::obs;
use scoop_qs::prelude::*;
use scoop_qs::remote::{NodeAddr, WireValue};

fn main() {
    let smoke = std::env::args().nth(1).as_deref() == Some("smoke");
    let (handlers, calls_per_handler) = if smoke { (32, 50) } else { (128, 200) };
    println!(
        "== trace_tour: {handlers} handlers x {calls_per_handler} calls under Full tracing ==\n"
    );

    // A clean slate: Full mode arms both counters and the trace rings.
    obs::set_mode(ObservabilityMode::Full);
    obs::reset_trace();
    obs::registry().reset();

    run_workload(handlers, calls_per_handler);
    let by_category = dump_ring_summary();
    export_chrome_trace();
    dump_registry();
    scrape_live_node();

    // The tour is a smoke test: the workload must have left tracks on every
    // instrumented mechanism it exercised.
    for category in ["handler", "mailbox", "reserve", "read", "guard"] {
        assert!(
            by_category.get(category).copied().unwrap_or(0) > 0,
            "no `{category}.*` events recorded"
        );
    }
    obs::set_mode(ObservabilityMode::Off);
    println!("\ntrace_tour OK");
}

/// The traced workload: a fan-out/fan-in over a small fleet, one guarded
/// wait (exercising guard signal/wakeup parking) and one shared-read block
/// (exercising the read gate).
fn run_workload(handlers: usize, calls_per_handler: usize) {
    let rt = Runtime::new(
        RuntimeConfig::all_optimizations()
            .with_scheduler(SchedulerMode::Pooled { workers: 4 })
            .with_observability(ObservabilityMode::Full),
    );
    let fleet: Vec<_> = (0..handlers).map(|_| rt.spawn_handler(0u64)).collect();

    std::thread::scope(|scope| {
        let clients = 4;
        for client in 0..clients {
            let fleet = &fleet;
            scope.spawn(move || {
                for handler in fleet.iter().skip(client).step_by(clients) {
                    handler.separate(|s| {
                        for _ in 0..calls_per_handler {
                            s.call(|n| *n += 1);
                        }
                    });
                }
            });
        }
    });

    // A guarded wait: the waiter parks on a fresh gate handler; the signal
    // arrives only after the waiter has had ample time to register, so the
    // park/signal/wakeup path is actually exercised (an already-true
    // condition would short-circuit it).
    let gate = rt.spawn_handler(0u64);
    std::thread::scope(|scope| {
        let gate = &gate;
        scope.spawn(move || {
            let seen = reserve(gate)
                .when(|n: &u64| *n >= 1)
                .run(|g| g.query(|n| *n));
            assert!(seen >= 1);
        });
        std::thread::sleep(std::time::Duration::from_millis(100));
        gate.separate(|s| s.call(|n| *n += 1));
    });

    // A shared-read block: queries execute on this thread through the gate.
    let total: u64 = fleet
        .iter()
        .map(|h| reserve(h).read().run(|g| g.query(|n| *n)))
        .sum();
    assert_eq!(total, (handlers * calls_per_handler) as u64);
    drop(fleet);
}

/// Prints how many events each category left in the rings and returns the
/// tally.
fn dump_ring_summary() -> BTreeMap<&'static str, usize> {
    let events = obs::trace_events();
    let mut by_category: BTreeMap<&'static str, usize> = BTreeMap::new();
    for event in &events {
        *by_category.entry(event.kind.category()).or_default() += 1;
    }
    println!("trace rings hold {} events:", events.len());
    for (category, count) in &by_category {
        println!("  {category:<10} {count:>7}");
    }
    by_category
}

/// Exports the rings as Chrome `trace_event` JSON, validates it with the
/// crate's own parser and writes it for `chrome://tracing` / Perfetto.
fn export_chrome_trace() {
    let chrome = obs::chrome_trace_json();
    let doc = obs::parse_json(&chrome).expect("chrome trace JSON parses");
    assert!(
        doc.get("traceEvents").is_some(),
        "chrome export missing traceEvents"
    );
    let path = std::env::temp_dir().join("qs_trace_tour.json");
    std::fs::write(&path, &chrome).expect("write chrome trace");
    println!(
        "\nchrome trace: {} bytes -> {} (load in chrome://tracing)",
        chrome.len(),
        path.display()
    );
}

/// Prints the metrics registry in both exposition formats and checks the
/// latency histograms the workload should have fed.
fn dump_registry() {
    let json = obs::registry().to_json();
    let doc = obs::parse_json(&json).expect("registry JSON parses");
    let histograms = doc.get("histograms").expect("histograms section");
    assert!(
        histograms.get("request.enqueue_to_execute_ns").is_some(),
        "fan-out left no request latency samples: {json}"
    );

    println!("\nprometheus exposition (request + reserve lines):");
    for line in obs::registry().to_prometheus_text().lines() {
        if line.contains("request_") || line.contains("reserve_") {
            println!("  {line}");
        }
    }
}

/// Starts one cluster node with a metrics endpoint, drives a query through
/// it, then reads the registry back over the control op and a raw HTTP
/// scrape.
fn scrape_live_node() {
    let config = NodeConfig::at(NodeAddr::parse("tcp:127.0.0.1:0").unwrap())
        .with_metrics_listen("127.0.0.1:0");
    let node = NodeServer::start(bank_service(), config).expect("start node");
    let name = node.name().to_string();
    let client = ClusterClient::new("trace-tour", &[node.addr().clone()])
        .with_response_timeout(std::time::Duration::from_secs(10));
    client
        .separate(1, |s| {
            s.call("deposit", vec![WireValue::Int(5)]).unwrap();
            assert_eq!(s.query("balance", vec![]).unwrap(), WireValue::Int(5));
        })
        .unwrap();

    let WireValue::Str(metrics) = client.control(&name, "metrics", vec![]).unwrap() else {
        panic!("metrics control op must answer a string");
    };
    obs::parse_json(&metrics).expect("node registry JSON parses");

    let addr = node.metrics_addr().expect("metrics endpoint bound");
    let mut stream = std::net::TcpStream::connect(addr).expect("dial metrics endpoint");
    // One write for the whole request: the one-shot server answers (and
    // closes) as soon as it has read a first segment.
    stream
        .write_all(format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    assert!(response.contains("query_round_trip_ns_count"), "{response}");
    println!(
        "\nlive node {name}: control op returned {} bytes of registry JSON, \
         http://{addr}/metrics scrape OK",
        metrics.len()
    );
    client.shutdown_cluster();
}
