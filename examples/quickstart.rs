//! Quickstart: handlers, separate blocks, asynchronous calls and queries.
//!
//! Run with `cargo run --example quickstart`.

use scoop_qs::prelude::*;

/// A tiny domain object that will be owned by a handler.
#[derive(Default, Debug)]
struct Sensor {
    readings: Vec<f64>,
}

impl Sensor {
    fn record(&mut self, value: f64) {
        self.readings.push(value);
    }

    fn average(&self) -> f64 {
        if self.readings.is_empty() {
            0.0
        } else {
            self.readings.iter().sum::<f64>() / self.readings.len() as f64
        }
    }
}

fn main() {
    // The fully optimised SCOOP/Qs runtime: queue-of-queues communication,
    // client-executed queries, dynamic sync-coalescing.
    let rt = Runtime::new(RuntimeConfig::all_optimizations());

    // Every object lives on exactly one handler; `sensor` is a cheap handle.
    let sensor: Handler<Sensor> = rt.spawn_handler(Sensor::default());

    // Two client threads log readings concurrently.  Within each separate
    // block the calls are applied in order with no interleaving from the
    // other client — that is the reasoning guarantee of the model.
    std::thread::scope(|scope| {
        for client in 0..2 {
            let sensor = sensor.clone();
            scope.spawn(move || {
                sensor.separate(|s| {
                    for i in 0..100 {
                        // Asynchronous command: returns immediately.
                        s.call(move |obj| obj.record((client * 100 + i) as f64));
                    }
                    // Synchronous query: waits until this block's calls have
                    // been applied, then reads the state.
                    let count = s.query(|obj| obj.readings.len());
                    assert!(count >= 100);
                });
            });
        }
    });

    // A detached query outside any long-lived block.
    let average = sensor.query_detached(|obj| obj.average());
    println!(
        "recorded {} readings, average {average:.2}",
        sensor.query_detached(|obj| obj.readings.len())
    );

    // Inspect what the runtime did.
    let stats = rt.stats_snapshot();
    println!(
        "calls enqueued: {}, queries: {}, sync round-trips: {}, syncs elided: {}",
        stats.calls_enqueued,
        stats.total_queries(),
        stats.syncs_performed,
        stats.syncs_elided
    );

    // Retrieve the object when the handler is done.
    let final_sensor = sensor.shutdown_and_take().expect("sole owner");
    assert_eq!(final_sensor.readings.len(), 200);
    println!("final reading count: {}", final_sensor.readings.len());
}
