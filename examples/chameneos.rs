//! The chameneos coordination benchmark (§4.1.2) across paradigms.
//!
//! Creatures meet pairwise at a broker and swap colours; the benchmark is all
//! coordination and no computation, which is where the queue-of-queues and
//! dynamic sync-coalescing optimisations matter most (Table 2).
//!
//! Run with `cargo run --release --example chameneos`.

use scoop_qs::baselines::Paradigm;
use scoop_qs::runtime::OptimizationLevel;
use scoop_qs::workloads::concurrent::{
    run_concurrent, run_concurrent_scoop, ConcurrentParams, ConcurrentTask,
};

fn main() {
    let params = ConcurrentParams {
        nc: 20_000,
        ..ConcurrentParams::tiny()
    };
    println!("chameneos with {} meetings\n", params.nc);

    println!("-- paradigms (Table 5) --");
    for paradigm in Paradigm::ALL {
        let elapsed = run_concurrent(ConcurrentTask::Chameneos, paradigm, &params);
        println!("{:<26} {elapsed:>10.2?}", paradigm.to_string());
    }

    println!("\n-- SCOOP/Qs optimisation levels (Table 2) --");
    for level in OptimizationLevel::ALL {
        let elapsed = run_concurrent_scoop(ConcurrentTask::Chameneos, level, &params);
        println!("{:<10} {elapsed:>10.2?}", level.to_string());
    }
}
