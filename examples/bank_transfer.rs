//! Multi-handler reservations: atomic transfers between two accounts.
//!
//! This is the Fig. 5 pattern of the paper: a client that reserves both
//! handlers in one separate block sees a consistent pair of states, even
//! though other clients update them concurrently.
//!
//! Run with `cargo run --example bank_transfer`.

use scoop_qs::prelude::*;

#[derive(Debug)]
struct Account {
    owner: &'static str,
    balance: i64,
}

fn main() {
    // Production posture: bounded mailboxes (a slow handler caps its memory
    // and throttles clients via backpressure instead of queueing unbounded
    // transfers) drained in batches of up to 16 requests per queue crossing.
    let config = RuntimeConfig::all_optimizations()
        .with_mailbox_capacity(Some(64))
        .with_max_batch(16);
    let rt = Runtime::new(config);
    let alice = rt.spawn_handler(Account {
        owner: "alice",
        balance: 1_000,
    });
    let bob = rt.spawn_handler(Account {
        owner: "bob",
        balance: 1_000,
    });

    std::thread::scope(|scope| {
        // Transfer workers move money back and forth.
        for worker in 0..4 {
            let alice = alice.clone();
            let bob = bob.clone();
            scope.spawn(move || {
                for i in 0..500i64 {
                    let amount = (worker as i64 + i) % 17;
                    // Reserving both handlers atomically keeps the invariant
                    // "total balance is constant" observable at all times.
                    reserve((&alice, &bob)).run(|(a, b)| {
                        a.call(move |acc| acc.balance -= amount);
                        b.call(move |acc| acc.balance += amount);
                    });
                }
            });
        }

        // An auditor repeatedly checks the invariant while transfers run.
        let alice_audit = alice.clone();
        let bob_audit = bob.clone();
        scope.spawn(move || {
            for _ in 0..200 {
                let (a, b) = reserve((&alice_audit, &bob_audit))
                    .run(|(a, b)| (a.query(|acc| acc.balance), b.query(|acc| acc.balance)));
                assert_eq!(a + b, 2_000, "the auditor saw a torn transfer");
            }
            println!("auditor: invariant held across 200 checks");
        });
    });

    let final_alice = alice.query_detached(|acc| acc.balance);
    let final_bob = bob.query_detached(|acc| acc.balance);
    println!(
        "alice: {final_alice}, bob: {final_bob}, total: {}",
        final_alice + final_bob
    );
    assert_eq!(final_alice + final_bob, 2_000);

    for handler in [alice, bob] {
        let account = handler.shutdown_and_take().unwrap();
        println!("{} closed with balance {}", account.owner, account.balance);
    }

    let stats = rt.stats_snapshot();
    println!(
        "mailboxes: {} batches drained ({:.2} requests/batch), {} backpressure stalls",
        stats.batches_drained,
        stats.mean_batch_size(),
        stats.backpressure_stalls,
    );
}
