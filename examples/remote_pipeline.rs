//! A two-node pipeline over serialized private queues (qs-remote): the §7
//! "sockets as the underlying implementation" direction of the paper,
//! simulated with in-process byte channels plus injected latency.
//!
//! A `source` node owns a block of data; a `sink` node folds whatever it is
//! sent.  The client pulls rows from the source with queries and pushes them
//! to the sink with asynchronous calls — the same pull idiom as §3.4, except
//! every call now crosses a wire format instead of a shared-memory queue.
//!
//! Run with `cargo run --example remote_pipeline`.

use std::time::Duration;

use scoop_qs::remote::{ChannelConfig, MethodRegistry, RemoteNode, RemoteObject, WireValue};

/// State of the source node: a matrix of integers, row-major.
struct Source {
    rows: Vec<Vec<i64>>,
}

/// State of the sink node: a running checksum and row count.
#[derive(Default)]
struct Sink {
    checksum: i64,
    rows_received: i64,
}

fn source_registry() -> MethodRegistry<Source> {
    MethodRegistry::new()
        .with("generate", |source: &mut Source, args| {
            let rows = args[0].as_int()?;
            let cols = args[1].as_int()?;
            source.rows = (0..rows)
                .map(|r| (0..cols).map(|c| r * cols + c).collect())
                .collect();
            Ok(WireValue::Unit)
        })
        .with("row_count", |source: &mut Source, _| {
            Ok(WireValue::Int(source.rows.len() as i64))
        })
        .with("row", |source: &mut Source, args| {
            let index = args[0].as_int()? as usize;
            let row = source
                .rows
                .get(index)
                .ok_or_else(|| format!("row {index} out of range"))?;
            Ok(WireValue::List(
                row.iter().map(|&v| WireValue::Int(v)).collect(),
            ))
        })
}

fn sink_registry() -> MethodRegistry<Sink> {
    MethodRegistry::new()
        .with("accept_row", |sink: &mut Sink, args| {
            let row = args[0].as_list()?;
            for value in row {
                sink.checksum = sink.checksum.wrapping_add(value.as_int()?);
            }
            sink.rows_received += 1;
            Ok(WireValue::Unit)
        })
        .with("checksum", |sink: &mut Sink, _| {
            Ok(WireValue::Int(sink.checksum))
        })
        .with("rows_received", |sink: &mut Sink, _| {
            Ok(WireValue::Int(sink.rows_received))
        })
}

fn main() {
    const ROWS: i64 = 64;
    const COLS: i64 = 32;

    // A little per-frame latency makes the "remote" aspect visible without a
    // network; set it to zero to measure pure protocol overhead.
    let wire = ChannelConfig::with_latency(Duration::from_micros(50));

    let source = RemoteNode::spawn(
        "source",
        RemoteObject::new(Source { rows: Vec::new() }, source_registry()),
        wire,
    );
    let sink = RemoteNode::spawn(
        "sink",
        RemoteObject::new(Sink::default(), sink_registry()),
        wire,
    );

    let source_proxy = source.proxy("pipeline-driver");
    let sink_proxy = sink.proxy("pipeline-driver");

    // One separate block per node: within each block our frames are applied
    // in order with nothing interleaved, so the checksum the sink computes is
    // exactly the checksum of what the source handed out.
    let (rows_moved, checksum) = source_proxy.separate(|src| {
        src.call("generate", vec![WireValue::Int(ROWS), WireValue::Int(COLS)])
            .expect("generate");
        let row_count = src
            .query("row_count", vec![])
            .expect("row_count")
            .as_int()
            .unwrap();

        sink_proxy.separate(|dst| {
            for index in 0..row_count {
                let row = src.query("row", vec![WireValue::Int(index)]).expect("row");
                dst.call("accept_row", vec![row]).expect("accept_row");
            }
            let checksum = dst
                .query("checksum", vec![])
                .expect("checksum")
                .as_int()
                .unwrap();
            (row_count, checksum)
        })
    });

    let expected: i64 = (0..ROWS * COLS).sum();
    assert_eq!(rows_moved, ROWS);
    assert_eq!(checksum, expected, "checksum must match the generated data");

    println!("moved {rows_moved} rows of {COLS} integers between two remote nodes");
    println!("sink checksum {checksum} (expected {expected})");
    println!("source node stats: {:?}", source.stats());
    println!("sink node stats:   {:?}", sink.stats());

    assert_eq!(
        source.shutdown_and_take().map(|s| s.rows.len()),
        Some(ROWS as usize)
    );
    let final_sink = sink.shutdown_and_take().expect("sink state");
    assert_eq!(final_sink.rows_received, ROWS);
    println!("pipeline complete; both nodes shut down cleanly");
}
