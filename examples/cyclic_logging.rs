//! Cyclic logging: the topology that is perfectly safe with the paper's
//! unbounded mailboxes and deadlocks the moment they are bounded.
//!
//! Two handlers log onto *each other* through capacity-1 mailboxes.  Each
//! one, while executing a request, opens a separate block on its peer and
//! logs two calls: the second push needs the peer to start serving the
//! fresh private queue, and the peer — stuck in the mirror-image push —
//! never will.  §2.5 of the paper proves reservations and asynchronous
//! calls never block, so this cannot deadlock in SCOOP/Qs; bounded
//! mailboxes (backpressure) break exactly that premise.
//!
//! Phase 1 runs the topology under `DeadlockPolicy::Report`: the runtime's
//! wait-for registry sees both blocked pushes, the detector confirms the
//! 2-cycle within a couple of 10ms scan ticks, and the `DeadlockReport`
//! names the handlers and the `mailbox-push` edge kinds.  The deadlock
//! itself stays (Report only observes), so the runtime is abandoned.
//!
//! Phase 2 runs it under `DeadlockPolicy::Break`: the detector fails one of
//! the blocked pushes (`MailboxError::DeadlockBroken` — on a handler-side
//! call the panic is caught and counted like any call panic), the freed
//! handler drains its mailbox, the peer's push unblocks, and both handlers
//! answer queries again.
//!
//! Run with a hard timeout in CI: a detection regression turns this example
//! back into the silent hang it exists to prevent.

use std::sync::Arc;
use std::time::{Duration, Instant};

use scoop_qs::prelude::*;
use scoop_qs::sync::Event;

/// A handler object that logs onto its peer.
struct Logger {
    name: &'static str,
    peer: Option<Handler<Logger>>,
    received: u64,
    /// Set once this logger's entangling request is executing.
    started: Arc<Event>,
    /// The peer's `started` event: both sides rendezvous before pushing, so
    /// the deadlock is deterministic, not a lucky interleaving.
    peer_started: Arc<Event>,
}

/// The request both handlers execute simultaneously: rendezvous, then burst
/// two calls into the peer's capacity-1 mailbox.  Push #1 fills the fresh
/// private queue; push #2 blocks until the peer *serves* that queue — and
/// the peer is pinned inside its own mirror-image push.
fn entangle(logger: &mut Logger) {
    logger.started.set();
    logger.peer_started.wait();
    let peer = logger.peer.clone().expect("peer wired before entangling");
    peer.separate(|s| {
        s.call(|other| other.received += 1);
        s.call(|other| other.received += 1); // <- blocks: capacity 1
    });
}

fn spawn_entangled_pair(rt: &Runtime) -> (Handler<Logger>, Handler<Logger>) {
    let started_a = Arc::new(Event::new());
    let started_b = Arc::new(Event::new());
    let a = rt.spawn_handler(Logger {
        name: "a",
        peer: None,
        received: 0,
        started: Arc::clone(&started_a),
        peer_started: Arc::clone(&started_b),
    });
    let b = rt.spawn_handler(Logger {
        name: "b",
        peer: None,
        received: 0,
        started: started_b,
        peer_started: started_a,
    });
    // Wire the ring, then fire both entangling requests.
    let peer_of_a = b.clone();
    a.call_detached(move |logger| logger.peer = Some(peer_of_a));
    let peer_of_b = a.clone();
    b.call_detached(move |logger| logger.peer = Some(peer_of_b));
    a.call_detached(entangle);
    b.call_detached(entangle);
    (a, b)
}

fn config(policy: DeadlockPolicy) -> RuntimeConfig {
    RuntimeConfig::all_optimizations()
        .with_mailbox_capacity(Some(1))
        .with_deadlock_policy(policy)
}

fn main() {
    // ----- Phase 1: Report ------------------------------------------------
    println!("== phase 1: DeadlockPolicy::Report (detect the hang) ==");
    let rt = Runtime::new(config(DeadlockPolicy::Report));
    let (_a, _b) = spawn_entangled_pair(&rt);

    let started = Instant::now();
    while rt.stats_snapshot().deadlocks_detected == 0 {
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "deadlock detection regressed: no report within 30s"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("detected after {:?}", started.elapsed());
    for report in rt.deadlock_reports() {
        println!("  {report}");
    }
    // Report only observes: the cycle is still in place, so walk away from
    // this runtime (dropping it never waits on blocked handlers; the two
    // pinned threads die with the process).
    drop(rt);

    // ----- Phase 2: Break -------------------------------------------------
    println!("== phase 2: DeadlockPolicy::Break (detect and recover) ==");
    let rt = Runtime::new(config(DeadlockPolicy::Break));
    let (a, b) = spawn_entangled_pair(&rt);

    // Liveness probe: queries can only complete once the detector has
    // broken the cycle; the peers' surviving pushes then land as the
    // handlers drain.  Exactly one of the four pushes is dropped by the
    // break, so the counts settle at 3.
    let started = Instant::now();
    let (received_a, received_b) = loop {
        let received_a = a.query_detached(|logger| (logger.name, logger.received));
        let received_b = b.query_detached(|logger| (logger.name, logger.received));
        if received_a.1 + received_b.1 >= 3 {
            break (received_a, received_b);
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "cycle break regressed: counts stuck at {received_a:?}/{received_b:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    println!(
        "recovered after {:?}: {:?} / {:?}",
        started.elapsed(),
        received_a,
        received_b
    );
    for report in rt.deadlock_reports() {
        println!("  {report}");
    }
    let snapshot = rt.stats_snapshot();
    println!(
        "deadlocks_detected={} deadlocks_broken={} call_panics={}",
        snapshot.deadlocks_detected, snapshot.deadlocks_broken, snapshot.call_panics
    );
    assert!(snapshot.deadlocks_detected >= 1);
    assert!(snapshot.deadlocks_broken >= 1);
    assert!(
        snapshot.call_panics >= 1,
        "the broken push surfaces as a caught MailboxError::DeadlockBroken panic"
    );
    assert_eq!(
        received_a.1 + received_b.1,
        3,
        "one push of the four is dropped by the break; the rest land"
    );

    // Clean shutdown: unwire the peer references (they form an Arc cycle)
    // and retire both handlers.
    a.call_detached(|logger| logger.peer = None);
    b.call_detached(|logger| logger.peer = None);
    let final_a = a.shutdown_and_take().expect("a retires cleanly");
    let final_b = b.shutdown_and_take().expect("b retires cleanly");
    println!(
        "final counts: a={} b={} — recovered and live",
        final_a.received, final_b.received
    );
}
